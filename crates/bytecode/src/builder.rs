//! Programmatic construction of programs and method bodies.
//!
//! [`ProgramBuilder`] assembles the metadata arenas; [`MethodBuilder`] emits
//! instructions with forward-reference labels and validates that every label
//! is bound before [`MethodBuilder::build`] succeeds.

use crate::{
    Class, ClassId, CmpOp, ExceptionEntry, Field, FieldId, Insn, Method, MethodId, Program,
    ProgramError, StaticDecl, StaticId, ValueKind,
};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// A forward-referenceable branch target inside a [`MethodBuilder`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LabelId(u32);

/// Errors raised by [`MethodBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// A label was used in a branch but never bound with
    /// [`MethodBuilder::bind`].
    UnboundLabel(u32),
    /// The method body is empty or does not end in a terminator.
    MissingTerminator,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnboundLabel(l) => write!(f, "label L{l} is never bound"),
            BuildError::MissingTerminator => {
                write!(f, "method body does not end in return/goto/throw")
            }
        }
    }
}

impl Error for BuildError {}

/// Incremental builder for a [`Method`] body.
///
/// ```
/// use pea_bytecode::{MethodBuilder, CmpOp};
///
/// // static int max(a, b) { return a > b ? a : b; }
/// let mut mb = MethodBuilder::new_static("max", 2, true);
/// let take_a = mb.new_label();
/// mb.load(0);
/// mb.load(1);
/// mb.if_cmp(CmpOp::Gt, take_a);
/// mb.load(1);
/// mb.return_value();
/// mb.bind(take_a);
/// mb.load(0);
/// mb.return_value();
/// let method = mb.build().unwrap();
/// assert_eq!(method.code.len(), 7);
/// ```
#[derive(Debug)]
pub struct MethodBuilder {
    method: Method,
    labels: Vec<Option<u32>>,
    /// (code index, label) pairs awaiting patching.
    fixups: Vec<(usize, LabelId)>,
    /// (start, end, handler, catch class) label tuples awaiting patching.
    region_fixups: Vec<(LabelId, LabelId, LabelId, Option<ClassId>)>,
    max_local_seen: u16,
}

impl MethodBuilder {
    /// Starts a free static method.
    pub fn new_static(name: &str, param_count: u16, returns_value: bool) -> Self {
        Self::new_inner(None, name, param_count, returns_value, true)
    }

    /// Starts a virtual method declared on `class`; `param_count` includes
    /// the receiver in slot 0.
    pub fn new_virtual(name: &str, class: ClassId, param_count: u16, returns_value: bool) -> Self {
        Self::new_inner(Some(class), name, param_count, returns_value, false)
    }

    fn new_inner(
        class: Option<ClassId>,
        name: &str,
        param_count: u16,
        returns_value: bool,
        is_static: bool,
    ) -> Self {
        MethodBuilder {
            method: Method {
                class,
                name: name.to_string(),
                param_count,
                returns_value,
                is_static,
                is_synchronized: false,
                max_locals: param_count,
                code: Vec::new(),
                exception_table: Vec::new(),
            },
            labels: Vec::new(),
            fixups: Vec::new(),
            region_fixups: Vec::new(),
            max_local_seen: param_count,
        }
    }

    /// Marks the method as synchronized on its receiver (virtual methods
    /// only; checked by [`crate::verify_method`]).
    pub fn synchronized(&mut self) -> &mut Self {
        self.method.is_synchronized = true;
        self
    }

    /// Reserves extra local slots beyond the parameters.
    pub fn locals(&mut self, max_locals: u16) -> &mut Self {
        self.max_local_seen = self.max_local_seen.max(max_locals);
        self
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> LabelId {
        self.labels.push(None);
        LabelId(self.labels.len() as u32 - 1)
    }

    /// Binds `label` to the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: LabelId) {
        let slot = &mut self.labels[label.0 as usize];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.method.code.len() as u32);
    }

    /// Current bytecode index (where the next instruction will land).
    pub fn here(&self) -> u32 {
        self.method.code.len() as u32
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, insn: Insn) -> &mut Self {
        if let Insn::Load(n) | Insn::Store(n) = insn {
            self.max_local_seen = self.max_local_seen.max(n + 1);
        }
        self.method.code.push(insn);
        self
    }

    fn emit_branch(&mut self, label: LabelId, make: impl FnOnce(u32) -> Insn) -> &mut Self {
        let at = self.method.code.len();
        self.fixups.push((at, label));
        self.method.code.push(make(u32::MAX));
        self
    }

    // Convenience emitters, one per instruction family.

    /// Push integer constant.
    pub fn const_(&mut self, v: i64) -> &mut Self {
        self.emit(Insn::Const(v))
    }
    /// Push null.
    pub fn const_null(&mut self) -> &mut Self {
        self.emit(Insn::ConstNull)
    }
    /// Push local `n`.
    pub fn load(&mut self, n: u16) -> &mut Self {
        self.emit(Insn::Load(n))
    }
    /// Pop into local `n`.
    pub fn store(&mut self, n: u16) -> &mut Self {
        self.emit(Insn::Store(n))
    }
    /// Integer add.
    pub fn add(&mut self) -> &mut Self {
        self.emit(Insn::Add)
    }
    /// Integer subtract.
    pub fn sub(&mut self) -> &mut Self {
        self.emit(Insn::Sub)
    }
    /// Integer multiply.
    pub fn mul(&mut self) -> &mut Self {
        self.emit(Insn::Mul)
    }
    /// Integer divide.
    pub fn div(&mut self) -> &mut Self {
        self.emit(Insn::Div)
    }
    /// Integer remainder.
    pub fn rem(&mut self) -> &mut Self {
        self.emit(Insn::Rem)
    }
    /// Pop and discard.
    pub fn pop(&mut self) -> &mut Self {
        self.emit(Insn::Pop)
    }
    /// Duplicate top of stack.
    pub fn dup(&mut self) -> &mut Self {
        self.emit(Insn::Dup)
    }
    /// Swap the two top stack values.
    pub fn swap(&mut self) -> &mut Self {
        self.emit(Insn::Swap)
    }
    /// Unconditional branch.
    pub fn goto(&mut self, l: LabelId) -> &mut Self {
        self.emit_branch(l, Insn::Goto)
    }
    /// Conditional branch on integer comparison.
    pub fn if_cmp(&mut self, op: CmpOp, l: LabelId) -> &mut Self {
        self.emit_branch(l, move |t| Insn::IfCmp(op, t))
    }
    /// Branch if null.
    pub fn if_null(&mut self, l: LabelId) -> &mut Self {
        self.emit_branch(l, Insn::IfNull)
    }
    /// Branch if non-null.
    pub fn if_non_null(&mut self, l: LabelId) -> &mut Self {
        self.emit_branch(l, Insn::IfNonNull)
    }
    /// Branch if two references are identical.
    pub fn if_ref_eq(&mut self, l: LabelId) -> &mut Self {
        self.emit_branch(l, Insn::IfRefEq)
    }
    /// Branch if two references differ.
    pub fn if_ref_ne(&mut self, l: LabelId) -> &mut Self {
        self.emit_branch(l, Insn::IfRefNe)
    }
    /// Allocate a new instance.
    pub fn new_object(&mut self, c: ClassId) -> &mut Self {
        self.emit(Insn::New(c))
    }
    /// Load an instance field.
    pub fn get_field(&mut self, f: FieldId) -> &mut Self {
        self.emit(Insn::GetField(f))
    }
    /// Store an instance field.
    pub fn put_field(&mut self, f: FieldId) -> &mut Self {
        self.emit(Insn::PutField(f))
    }
    /// Load a static variable.
    pub fn get_static(&mut self, s: StaticId) -> &mut Self {
        self.emit(Insn::GetStatic(s))
    }
    /// Store a static variable.
    pub fn put_static(&mut self, s: StaticId) -> &mut Self {
        self.emit(Insn::PutStatic(s))
    }
    /// Allocate an array.
    pub fn new_array(&mut self, kind: ValueKind) -> &mut Self {
        self.emit(Insn::NewArray(kind))
    }
    /// Load an array element.
    pub fn array_load(&mut self) -> &mut Self {
        self.emit(Insn::ArrayLoad)
    }
    /// Store an array element.
    pub fn array_store(&mut self) -> &mut Self {
        self.emit(Insn::ArrayStore)
    }
    /// Array length.
    pub fn array_length(&mut self) -> &mut Self {
        self.emit(Insn::ArrayLength)
    }
    /// Type test.
    pub fn instance_of(&mut self, c: ClassId) -> &mut Self {
        self.emit(Insn::InstanceOf(c))
    }
    /// Checked cast.
    pub fn check_cast(&mut self, c: ClassId) -> &mut Self {
        self.emit(Insn::CheckCast(c))
    }
    /// Acquire a monitor.
    pub fn monitor_enter(&mut self) -> &mut Self {
        self.emit(Insn::MonitorEnter)
    }
    /// Release a monitor.
    pub fn monitor_exit(&mut self) -> &mut Self {
        self.emit(Insn::MonitorExit)
    }
    /// Call a static method.
    pub fn invoke_static(&mut self, m: MethodId) -> &mut Self {
        self.emit(Insn::InvokeStatic(m))
    }
    /// Call a virtual method.
    pub fn invoke_virtual(&mut self, m: MethodId) -> &mut Self {
        self.emit(Insn::InvokeVirtual(m))
    }
    /// Return void.
    pub fn return_(&mut self) -> &mut Self {
        self.emit(Insn::Return)
    }
    /// Return the top of stack.
    pub fn return_value(&mut self) -> &mut Self {
        self.emit(Insn::ReturnValue)
    }
    /// Throw (control sink).
    pub fn throw(&mut self) -> &mut Self {
        self.emit(Insn::Throw)
    }
    /// Throw the popped object reference as a catchable exception.
    pub fn athrow(&mut self) -> &mut Self {
        self.emit(Insn::Athrow)
    }

    /// Registers an exception-table entry covering `[start, end)` with the
    /// given handler, catching `catch_class` (or everything when `None`).
    /// Labels are resolved in [`MethodBuilder::build`]; entries are matched
    /// in registration order, innermost regions first by convention.
    pub fn exception_region(
        &mut self,
        start: LabelId,
        end: LabelId,
        handler: LabelId,
        catch_class: Option<ClassId>,
    ) -> &mut Self {
        self.region_fixups.push((start, end, handler, catch_class));
        self
    }

    /// Finalizes the method, patching all branch targets.
    ///
    /// # Errors
    ///
    /// Fails if a label was used but never bound, or if the body does not
    /// end in a terminator or unconditional branch.
    pub fn build(mut self) -> Result<Method, BuildError> {
        for (at, label) in &self.fixups {
            let target = self.labels[label.0 as usize].ok_or(BuildError::UnboundLabel(label.0))?;
            let insn = &mut self.method.code[*at];
            *insn = match *insn {
                Insn::Goto(_) => Insn::Goto(target),
                Insn::IfCmp(op, _) => Insn::IfCmp(op, target),
                Insn::IfNull(_) => Insn::IfNull(target),
                Insn::IfNonNull(_) => Insn::IfNonNull(target),
                Insn::IfRefEq(_) => Insn::IfRefEq(target),
                Insn::IfRefNe(_) => Insn::IfRefNe(target),
                other => other,
            };
        }
        for (start, end, handler, catch_class) in &self.region_fixups {
            let resolve =
                |l: &LabelId| self.labels[l.0 as usize].ok_or(BuildError::UnboundLabel(l.0));
            self.method.exception_table.push(ExceptionEntry {
                start: resolve(start)?,
                end: resolve(end)?,
                handler: resolve(handler)?,
                catch_class: *catch_class,
            });
        }
        match self.method.code.last() {
            Some(last) if !last.falls_through() => {}
            _ => return Err(BuildError::MissingTerminator),
        }
        self.method.max_locals = self.max_local_seen;
        Ok(self.method)
    }
}

/// Incremental builder for a [`Program`].
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    program: Program,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a class; returns its id.
    pub fn add_class(&mut self, name: &str, superclass: Option<ClassId>) -> ClassId {
        self.program.classes.push(Class {
            name: name.to_string(),
            superclass,
            declared_fields: Vec::new(),
            declared_methods: Vec::new(),
        });
        ClassId::from_index(self.program.classes.len() - 1)
    }

    /// Declares an instance field on `class`; returns its id.
    pub fn add_field(&mut self, class: ClassId, name: &str, kind: ValueKind) -> FieldId {
        self.program.fields.push(Field {
            class,
            name: name.to_string(),
            kind,
        });
        let id = FieldId::from_index(self.program.fields.len() - 1);
        self.program.classes[class.index()].declared_fields.push(id);
        id
    }

    /// Declares a static variable; returns its id.
    pub fn add_static(&mut self, name: &str, kind: ValueKind) -> StaticId {
        self.program.statics.push(StaticDecl {
            name: name.to_string(),
            kind,
        });
        StaticId::from_index(self.program.statics.len() - 1)
    }

    /// Adds a finished method; returns its id and registers it on its
    /// declaring class, if any.
    pub fn add_method(&mut self, method: Method) -> MethodId {
        let class = method.class;
        self.program.methods.push(method);
        let id = MethodId::from_index(self.program.methods.len() - 1);
        if let Some(c) = class {
            self.program.classes[c.index()].declared_methods.push(id);
        }
        id
    }

    /// Reserves a method slot before its body exists, so mutually recursive
    /// methods can reference each other. Fill it later with
    /// [`ProgramBuilder::set_method_body`].
    pub fn declare_method(
        &mut self,
        class: Option<ClassId>,
        name: &str,
        param_count: u16,
        returns_value: bool,
    ) -> MethodId {
        self.add_method(Method {
            class,
            name: name.to_string(),
            param_count,
            returns_value,
            is_static: class.is_none(),
            is_synchronized: false,
            max_locals: param_count,
            code: vec![Insn::Return],
            exception_table: Vec::new(),
        })
    }

    /// Replaces the body of a previously declared method.
    ///
    /// # Panics
    ///
    /// Panics if the declaration and the body disagree on name, class,
    /// parameter count or return kind.
    pub fn set_method_body(&mut self, id: MethodId, method: Method) {
        let slot = &mut self.program.methods[id.index()];
        assert_eq!(slot.name, method.name, "method name mismatch");
        assert_eq!(slot.class, method.class, "method class mismatch");
        assert_eq!(slot.param_count, method.param_count, "param count mismatch");
        assert_eq!(
            slot.returns_value, method.returns_value,
            "return kind mismatch"
        );
        *slot = method;
    }

    /// Read-only view of the program under construction, for name lookups
    /// before [`ProgramBuilder::build`].
    pub fn peek_program(&self) -> &Program {
        &self.program
    }

    /// Finalizes the program, checking name uniqueness and hierarchy
    /// acyclicity.
    ///
    /// # Errors
    ///
    /// Returns the first structural violation found.
    pub fn build(self) -> Result<Program, ProgramError> {
        let p = self.program;
        let mut names = HashSet::new();
        for c in &p.classes {
            if !names.insert(c.name.clone()) {
                return Err(ProgramError::DuplicateClass(c.name.clone()));
            }
        }
        for c in &p.classes {
            let mut fnames = HashSet::new();
            for &fid in &c.declared_fields {
                if !fnames.insert(p.field(fid).name.clone()) {
                    return Err(ProgramError::DuplicateField(
                        c.name.clone(),
                        p.field(fid).name.clone(),
                    ));
                }
            }
            let mut mnames = HashSet::new();
            for &mid in &c.declared_methods {
                if !mnames.insert(p.method(mid).name.clone()) {
                    return Err(ProgramError::DuplicateMethod(format!(
                        "{}.{}",
                        c.name,
                        p.method(mid).name
                    )));
                }
            }
        }
        let mut snames = HashSet::new();
        for s in &p.statics {
            if !snames.insert(s.name.clone()) {
                return Err(ProgramError::DuplicateStatic(s.name.clone()));
            }
        }
        let mut free = HashSet::new();
        for m in &p.methods {
            if m.class.is_none() && !free.insert(m.name.clone()) {
                return Err(ProgramError::DuplicateMethod(m.name.clone()));
            }
        }
        p.check_hierarchy()?;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_patched() {
        let mut mb = MethodBuilder::new_static("f", 0, true);
        let l = mb.new_label();
        mb.goto(l);
        mb.bind(l);
        mb.const_(42);
        mb.return_value();
        let m = mb.build().unwrap();
        assert_eq!(m.code[0], Insn::Goto(1));
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut mb = MethodBuilder::new_static("f", 0, false);
        let l = mb.new_label();
        mb.goto(l);
        assert_eq!(mb.build().unwrap_err(), BuildError::UnboundLabel(0));
    }

    #[test]
    fn missing_terminator_is_an_error() {
        let mut mb = MethodBuilder::new_static("f", 0, false);
        mb.const_(1);
        assert_eq!(mb.build().unwrap_err(), BuildError::MissingTerminator);
    }

    #[test]
    fn max_locals_tracks_stores() {
        let mut mb = MethodBuilder::new_static("f", 1, false);
        mb.const_(1);
        mb.store(5);
        mb.return_();
        let m = mb.build().unwrap();
        assert_eq!(m.max_locals, 6);
    }

    #[test]
    fn duplicate_class_rejected() {
        let mut pb = ProgramBuilder::new();
        pb.add_class("A", None);
        pb.add_class("A", None);
        assert_eq!(
            pb.build().unwrap_err(),
            ProgramError::DuplicateClass("A".into())
        );
    }

    #[test]
    fn duplicate_static_rejected() {
        let mut pb = ProgramBuilder::new();
        pb.add_static("g", ValueKind::Int);
        pb.add_static("g", ValueKind::Ref);
        assert_eq!(
            pb.build().unwrap_err(),
            ProgramError::DuplicateStatic("g".into())
        );
    }

    #[test]
    fn declare_then_fill_body() {
        let mut pb = ProgramBuilder::new();
        let id = pb.declare_method(None, "f", 0, true);
        let mut mb = MethodBuilder::new_static("f", 0, true);
        mb.const_(7);
        mb.return_value();
        pb.set_method_body(id, mb.build().unwrap());
        let p = pb.build().unwrap();
        assert_eq!(p.method(id).code.len(), 2);
    }
}
