//! Disassembler: renders a [`Program`] back into the assembler syntax
//! accepted by [`crate::asm::parse_program`].
//!
//! The output round-trips: parsing the disassembly yields a structurally
//! identical program (same classes, fields, statics, method signatures
//! and instruction streams), which the test suite checks property-style.

use crate::{ClassId, Insn, Method, MethodId, Program};
use std::fmt::Write as _;

/// Renders the whole program.
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    for (i, class) in program.classes.iter().enumerate() {
        let id = ClassId::from_index(i);
        let _ = write!(out, "class {}", class.name);
        if let Some(sup) = class.superclass {
            let _ = write!(out, " extends {}", program.class(sup).name);
        }
        let _ = writeln!(out, " {{");
        for &f in &class.declared_fields {
            let field = program.field(f);
            let _ = writeln!(out, "    field {} {}", field.name, field.kind);
        }
        let _ = writeln!(out, "}}");
        let _ = id;
    }
    for s in &program.statics {
        let _ = writeln!(out, "static {} {}", s.name, s.kind);
    }
    for (i, method) in program.methods.iter().enumerate() {
        out.push_str(&disassemble_method(
            program,
            MethodId::from_index(i),
            method,
        ));
    }
    out
}

fn label_name(bci: u32) -> String {
    format!("L{bci}")
}

fn disassemble_method(program: &Program, _id: MethodId, method: &Method) -> String {
    let mut out = String::new();
    let _ = write!(out, "method ");
    match method.class {
        Some(c) => {
            let _ = write!(out, "virtual {}.{}", program.class(c).name, method.name);
        }
        None => {
            let _ = write!(out, "{}", method.name);
        }
    }
    let _ = write!(out, " {}", method.param_count);
    if method.returns_value {
        let _ = write!(out, " returns");
    }
    if method.is_synchronized {
        let _ = write!(out, " synchronized");
    }
    let _ = writeln!(out, " {{");

    // Branch targets and exception-table boundaries need labels.
    let mut targets: Vec<u32> = method
        .code
        .iter()
        .filter_map(|i| i.branch_target())
        .collect();
    for e in &method.exception_table {
        targets.extend([e.start, e.end, e.handler]);
    }
    targets.sort_unstable();
    targets.dedup();

    // `try` directives first, preserving table (= dispatch) order.
    for e in &method.exception_table {
        let catch = match e.catch_class {
            Some(c) => program.class(c).name.as_str(),
            None => "*",
        };
        let _ = writeln!(
            out,
            "    try {} {} {} {}",
            label_name(e.start),
            label_name(e.end),
            label_name(e.handler),
            catch
        );
    }

    for (bci, insn) in method.code.iter().enumerate() {
        if targets.binary_search(&(bci as u32)).is_ok() {
            let _ = writeln!(out, "{}:", label_name(bci as u32));
        }
        let _ = writeln!(out, "    {}", render_insn(program, *insn));
    }
    // An exception range may end at code length (exclusive bound).
    if targets.binary_search(&(method.code.len() as u32)).is_ok() {
        let _ = writeln!(out, "{}:", label_name(method.code.len() as u32));
    }
    let _ = writeln!(out, "}}");
    out
}

fn field_ref(program: &Program, f: crate::FieldId) -> String {
    let field = program.field(f);
    format!("{}.{}", program.class(field.class).name, field.name)
}

fn method_ref(program: &Program, m: MethodId) -> String {
    let method = program.method(m);
    match method.class {
        Some(c) => format!("{}.{}", program.class(c).name, method.name),
        None => method.name.clone(),
    }
}

fn render_insn(program: &Program, insn: Insn) -> String {
    match insn {
        Insn::Const(v) => format!("const {v}"),
        Insn::ConstNull => "cnull".into(),
        Insn::Load(n) => format!("load {n}"),
        Insn::Store(n) => format!("store {n}"),
        Insn::Add => "add".into(),
        Insn::Sub => "sub".into(),
        Insn::Mul => "mul".into(),
        Insn::Div => "div".into(),
        Insn::Rem => "rem".into(),
        Insn::Neg => "neg".into(),
        Insn::And => "and".into(),
        Insn::Or => "or".into(),
        Insn::Xor => "xor".into(),
        Insn::Shl => "shl".into(),
        Insn::Shr => "shr".into(),
        Insn::Pop => "pop".into(),
        Insn::Dup => "dup".into(),
        Insn::Swap => "swap".into(),
        Insn::Goto(t) => format!("goto {}", label_name(t)),
        Insn::IfCmp(op, t) => format!("ifcmp {op} {}", label_name(t)),
        Insn::IfNull(t) => format!("ifnull {}", label_name(t)),
        Insn::IfNonNull(t) => format!("ifnonnull {}", label_name(t)),
        Insn::IfRefEq(t) => format!("ifrefeq {}", label_name(t)),
        Insn::IfRefNe(t) => format!("ifrefne {}", label_name(t)),
        Insn::New(c) => format!("new {}", program.class(c).name),
        Insn::GetField(f) => format!("getfield {}", field_ref(program, f)),
        Insn::PutField(f) => format!("putfield {}", field_ref(program, f)),
        Insn::GetStatic(s) => format!("getstatic {}", program.static_decl(s).name),
        Insn::PutStatic(s) => format!("putstatic {}", program.static_decl(s).name),
        Insn::NewArray(k) => format!("newarray {k}"),
        Insn::ArrayLoad => "aload".into(),
        Insn::ArrayStore => "astore".into(),
        Insn::ArrayLength => "arraylen".into(),
        Insn::InstanceOf(c) => format!("instanceof {}", program.class(c).name),
        Insn::CheckCast(c) => format!("checkcast {}", program.class(c).name),
        Insn::MonitorEnter => "monitorenter".into(),
        Insn::MonitorExit => "monitorexit".into(),
        Insn::InvokeStatic(m) => format!("invokestatic {}", method_ref(program, m)),
        Insn::InvokeVirtual(m) => format!("invokevirtual {}", method_ref(program, m)),
        Insn::Return => "ret".into(),
        Insn::ReturnValue => "retv".into(),
        Insn::Throw => "throw".into(),
        Insn::Athrow => "athrow".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::parse_program;

    const SAMPLE: &str = "
        class A { field x int }
        class B extends A { field r ref }
        static g ref
        method virtual A.m 2 returns synchronized {
            load 0 getfield A.x load 1 add retv
        }
        method f 1 returns {
            new B store 1
            load 1 load 0 putfield A.x
            load 1 const 5 invokevirtual A.m
            const 0 ifcmp le Lx
            load 1 putstatic g
        Lx:
            const 3 newarray int arraylen
            retv
        }
    ";

    fn structurally_equal(a: &Program, b: &Program) -> bool {
        a.classes.len() == b.classes.len()
            && a.fields.len() == b.fields.len()
            && a.statics.len() == b.statics.len()
            && a.methods.len() == b.methods.len()
            && a.methods.iter().zip(&b.methods).all(|(x, y)| {
                x.code == y.code
                    && x.exception_table == y.exception_table
                    && x.name == y.name
                    && x.param_count == y.param_count
                    && x.returns_value == y.returns_value
                    && x.is_synchronized == y.is_synchronized
            })
            && a.classes
                .iter()
                .zip(&b.classes)
                .all(|(x, y)| x.name == y.name && x.superclass == y.superclass)
    }

    #[test]
    fn round_trips_sample() {
        let p1 = parse_program(SAMPLE).unwrap();
        let text = disassemble(&p1);
        let p2 = parse_program(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert!(structurally_equal(&p1, &p2), "round trip differs:\n{text}");
        // And again, to be sure the printer is a fixpoint.
        let text2 = disassemble(&p2);
        assert_eq!(text, text2);
    }

    #[test]
    fn round_trips_exception_tables() {
        let src = "
            class Err { field code int }
            method f 0 returns {
                try Ls Le Lh Err
                try Lall Lend Lh *
            Ls:
                new Err
                athrow
            Le:
            Lh:
                pop
                const 1
                retv
            Lall:
                pop
                const 2
                retv
            Lend:
            }";
        let p1 = parse_program(src).unwrap();
        crate::verify_program(&p1).unwrap();
        let text = disassemble(&p1);
        let p2 = parse_program(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert!(structurally_equal(&p1, &p2), "round trip differs:\n{text}");
        assert_eq!(text, disassemble(&p2));
        assert!(text.contains("try L0 L2 L2 Err"), "{text}");
        assert!(text.contains("athrow"), "{text}");
    }

    #[test]
    fn labels_emitted_for_targets() {
        let p = parse_program(
            "method f 1 returns { load 0 const 0 ifcmp lt Ln const 1 retv Ln: const -1 retv }",
        )
        .unwrap();
        let text = disassemble(&p);
        assert!(text.contains("L5:"), "{text}");
        assert!(text.contains("ifcmp lt L5"), "{text}");
    }
}
