//! The instruction set: a stack machine modelled on the subset of JVM
//! bytecode that matters to escape analysis.
//!
//! Branch targets are instruction indices ("bci"s) into the owning method's
//! code vector. Operand-stack effects are documented per instruction and
//! checked by [`crate::verify_method`].

use crate::{ClassId, FieldId, MethodId, StaticId, ValueKind};
use std::fmt;

/// Integer comparison operator used by [`Insn::IfCmp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
    /// `a < b`
    Lt,
    /// `a <= b`
    Le,
    /// `a > b`
    Gt,
    /// `a >= b`
    Ge,
}

impl CmpOp {
    /// Evaluates the comparison on two integers.
    #[inline]
    pub fn apply(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// The comparison with operands swapped is equal to the comparison with
    /// this operator (`a op b == b op.flipped() a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Logical negation: `!(a op b) == a op.negated() b`.
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// A single bytecode instruction.
///
/// Stack effects are written `[..., a, b] -> [..., r]` with the top of stack
/// on the right.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Insn {
    /// Push an integer constant. `[] -> [c]`
    Const(i64),
    /// Push the null reference. `[] -> [null]`
    ConstNull,
    /// Push local variable `n`. `[] -> [v]`
    Load(u16),
    /// Pop into local variable `n`. `[v] -> []`
    Store(u16),

    /// `[a, b] -> [a + b]` (wrapping)
    Add,
    /// `[a, b] -> [a - b]` (wrapping)
    Sub,
    /// `[a, b] -> [a * b]` (wrapping)
    Mul,
    /// `[a, b] -> [a / b]`; division by zero raises a runtime error.
    Div,
    /// `[a, b] -> [a % b]`; division by zero raises a runtime error.
    Rem,
    /// `[a] -> [-a]` (wrapping)
    Neg,
    /// `[a, b] -> [a & b]`
    And,
    /// `[a, b] -> [a | b]`
    Or,
    /// `[a, b] -> [a ^ b]`
    Xor,
    /// `[a, b] -> [a << (b & 63)]`
    Shl,
    /// `[a, b] -> [a >> (b & 63)]` (arithmetic)
    Shr,

    /// `[v] -> []`
    Pop,
    /// `[v] -> [v, v]`
    Dup,
    /// `[a, b] -> [b, a]`
    Swap,

    /// Unconditional jump to the target bci. `[] -> []`
    Goto(u32),
    /// Pop `b` then `a`; jump if `a op b` holds on integers. `[a, b] -> []`
    IfCmp(CmpOp, u32),
    /// Jump if the popped reference is null. `[r] -> []`
    IfNull(u32),
    /// Jump if the popped reference is non-null. `[r] -> []`
    IfNonNull(u32),
    /// Pop two references; jump if they are the same object (or both null).
    /// `[a, b] -> []`
    IfRefEq(u32),
    /// Pop two references; jump if they are different objects. `[a, b] -> []`
    IfRefNe(u32),

    /// Allocate a new instance with default-initialized fields.
    /// `[] -> [ref]`
    New(ClassId),
    /// Load an instance field. `[ref] -> [v]`
    GetField(FieldId),
    /// Store an instance field. `[ref, v] -> []`
    PutField(FieldId),
    /// Load a static (global) variable. `[] -> [v]`
    GetStatic(StaticId),
    /// Store a static (global) variable; the canonical escape point.
    /// `[v] -> []`
    PutStatic(StaticId),

    /// Allocate an array of the given element kind. `[len] -> [ref]`
    NewArray(ValueKind),
    /// Load an array element. `[ref, idx] -> [v]`
    ArrayLoad,
    /// Store an array element. `[ref, idx, v] -> []`
    ArrayStore,
    /// Array length. `[ref] -> [len]`
    ArrayLength,

    /// Type test; pushes 1 if the reference is a non-null instance of the
    /// class (or a subclass), 0 otherwise. `[ref] -> [i]`
    InstanceOf(ClassId),
    /// Checked cast; raises a runtime error if the non-null reference is not
    /// an instance of the class. `[ref] -> [ref]`
    CheckCast(ClassId),

    /// Acquire the monitor of the popped object. `[ref] -> []`
    MonitorEnter,
    /// Release the monitor of the popped object. `[ref] -> []`
    MonitorExit,

    /// Call a static method; pops the arguments (last argument on top) and
    /// pushes the return value if the callee returns one.
    /// `[a0, ..., an] -> [r?]`
    InvokeStatic(MethodId),
    /// Call a virtual method; slot 0 of the callee receives the receiver,
    /// dispatch is on the receiver's dynamic class.
    /// `[recv, a1, ..., an] -> [r?]`
    InvokeVirtual(MethodId),

    /// Return from a `void` method. `[] -> !`
    Return,
    /// Return the top of stack. `[v] -> !`
    ReturnValue,
    /// Throw: aborts execution of the program with a user error carrying the
    /// popped integer code (uncatchable; `Throw` is a control sink and an
    /// escape point, as in the paper's IR figures).
    /// `[code] -> !`
    Throw,
    /// Throw the popped (non-null) object reference as an exception.
    /// Dispatch walks the exception tables of the active frames innermost
    /// first (see [`crate::ExceptionEntry`]); an uncaught exception aborts
    /// the call with an uncaught-exception error. Throwing null raises the
    /// null-pointer runtime error instead. `[ref] -> !`
    Athrow,
}

impl Insn {
    /// Number of values popped from the operand stack.
    pub fn pops(self) -> usize {
        match self {
            Insn::Const(_)
            | Insn::ConstNull
            | Insn::Load(_)
            | Insn::Goto(_)
            | Insn::New(_)
            | Insn::GetStatic(_)
            | Insn::Return => 0,
            Insn::Store(_)
            | Insn::Neg
            | Insn::Pop
            | Insn::Dup
            | Insn::IfNull(_)
            | Insn::IfNonNull(_)
            | Insn::GetField(_)
            | Insn::PutStatic(_)
            | Insn::NewArray(_)
            | Insn::ArrayLength
            | Insn::InstanceOf(_)
            | Insn::CheckCast(_)
            | Insn::MonitorEnter
            | Insn::MonitorExit
            | Insn::ReturnValue
            | Insn::Throw
            | Insn::Athrow => 1,
            Insn::Add
            | Insn::Sub
            | Insn::Mul
            | Insn::Div
            | Insn::Rem
            | Insn::And
            | Insn::Or
            | Insn::Xor
            | Insn::Shl
            | Insn::Shr
            | Insn::Swap
            | Insn::IfCmp(..)
            | Insn::IfRefEq(_)
            | Insn::IfRefNe(_)
            | Insn::PutField(_)
            | Insn::ArrayLoad => 2,
            Insn::ArrayStore => 3,
            // Calls are resolved against the program; handled separately by
            // the verifier.
            Insn::InvokeStatic(_) | Insn::InvokeVirtual(_) => 0,
        }
    }

    /// Number of values pushed onto the operand stack.
    pub fn pushes(self) -> usize {
        match self {
            Insn::Const(_)
            | Insn::ConstNull
            | Insn::Load(_)
            | Insn::New(_)
            | Insn::GetField(_)
            | Insn::GetStatic(_)
            | Insn::NewArray(_)
            | Insn::ArrayLoad
            | Insn::ArrayLength
            | Insn::InstanceOf(_)
            | Insn::CheckCast(_) => 1,
            Insn::Dup => 2,
            Insn::Swap => 2,
            Insn::Neg => 1,
            Insn::Add
            | Insn::Sub
            | Insn::Mul
            | Insn::Div
            | Insn::Rem
            | Insn::And
            | Insn::Or
            | Insn::Xor
            | Insn::Shl
            | Insn::Shr => 1,
            _ => 0,
        }
    }

    /// The explicit branch target, if this is a branch instruction.
    pub fn branch_target(self) -> Option<u32> {
        match self {
            Insn::Goto(t)
            | Insn::IfCmp(_, t)
            | Insn::IfNull(t)
            | Insn::IfNonNull(t)
            | Insn::IfRefEq(t)
            | Insn::IfRefNe(t) => Some(t),
            _ => None,
        }
    }

    /// Whether control can fall through to the next instruction.
    pub fn falls_through(self) -> bool {
        !matches!(
            self,
            Insn::Goto(_) | Insn::Return | Insn::ReturnValue | Insn::Throw | Insn::Athrow
        )
    }

    /// Whether this instruction ends the method (a control sink).
    pub fn is_terminator(self) -> bool {
        matches!(
            self,
            Insn::Return | Insn::ReturnValue | Insn::Throw | Insn::Athrow
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_apply_covers_all_ops() {
        assert!(CmpOp::Eq.apply(1, 1));
        assert!(CmpOp::Ne.apply(1, 2));
        assert!(CmpOp::Lt.apply(1, 2));
        assert!(CmpOp::Le.apply(2, 2));
        assert!(CmpOp::Gt.apply(3, 2));
        assert!(CmpOp::Ge.apply(2, 2));
        assert!(!CmpOp::Lt.apply(2, 2));
    }

    #[test]
    fn cmp_negated_is_logical_not() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for (a, b) in [(0, 0), (1, 2), (2, 1)] {
                assert_eq!(op.apply(a, b), !op.negated().apply(a, b));
            }
        }
    }

    #[test]
    fn cmp_flipped_swaps_operands() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for (a, b) in [(0, 0), (1, 2), (2, 1)] {
                assert_eq!(op.apply(a, b), op.flipped().apply(b, a));
            }
        }
    }

    #[test]
    fn branch_targets_reported() {
        assert_eq!(Insn::Goto(7).branch_target(), Some(7));
        assert_eq!(Insn::IfCmp(CmpOp::Lt, 3).branch_target(), Some(3));
        assert_eq!(Insn::Add.branch_target(), None);
    }

    #[test]
    fn terminators_do_not_fall_through() {
        assert!(!Insn::Return.falls_through());
        assert!(!Insn::Goto(0).falls_through());
        assert!(Insn::IfNull(0).falls_through());
        assert!(Insn::Return.is_terminator());
        assert!(!Insn::Goto(0).is_terminator());
    }

    #[test]
    fn stack_effects_balanced_for_arith() {
        assert_eq!(Insn::Add.pops(), 2);
        assert_eq!(Insn::Add.pushes(), 1);
        assert_eq!(Insn::Dup.pops(), 1);
        assert_eq!(Insn::Dup.pushes(), 2);
    }
}
