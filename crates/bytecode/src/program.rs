//! Program metadata: classes, fields, methods and statics in flat arenas.

use crate::{ClassId, FieldId, Insn, MethodId, StaticId};
use std::error::Error;
use std::fmt;

/// Bytes occupied by every object header (mirrors a 64-bit JVM with
/// compressed-oops disabled: mark word + class pointer).
pub const OBJECT_HEADER_BYTES: u64 = 16;

/// Bytes occupied by one field or array-element slot.
pub const VALUE_SLOT_BYTES: u64 = 8;

/// The two storage kinds the bytecode distinguishes: 64-bit integers and
/// object references. Booleans are integers `0`/`1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ValueKind {
    /// 64-bit signed integer.
    #[default]
    Int,
    /// Object (or array) reference; may be null.
    Ref,
}

impl fmt::Display for ValueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ValueKind::Int => "int",
            ValueKind::Ref => "ref",
        })
    }
}

/// A class declaration: name, optional superclass, declared fields and
/// declared methods. Inherited fields/methods are resolved via
/// [`Program::instance_fields`] and [`Program::resolve_virtual`].
#[derive(Clone, Debug)]
pub struct Class {
    /// Class name, unique within the program.
    pub name: String,
    /// Superclass, if any (single inheritance).
    pub superclass: Option<ClassId>,
    /// Fields declared by this class itself (not inherited ones).
    pub declared_fields: Vec<FieldId>,
    /// Methods declared by this class itself.
    pub declared_methods: Vec<MethodId>,
}

/// An instance field declaration.
#[derive(Clone, Debug)]
pub struct Field {
    /// Declaring class.
    pub class: ClassId,
    /// Field name, unique within its class.
    pub name: String,
    /// Storage kind, used for default values and size accounting.
    pub kind: ValueKind,
}

/// A static (global) variable declaration.
#[derive(Clone, Debug)]
pub struct StaticDecl {
    /// Name, unique within the program.
    pub name: String,
    /// Storage kind.
    pub kind: ValueKind,
}

/// One row of a method's exception table, mirroring the JVM's
/// `exception_table` entries: while executing a bci in `[start, end)`, a
/// thrown exception whose class matches `catch_class` transfers control to
/// `handler` with the operand stack cleared to just the exception
/// reference. Entries are consulted in table order (first match wins);
/// `catch_class: None` is a catch-all, which is also how `finally` blocks
/// are lowered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ExceptionEntry {
    /// First protected bci (inclusive).
    pub start: u32,
    /// Past-the-end protected bci (exclusive; may equal `code.len()`).
    pub end: u32,
    /// Handler entry bci.
    pub handler: u32,
    /// Catch type: the handler matches this class and its subclasses;
    /// `None` catches everything.
    pub catch_class: Option<ClassId>,
}

impl ExceptionEntry {
    /// Whether the protected range covers `bci`.
    #[inline]
    pub fn covers(&self, bci: u32) -> bool {
        self.start <= bci && bci < self.end
    }
}

/// A method: code plus calling metadata.
///
/// Parameters arrive in locals `0..param_count`; for virtual methods local
/// `0` is the receiver. There is no separate descriptor language — all
/// parameters are dynamically typed values.
#[derive(Clone, Debug)]
pub struct Method {
    /// Declaring class for virtual methods, `None` for free static methods.
    pub class: Option<ClassId>,
    /// Method name; virtual dispatch matches on this name up the hierarchy.
    pub name: String,
    /// Number of parameters, including the receiver for virtual methods.
    pub param_count: u16,
    /// Whether the method pushes a return value.
    pub returns_value: bool,
    /// `true` for static methods (no receiver, no dynamic dispatch).
    pub is_static: bool,
    /// Synchronized methods lock the receiver (or a program-wide token for
    /// static methods is *not* modelled — only instance methods may be
    /// synchronized here).
    pub is_synchronized: bool,
    /// Number of local-variable slots (≥ `param_count`).
    pub max_locals: u16,
    /// The instruction stream; branch targets index into this vector.
    pub code: Vec<Insn>,
    /// Exception handlers, in match order (see [`ExceptionEntry`]).
    pub exception_table: Vec<ExceptionEntry>,
}

impl Method {
    /// A stable human-readable name like `Key.equals` or `getValue`.
    pub fn qualified_name(&self, program: &Program) -> String {
        match self.class {
            Some(c) => format!("{}.{}", program.class(c).name, self.name),
            None => self.name.clone(),
        }
    }

    /// Exception-table entries whose protected range covers `bci`, in
    /// table order.
    pub fn handlers_at(&self, bci: u32) -> impl Iterator<Item = &ExceptionEntry> {
        self.exception_table.iter().filter(move |e| e.covers(bci))
    }

    /// The method contains an `athrow` (the only instruction that raises a
    /// catchable exception).
    pub fn has_athrow(&self) -> bool {
        self.code.iter().any(|i| matches!(i, Insn::Athrow))
    }
}

/// Errors raised while assembling or querying a [`Program`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// A class name was declared twice.
    DuplicateClass(String),
    /// A field name was declared twice in one class.
    DuplicateField(String, String),
    /// A static name was declared twice.
    DuplicateStatic(String),
    /// A method name was declared twice in the same scope.
    DuplicateMethod(String),
    /// The class hierarchy contains a cycle.
    CyclicHierarchy(String),
    /// Lookup by name failed.
    NotFound(String),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::DuplicateClass(n) => write!(f, "duplicate class `{n}`"),
            ProgramError::DuplicateField(c, n) => {
                write!(f, "duplicate field `{n}` in class `{c}`")
            }
            ProgramError::DuplicateStatic(n) => write!(f, "duplicate static `{n}`"),
            ProgramError::DuplicateMethod(n) => write!(f, "duplicate method `{n}`"),
            ProgramError::CyclicHierarchy(n) => {
                write!(f, "cyclic class hierarchy involving `{n}`")
            }
            ProgramError::NotFound(n) => write!(f, "`{n}` not found"),
        }
    }
}

impl Error for ProgramError {}

/// A complete program: all metadata arenas plus method code.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Class arena, indexed by [`ClassId`].
    pub classes: Vec<Class>,
    /// Field arena, indexed by [`FieldId`].
    pub fields: Vec<Field>,
    /// Method arena, indexed by [`MethodId`].
    pub methods: Vec<Method>,
    /// Static-variable arena, indexed by [`StaticId`].
    pub statics: Vec<StaticDecl>,
}

// The VM shares one `Arc<Program>` with background compiler threads, so
// the program (and everything reachable from it) must stay thread-safe.
// This trips at compile time if an `Rc`/`RefCell`/raw pointer ever sneaks
// into the arenas.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Program>();
};

impl Program {
    /// Access a class by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.index()]
    }

    /// Access a field by id.
    #[inline]
    pub fn field(&self, id: FieldId) -> &Field {
        &self.fields[id.index()]
    }

    /// Access a method by id.
    #[inline]
    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id.index()]
    }

    /// Access a static declaration by id.
    #[inline]
    pub fn static_decl(&self, id: StaticId) -> &StaticDecl {
        &self.statics[id.index()]
    }

    /// Finds a class by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.classes
            .iter()
            .position(|c| c.name == name)
            .map(ClassId::from_index)
    }

    /// Finds a declared field by `Class.name` pair.
    pub fn field_by_name(&self, class: ClassId, name: &str) -> Option<FieldId> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            for &fid in &self.class(c).declared_fields {
                if self.field(fid).name == name {
                    return Some(fid);
                }
            }
            cur = self.class(c).superclass;
        }
        None
    }

    /// Finds a static variable by name.
    pub fn static_by_name(&self, name: &str) -> Option<StaticId> {
        self.statics
            .iter()
            .position(|s| s.name == name)
            .map(StaticId::from_index)
    }

    /// Finds a free static method by name.
    pub fn static_method_by_name(&self, name: &str) -> Option<MethodId> {
        self.methods
            .iter()
            .position(|m| m.class.is_none() && m.name == name)
            .map(MethodId::from_index)
    }

    /// Finds a method declared in `class` (not inherited) by name.
    pub fn declared_method_by_name(&self, class: ClassId, name: &str) -> Option<MethodId> {
        self.class(class)
            .declared_methods
            .iter()
            .copied()
            .find(|&m| self.method(m).name == name)
    }

    /// Resolves a virtual call on a receiver of dynamic class
    /// `receiver_class`: walks the hierarchy from the receiver's class
    /// upwards and returns the first method whose name matches the
    /// statically named target.
    pub fn resolve_virtual(
        &self,
        receiver_class: ClassId,
        target: MethodId,
    ) -> Result<MethodId, ProgramError> {
        let name = &self.method(target).name;
        let mut cur = Some(receiver_class);
        while let Some(c) = cur {
            if let Some(m) = self.declared_method_by_name(c, name) {
                return Ok(m);
            }
            cur = self.class(c).superclass;
        }
        Err(ProgramError::NotFound(format!(
            "virtual method `{}` on class `{}`",
            name,
            self.class(receiver_class).name
        )))
    }

    /// All instance fields of a class in layout order: superclass fields
    /// first, then declared fields.
    pub fn instance_fields(&self, class: ClassId) -> Vec<FieldId> {
        let mut chain = Vec::new();
        let mut cur = Some(class);
        while let Some(c) = cur {
            chain.push(c);
            cur = self.class(c).superclass;
        }
        let mut out = Vec::new();
        for &c in chain.iter().rev() {
            out.extend_from_slice(&self.class(c).declared_fields);
        }
        out
    }

    /// Heap size in bytes of an instance of `class` (header + one slot per
    /// field, matching the paper's "MB per iteration" accounting).
    pub fn object_size(&self, class: ClassId) -> u64 {
        OBJECT_HEADER_BYTES + VALUE_SLOT_BYTES * self.instance_fields(class).len() as u64
    }

    /// Heap size in bytes of an array of `len` elements.
    pub fn array_size(len: u64) -> u64 {
        OBJECT_HEADER_BYTES + VALUE_SLOT_BYTES * len
    }

    /// Whether `class` is `ancestor` or one of its subclasses.
    pub fn is_subclass_of(&self, class: ClassId, ancestor: ClassId) -> bool {
        let mut cur = Some(class);
        while let Some(c) = cur {
            if c == ancestor {
                return true;
            }
            cur = self.class(c).superclass;
        }
        false
    }

    /// All classes that are `ancestor` or a subclass of it.
    pub fn subclasses_of(&self, ancestor: ClassId) -> Vec<ClassId> {
        (0..self.classes.len())
            .map(ClassId::from_index)
            .filter(|&c| self.is_subclass_of(c, ancestor))
            .collect()
    }

    /// Resolves exception dispatch for `method` at `bci`: the first
    /// exception-table entry covering `bci` whose catch type matches the
    /// thrown object's dynamic class (subclasses included; `None`
    /// catch-alls match everything). Returns the handler bci.
    pub fn find_handler(&self, method: &Method, bci: u32, thrown: ClassId) -> Option<u32> {
        method
            .handlers_at(bci)
            .find(|e| match e.catch_class {
                None => true,
                Some(c) => self.is_subclass_of(thrown, c),
            })
            .map(|e| e.handler)
    }

    /// Checks the class hierarchy for cycles. Returns the offending class.
    pub fn check_hierarchy(&self) -> Result<(), ProgramError> {
        for (i, class) in self.classes.iter().enumerate() {
            let start = ClassId::from_index(i);
            let mut cur = class.superclass;
            let mut steps = 0usize;
            while let Some(c) = cur {
                if c == start || steps > self.classes.len() {
                    return Err(ProgramError::CyclicHierarchy(class.name.clone()));
                }
                cur = self.class(c).superclass;
                steps += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MethodBuilder, ProgramBuilder};

    fn diamond_free_program() -> (Program, ClassId, ClassId, FieldId, FieldId) {
        let mut pb = ProgramBuilder::new();
        let base = pb.add_class("Base", None);
        let derived = pb.add_class("Derived", Some(base));
        let fa = pb.add_field(base, "a", ValueKind::Int);
        let fb = pb.add_field(derived, "b", ValueKind::Ref);
        (pb.build().unwrap(), base, derived, fa, fb)
    }

    #[test]
    fn instance_fields_are_layout_ordered() {
        let (p, base, derived, fa, fb) = diamond_free_program();
        assert_eq!(p.instance_fields(base), vec![fa]);
        assert_eq!(p.instance_fields(derived), vec![fa, fb]);
    }

    #[test]
    fn object_size_counts_header_and_slots() {
        let (p, base, derived, ..) = diamond_free_program();
        assert_eq!(p.object_size(base), 16 + 8);
        assert_eq!(p.object_size(derived), 16 + 16);
        assert_eq!(Program::array_size(10), 16 + 80);
    }

    #[test]
    fn field_lookup_walks_superclasses() {
        let (p, _, derived, fa, _) = diamond_free_program();
        assert_eq!(p.field_by_name(derived, "a"), Some(fa));
        assert_eq!(p.field_by_name(derived, "zzz"), None);
    }

    #[test]
    fn subclass_relation() {
        let (p, base, derived, ..) = diamond_free_program();
        assert!(p.is_subclass_of(derived, base));
        assert!(!p.is_subclass_of(base, derived));
        assert_eq!(p.subclasses_of(base), vec![base, derived]);
    }

    #[test]
    fn virtual_resolution_prefers_override() {
        let mut pb = ProgramBuilder::new();
        let base = pb.add_class("Base", None);
        let derived = pb.add_class("Derived", Some(base));
        let mut m = MethodBuilder::new_virtual("size", base, 1, true);
        m.const_(1);
        m.return_value();
        let base_m = pb.add_method(m.build().unwrap());
        let mut m = MethodBuilder::new_virtual("size", derived, 1, true);
        m.const_(2);
        m.return_value();
        let derived_m = pb.add_method(m.build().unwrap());
        let p = pb.build().unwrap();
        assert_eq!(p.resolve_virtual(base, base_m).unwrap(), base_m);
        assert_eq!(p.resolve_virtual(derived, base_m).unwrap(), derived_m);
        assert_eq!(p.resolve_virtual(derived, derived_m).unwrap(), derived_m);
    }

    #[test]
    fn hierarchy_cycle_detected() {
        let mut p = Program::default();
        p.classes.push(Class {
            name: "A".into(),
            superclass: Some(ClassId(1)),
            declared_fields: vec![],
            declared_methods: vec![],
        });
        p.classes.push(Class {
            name: "B".into(),
            superclass: Some(ClassId(0)),
            declared_fields: vec![],
            declared_methods: vec![],
        });
        assert!(matches!(
            p.check_hierarchy(),
            Err(ProgramError::CyclicHierarchy(_))
        ));
    }

    #[test]
    fn qualified_names() {
        let (p, base, ..) = diamond_free_program();
        let m = Method {
            class: Some(base),
            name: "foo".into(),
            param_count: 1,
            returns_value: false,
            is_static: false,
            is_synchronized: false,
            max_locals: 1,
            code: vec![Insn::Return],
            exception_table: vec![],
        };
        assert_eq!(m.qualified_name(&p), "Base.foo");
    }
}
