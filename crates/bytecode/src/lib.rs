//! A toy, JVM-modelled bytecode substrate for the Partial Escape Analysis
//! reproduction (Stadler, Würthinger, Mössenböck — CGO 2014).
//!
//! The paper's algorithm runs inside Graal, a just-in-time compiler for Java
//! bytecode. This crate provides the equivalent *input language*: classes
//! with instance fields and single inheritance, static and virtual methods,
//! a stack-based instruction set with object allocation, field access,
//! monitors and calls, plus
//!
//! * a programmatic [`ProgramBuilder`]/[`MethodBuilder`] API,
//! * a textual assembler ([`asm::parse_program`]),
//! * a structural [`verify_program`] pass (stack discipline, branch targets,
//!   local-variable bounds).
//!
//! Values are dynamically typed at runtime (see `pea-runtime`); the bytecode
//! distinguishes only [`ValueKind::Int`] and [`ValueKind::Ref`] where layout
//! or default values matter.
//!
//! # Example
//!
//! ```
//! use pea_bytecode::{ProgramBuilder, MethodBuilder, ValueKind};
//!
//! let mut pb = ProgramBuilder::new();
//! let point = pb.add_class("Point", None);
//! let fx = pb.add_field(point, "x", ValueKind::Int);
//! let mut mb = MethodBuilder::new_static("getX", 1, true);
//! mb.load(0);
//! mb.get_field(fx);
//! mb.return_value();
//! pb.add_method(mb.build().unwrap());
//! let program = pb.build().unwrap();
//! assert_eq!(program.classes.len(), 1);
//! # let _ = fx;
//! ```

pub mod asm;
mod builder;
pub mod disasm;
mod ids;
mod insn;
mod program;
mod verify;

pub use builder::{LabelId, MethodBuilder, ProgramBuilder};
pub use ids::{ClassId, FieldId, MethodId, StaticId};
pub use insn::{CmpOp, Insn};
pub use program::{
    Class, ExceptionEntry, Field, Method, Program, ProgramError, StaticDecl, ValueKind,
    OBJECT_HEADER_BYTES, VALUE_SLOT_BYTES,
};
pub use verify::{verify_method, verify_program, VerifyError};
