//! A textual assembler for [`crate::Program`]s.
//!
//! The grammar is line-friendly but token-based; `#` and `//` start
//! comments. Example:
//!
//! ```text
//! class Key {
//!     field idx int
//!     field ref ref
//! }
//! static cacheKey ref
//!
//! method virtual Key.equals 2 returns synchronized {
//!     load 0
//!     getfield Key.idx
//!     load 1
//!     getfield Key.idx
//!     ifcmp ne Lfalse
//!     const 1
//!     retv
//! Lfalse:
//!     const 0
//!     retv
//! }
//!
//! method getValue 2 returns {
//!     new Key
//!     store 2
//!     load 2
//!     retv
//! }
//! ```
//!
//! Name resolution is two-pass, so methods may reference classes, statics
//! and other methods declared later in the file.

use crate::{
    ClassId, CmpOp, FieldId, MethodBuilder, MethodId, Program, ProgramBuilder, StaticId, ValueKind,
};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// An assembly error with a 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number of the offending token.
    pub line: u32,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl Error for AsmError {}

#[derive(Clone, Debug, PartialEq)]
struct Token {
    text: String,
    line: u32,
}

fn tokenize(source: &str) -> Vec<Token> {
    let mut out = Vec::new();
    for (lineno, raw) in source.lines().enumerate() {
        let line = raw
            .split('#')
            .next()
            .unwrap_or("")
            .split("//")
            .next()
            .unwrap_or("");
        for word in line.split_whitespace() {
            // Braces may be glued to names; split them off.
            let mut rest = word;
            while let Some(stripped) = rest.strip_prefix(['{', '}']) {
                out.push(Token {
                    text: rest[..1].to_string(),
                    line: lineno as u32 + 1,
                });
                rest = stripped;
            }
            if rest.is_empty() {
                continue;
            }
            if let Some(stripped) = rest.strip_suffix(['{', '}']) {
                if !stripped.is_empty() {
                    out.push(Token {
                        text: stripped.to_string(),
                        line: lineno as u32 + 1,
                    });
                }
                out.push(Token {
                    text: rest[rest.len() - 1..].to_string(),
                    line: lineno as u32 + 1,
                });
                continue;
            }
            out.push(Token {
                text: rest.to_string(),
                line: lineno as u32 + 1,
            });
        }
    }
    out
}

struct Cursor {
    tokens: Vec<Token>,
    pos: usize,
}

impl Cursor {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token, AsmError> {
        let t = self.tokens.get(self.pos).cloned().ok_or(AsmError {
            line: self.tokens.last().map_or(0, |t| t.line),
            reason: "unexpected end of input".into(),
        })?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, text: &str) -> Result<(), AsmError> {
        let t = self.next()?;
        if t.text != text {
            return Err(AsmError {
                line: t.line,
                reason: format!("expected `{text}`, found `{}`", t.text),
            });
        }
        Ok(())
    }
}

fn parse_kind(t: &Token) -> Result<ValueKind, AsmError> {
    match t.text.as_str() {
        "int" => Ok(ValueKind::Int),
        "ref" => Ok(ValueKind::Ref),
        other => Err(AsmError {
            line: t.line,
            reason: format!("expected `int` or `ref`, found `{other}`"),
        }),
    }
}

fn parse_cmp(t: &Token) -> Result<CmpOp, AsmError> {
    match t.text.as_str() {
        "eq" => Ok(CmpOp::Eq),
        "ne" => Ok(CmpOp::Ne),
        "lt" => Ok(CmpOp::Lt),
        "le" => Ok(CmpOp::Le),
        "gt" => Ok(CmpOp::Gt),
        "ge" => Ok(CmpOp::Ge),
        other => Err(AsmError {
            line: t.line,
            reason: format!("unknown comparison `{other}`"),
        }),
    }
}

fn parse_int(t: &Token) -> Result<i64, AsmError> {
    t.text.parse::<i64>().map_err(|_| AsmError {
        line: t.line,
        reason: format!("expected integer, found `{}`", t.text),
    })
}

struct MethodDecl {
    name: String,
    class: Option<String>,
    param_count: u16,
    returns_value: bool,
    synchronized: bool,
    body: Vec<Token>,
    line: u32,
}

/// Parses a whole program from assembler text.
///
/// # Errors
///
/// Returns an [`AsmError`] with the offending line on any syntactic or
/// name-resolution failure, including the structural errors reported by
/// [`ProgramBuilder::build`].
pub fn parse_program(source: &str) -> Result<Program, AsmError> {
    let mut cursor = Cursor {
        tokens: tokenize(source),
        pos: 0,
    };
    let mut pb = ProgramBuilder::new();
    let mut class_ids: HashMap<String, ClassId> = HashMap::new();
    let mut pending_supers: Vec<(ClassId, String, u32)> = Vec::new();
    let mut static_ids: HashMap<String, StaticId> = HashMap::new();
    let mut method_decls: Vec<MethodDecl> = Vec::new();

    while let Some(tok) = cursor.peek() {
        match tok.text.as_str() {
            "class" => {
                cursor.next()?;
                let name = cursor.next()?;
                let mut superclass = None;
                if cursor.peek().map(|t| t.text.as_str()) == Some("extends") {
                    cursor.next()?;
                    let sup = cursor.next()?;
                    superclass = Some((sup.text, sup.line));
                }
                let id = pb.add_class(&name.text, None);
                class_ids.insert(name.text.clone(), id);
                if let Some((sup, line)) = superclass {
                    pending_supers.push((id, sup, line));
                }
                cursor.expect("{")?;
                loop {
                    let t = cursor.next()?;
                    match t.text.as_str() {
                        "}" => break,
                        "field" => {
                            let fname = cursor.next()?;
                            let kind = parse_kind(&cursor.next()?)?;
                            pb.add_field(id, &fname.text, kind);
                        }
                        other => {
                            return Err(AsmError {
                                line: t.line,
                                reason: format!("expected `field` or `}}`, found `{other}`"),
                            })
                        }
                    }
                }
            }
            "static" => {
                cursor.next()?;
                let name = cursor.next()?;
                let kind = parse_kind(&cursor.next()?)?;
                let id = pb.add_static(&name.text, kind);
                static_ids.insert(name.text.clone(), id);
            }
            "method" => {
                cursor.next()?;
                let mut is_virtual = false;
                let mut t = cursor.next()?;
                if t.text == "virtual" {
                    is_virtual = true;
                    t = cursor.next()?;
                }
                let (class, name) = if is_virtual {
                    let (c, m) = t.text.split_once('.').ok_or(AsmError {
                        line: t.line,
                        reason: "virtual method name must be `Class.name`".into(),
                    })?;
                    (Some(c.to_string()), m.to_string())
                } else {
                    (None, t.text.clone())
                };
                let params = parse_int(&cursor.next()?)? as u16;
                let mut returns_value = false;
                let mut synchronized = false;
                loop {
                    let t = cursor.next()?;
                    match t.text.as_str() {
                        "returns" => returns_value = true,
                        "synchronized" => synchronized = true,
                        "{" => break,
                        other => {
                            return Err(AsmError {
                                line: t.line,
                                reason: format!(
                                    "expected `returns`, `synchronized` or `{{`, found `{other}`"
                                ),
                            })
                        }
                    }
                }
                let mut body = Vec::new();
                let mut depth = 1;
                loop {
                    let t = cursor.next()?;
                    match t.text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if depth > 0 {
                        body.push(t);
                    }
                }
                method_decls.push(MethodDecl {
                    name,
                    class,
                    param_count: params,
                    returns_value,
                    synchronized,
                    body,
                    line: t.line,
                });
            }
            other => {
                return Err(AsmError {
                    line: tok.line,
                    reason: format!("expected `class`, `static` or `method`, found `{other}`"),
                })
            }
        }
    }

    // Resolve superclasses now that all classes are known.
    let mut program_supers = Vec::new();
    for (id, sup, line) in pending_supers {
        let sup_id = *class_ids.get(&sup).ok_or(AsmError {
            line,
            reason: format!("unknown superclass `{sup}`"),
        })?;
        program_supers.push((id, sup_id));
    }

    // Declare all methods first so bodies can reference them.
    let mut method_ids: HashMap<(Option<String>, String), MethodId> = HashMap::new();
    for d in &method_decls {
        let class = match &d.class {
            Some(name) => Some(*class_ids.get(name).ok_or(AsmError {
                line: d.line,
                reason: format!("unknown class `{name}`"),
            })?),
            None => None,
        };
        let id = pb.declare_method(class, &d.name, d.param_count, d.returns_value);
        method_ids.insert((d.class.clone(), d.name.clone()), id);
    }

    // Assemble bodies.
    for d in &method_decls {
        let class = d.class.as_ref().map(|n| class_ids[n]);
        let mut mb = if let Some(c) = class {
            MethodBuilder::new_virtual(&d.name, c, d.param_count, d.returns_value)
        } else {
            MethodBuilder::new_static(&d.name, d.param_count, d.returns_value)
        };
        if d.synchronized {
            mb.synchronized();
        }
        assemble_body(&mut mb, &d.body, &class_ids, &static_ids, &method_ids, &pb)?;
        let method = mb.build().map_err(|e| AsmError {
            line: d.line,
            reason: format!("in method `{}`: {e}", d.name),
        })?;
        let id = method_ids[&(d.class.clone(), d.name.clone())];
        pb.set_method_body(id, method);
    }

    let mut program = pb.build().map_err(|e| AsmError {
        line: 0,
        reason: e.to_string(),
    })?;
    for (id, sup_id) in program_supers {
        program.classes[id.index()].superclass = Some(sup_id);
    }
    program.check_hierarchy().map_err(|e| AsmError {
        line: 0,
        reason: e.to_string(),
    })?;
    Ok(program)
}

fn resolve_field(
    token: &Token,
    class_ids: &HashMap<String, ClassId>,
    pb: &ProgramBuilder,
) -> Result<FieldId, AsmError> {
    let (cname, fname) = token.text.split_once('.').ok_or(AsmError {
        line: token.line,
        reason: format!("expected `Class.field`, found `{}`", token.text),
    })?;
    let class = *class_ids.get(cname).ok_or(AsmError {
        line: token.line,
        reason: format!("unknown class `{cname}`"),
    })?;
    pb.peek_program()
        .field_by_name(class, fname)
        .ok_or(AsmError {
            line: token.line,
            reason: format!("unknown field `{}`", token.text),
        })
}

fn assemble_body(
    mb: &mut MethodBuilder,
    body: &[Token],
    class_ids: &HashMap<String, ClassId>,
    static_ids: &HashMap<String, StaticId>,
    method_ids: &HashMap<(Option<String>, String), MethodId>,
    pb: &ProgramBuilder,
) -> Result<(), AsmError> {
    // Pre-scan labels (tokens ending in `:`).
    let mut labels = HashMap::new();
    for t in body {
        if let Some(name) = t.text.strip_suffix(':') {
            if labels.contains_key(name) {
                return Err(AsmError {
                    line: t.line,
                    reason: format!("duplicate label `{name}`"),
                });
            }
            labels.insert(name.to_string(), mb.new_label());
        }
    }
    let get_label = |t: &Token| -> Result<crate::LabelId, AsmError> {
        labels.get(&t.text).copied().ok_or(AsmError {
            line: t.line,
            reason: format!("unknown label `{}`", t.text),
        })
    };
    let get_class = |t: &Token| -> Result<ClassId, AsmError> {
        class_ids.get(&t.text).copied().ok_or(AsmError {
            line: t.line,
            reason: format!("unknown class `{}`", t.text),
        })
    };
    let get_static = |t: &Token| -> Result<StaticId, AsmError> {
        static_ids.get(&t.text).copied().ok_or(AsmError {
            line: t.line,
            reason: format!("unknown static `{}`", t.text),
        })
    };

    let mut i = 0usize;
    let next = |i: &mut usize| -> Result<&Token, AsmError> {
        let t = body.get(*i).ok_or(AsmError {
            line: body.last().map_or(0, |t| t.line),
            reason: "unexpected end of method body".into(),
        })?;
        *i += 1;
        Ok(t)
    };

    while i < body.len() {
        let t = next(&mut i)?;
        if let Some(name) = t.text.strip_suffix(':') {
            mb.bind(labels[name]);
            continue;
        }
        match t.text.as_str() {
            "const" => {
                let v = parse_int(next(&mut i)?)?;
                mb.const_(v);
            }
            "cnull" => {
                mb.const_null();
            }
            "load" => {
                let n = parse_int(next(&mut i)?)? as u16;
                mb.load(n);
            }
            "store" => {
                let n = parse_int(next(&mut i)?)? as u16;
                mb.store(n);
            }
            "add" => {
                mb.add();
            }
            "sub" => {
                mb.sub();
            }
            "mul" => {
                mb.mul();
            }
            "div" => {
                mb.div();
            }
            "rem" => {
                mb.rem();
            }
            "neg" => {
                mb.emit(crate::Insn::Neg);
            }
            "and" => {
                mb.emit(crate::Insn::And);
            }
            "or" => {
                mb.emit(crate::Insn::Or);
            }
            "xor" => {
                mb.emit(crate::Insn::Xor);
            }
            "shl" => {
                mb.emit(crate::Insn::Shl);
            }
            "shr" => {
                mb.emit(crate::Insn::Shr);
            }
            "pop" => {
                mb.pop();
            }
            "dup" => {
                mb.dup();
            }
            "swap" => {
                mb.swap();
            }
            "goto" => {
                let l = get_label(next(&mut i)?)?;
                mb.goto(l);
            }
            "ifcmp" => {
                let op = parse_cmp(next(&mut i)?)?;
                let l = get_label(next(&mut i)?)?;
                mb.if_cmp(op, l);
            }
            "ifnull" => {
                let l = get_label(next(&mut i)?)?;
                mb.if_null(l);
            }
            "ifnonnull" => {
                let l = get_label(next(&mut i)?)?;
                mb.if_non_null(l);
            }
            "ifrefeq" => {
                let l = get_label(next(&mut i)?)?;
                mb.if_ref_eq(l);
            }
            "ifrefne" => {
                let l = get_label(next(&mut i)?)?;
                mb.if_ref_ne(l);
            }
            "new" => {
                let c = get_class(next(&mut i)?)?;
                mb.new_object(c);
            }
            "getfield" => {
                let f = resolve_field(next(&mut i)?, class_ids, pb)?;
                mb.get_field(f);
            }
            "putfield" => {
                let f = resolve_field(next(&mut i)?, class_ids, pb)?;
                mb.put_field(f);
            }
            "getstatic" => {
                let s = get_static(next(&mut i)?)?;
                mb.get_static(s);
            }
            "putstatic" => {
                let s = get_static(next(&mut i)?)?;
                mb.put_static(s);
            }
            "newarray" => {
                let k = parse_kind(next(&mut i)?)?;
                mb.new_array(k);
            }
            "aload" => {
                mb.array_load();
            }
            "astore" => {
                mb.array_store();
            }
            "arraylen" => {
                mb.array_length();
            }
            "instanceof" => {
                let c = get_class(next(&mut i)?)?;
                mb.instance_of(c);
            }
            "checkcast" => {
                let c = get_class(next(&mut i)?)?;
                mb.check_cast(c);
            }
            "monitorenter" => {
                mb.monitor_enter();
            }
            "monitorexit" => {
                mb.monitor_exit();
            }
            "invokestatic" => {
                let t = next(&mut i)?;
                let id = method_ids.get(&(None, t.text.clone())).ok_or(AsmError {
                    line: t.line,
                    reason: format!("unknown static method `{}`", t.text),
                })?;
                mb.invoke_static(*id);
            }
            "invokevirtual" => {
                let t = next(&mut i)?;
                let (c, m) = t.text.split_once('.').ok_or(AsmError {
                    line: t.line,
                    reason: format!("expected `Class.method`, found `{}`", t.text),
                })?;
                let id = method_ids
                    .get(&(Some(c.to_string()), m.to_string()))
                    .ok_or(AsmError {
                        line: t.line,
                        reason: format!("unknown virtual method `{}`", t.text),
                    })?;
                mb.invoke_virtual(*id);
            }
            "ret" => {
                mb.return_();
            }
            "retv" => {
                mb.return_value();
            }
            "throw" => {
                mb.throw();
            }
            "athrow" => {
                mb.athrow();
            }
            "try" => {
                // try Lstart Lend Lhandler ClassName|*  — an exception-table
                // entry covering [Lstart, Lend) with a typed (or catch-all)
                // handler; entries match in declaration order.
                let start = get_label(next(&mut i)?)?;
                let end = get_label(next(&mut i)?)?;
                let handler = get_label(next(&mut i)?)?;
                let t = next(&mut i)?;
                let catch_class = if t.text == "*" {
                    None
                } else {
                    Some(get_class(t)?)
                };
                mb.exception_region(start, end, handler, catch_class);
            }
            other => {
                return Err(AsmError {
                    line: t.line,
                    reason: format!("unknown instruction `{other}`"),
                })
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_program;

    const CACHE_EXAMPLE: &str = r#"
        # Listing 1 of the paper, hand-lowered.
        class Key {
            field idx int
            field ref ref
        }
        static cacheKey ref
        static cacheValue ref

        method virtual Key.equals 2 returns synchronized {
            load 0
            getfield Key.idx
            load 1
            getfield Key.idx
            ifcmp ne Lfalse
            load 0
            getfield Key.ref
            load 1
            getfield Key.ref
            ifrefne Lfalse
            const 1
            retv
        Lfalse:
            const 0
            retv
        }

        method getValue 2 returns {
            new Key
            store 2          // key
            load 2
            load 0
            putfield Key.idx
            load 2
            load 1
            putfield Key.ref
            load 2
            getstatic cacheKey
            invokevirtual Key.equals
            const 0
            ifcmp eq Lmiss
            getstatic cacheValue
            retv
        Lmiss:
            cnull
            retv
        }
    "#;

    #[test]
    fn parses_and_verifies_cache_example() {
        let p = parse_program(CACHE_EXAMPLE).unwrap();
        verify_program(&p).unwrap();
        assert_eq!(p.classes.len(), 1);
        assert_eq!(p.statics.len(), 2);
        assert_eq!(p.methods.len(), 2);
        let get_value = p.static_method_by_name("getValue").unwrap();
        assert!(p.method(get_value).returns_value);
        let key = p.class_by_name("Key").unwrap();
        assert!(p.declared_method_by_name(key, "equals").is_some());
        assert!(
            p.method(p.declared_method_by_name(key, "equals").unwrap())
                .is_synchronized
        );
    }

    #[test]
    fn reports_unknown_instruction_with_line() {
        let err = parse_program("method f 0 {\n  bogus\n  ret\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.reason.contains("bogus"));
    }

    #[test]
    fn reports_unknown_label() {
        let err = parse_program("method f 0 {\n  goto Lx\n  ret\n}").unwrap_err();
        assert!(err.reason.contains("unknown label"));
    }

    #[test]
    fn reports_unknown_class() {
        let err = parse_program("method f 0 {\n  new Zap\n  pop\n  ret\n}").unwrap_err();
        assert!(err.reason.contains("unknown class"));
    }

    #[test]
    fn extends_resolves_forward() {
        let p = parse_program("class A extends B { }\nclass B { field x int }\nmethod f 0 { ret }")
            .unwrap();
        let a = p.class_by_name("A").unwrap();
        let b = p.class_by_name("B").unwrap();
        assert_eq!(p.class(a).superclass, Some(b));
        assert!(p.field_by_name(a, "x").is_some());
    }

    #[test]
    fn braces_glued_to_tokens() {
        let p = parse_program("class A {}\nmethod f 0 {ret}").unwrap();
        assert_eq!(p.classes.len(), 1);
        assert_eq!(p.methods.len(), 1);
    }

    #[test]
    fn parses_try_regions_and_athrow() {
        let p = parse_program(
            "class Err { field code int }
             class IoErr extends Err { }
             method f 1 returns {
               try Ls Le Lh IoErr
               try Ls Le Lall *
             Ls:
               new IoErr
               athrow
             Le:
             Lh:
               pop
               const 1
               retv
             Lall:
               pop
               const 2
               retv
             }",
        )
        .unwrap();
        verify_program(&p).unwrap();
        let f = p.static_method_by_name("f").unwrap();
        let m = p.method(f);
        assert_eq!(m.exception_table.len(), 2);
        assert_eq!(m.exception_table[0].start, 0);
        assert_eq!(m.exception_table[0].end, 2);
        assert_eq!(m.exception_table[0].handler, 2);
        assert_eq!(
            m.exception_table[0].catch_class,
            Some(p.class_by_name("IoErr").unwrap())
        );
        assert_eq!(m.exception_table[1].catch_class, None);
        assert!(m.code.contains(&crate::Insn::Athrow));
    }

    #[test]
    fn labels_work_for_loops() {
        let p = parse_program(
            "method f 1 returns {\n  const 0\n  store 1\nLhead:\n  load 1\n  load 0\n  ifcmp ge Ldone\n  load 1\n  const 1\n  add\n  store 1\n  goto Lhead\nLdone:\n  load 1\n  retv\n}",
        )
        .unwrap();
        verify_program(&p).unwrap();
    }
}
