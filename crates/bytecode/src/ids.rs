//! Newtype indices naming classes, fields, methods and static variables.
//!
//! All metadata lives in flat arenas inside [`crate::Program`]; these ids are
//! plain `u32` indices wrapped so the type system keeps them apart
//! (C-NEWTYPE).

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw arena index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a raw arena index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("arena index exceeds u32"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifies a [`crate::Class`] within a [`crate::Program`].
    ClassId,
    "C"
);
define_id!(
    /// Identifies a [`crate::Field`] within a [`crate::Program`].
    FieldId,
    "F"
);
define_id!(
    /// Identifies a [`crate::Method`] within a [`crate::Program`].
    MethodId,
    "M"
);
define_id!(
    /// Identifies a [`crate::StaticDecl`] (global variable) within a
    /// [`crate::Program`].
    StaticId,
    "S"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_index() {
        let id = ClassId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id, ClassId(7));
    }

    #[test]
    fn debug_uses_prefix() {
        assert_eq!(format!("{:?}", MethodId(3)), "M3");
        assert_eq!(format!("{}", FieldId(1)), "F1");
        assert_eq!(format!("{}", StaticId(0)), "S0");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(ClassId(1) < ClassId(2));
    }
}
