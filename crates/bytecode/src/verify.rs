//! Structural bytecode verification.
//!
//! Checks, per method: branch targets are in range, stack heights are
//! consistent at every join (a fixed height per bci, like the JVM verifier),
//! the stack never underflows, locals stay within `max_locals`, referenced
//! metadata ids exist, and `synchronized` only appears on instance methods.

use crate::{Insn, Method, MethodId, Program};
use std::error::Error;
use std::fmt;

/// A verification failure, reported with the offending method and bci.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Index of the offending method.
    pub method: MethodId,
    /// Offending bytecode index (method-level errors use 0).
    pub bci: u32,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "method {} @ bci {}: {}",
            self.method, self.bci, self.reason
        )
    }
}

impl Error for VerifyError {}

fn err(method: MethodId, bci: usize, reason: impl Into<String>) -> VerifyError {
    VerifyError {
        method,
        bci: bci as u32,
        reason: reason.into(),
    }
}

/// Stack effect of an instruction, resolving call arities against the
/// program.
fn stack_effect(program: &Program, insn: Insn) -> (usize, usize) {
    match insn {
        Insn::InvokeStatic(m) | Insn::InvokeVirtual(m) => {
            let callee = program.method(m);
            (
                callee.param_count as usize,
                usize::from(callee.returns_value),
            )
        }
        other => (other.pops(), other.pushes()),
    }
}

/// Verifies one method. See the module docs for the property list.
///
/// # Errors
///
/// Returns the first violation found.
pub fn verify_method(program: &Program, id: MethodId) -> Result<(), VerifyError> {
    let method: &Method = program.method(id);
    if method.code.is_empty() {
        return Err(err(id, 0, "empty method body"));
    }
    if method.is_synchronized && method.is_static {
        return Err(err(id, 0, "static methods may not be synchronized"));
    }
    if method.max_locals < method.param_count {
        return Err(err(id, 0, "max_locals smaller than param_count"));
    }
    if let Some(last) = method.code.last() {
        if last.falls_through() {
            return Err(err(
                id,
                method.code.len() - 1,
                "control falls off the end of the method",
            ));
        }
    }

    // Exception-table validity: ranges well formed, handlers in range and
    // outside their own protected region, catch classes known, and any two
    // ranges either disjoint or properly nested (partial overlap would make
    // dispatch order ambiguous).
    let len = method.code.len() as u32;
    for (i, e) in method.exception_table.iter().enumerate() {
        if e.start >= e.end || e.end > len {
            return Err(err(
                id,
                e.start as usize,
                format!(
                    "exception range [{}, {}) malformed for code length {len}",
                    e.start, e.end
                ),
            ));
        }
        if e.handler >= len {
            return Err(err(
                id,
                e.handler as usize,
                format!("exception handler {} out of range", e.handler),
            ));
        }
        if e.covers(e.handler) {
            return Err(err(
                id,
                e.handler as usize,
                format!(
                    "exception handler {} lies inside its own protected region [{}, {})",
                    e.handler, e.start, e.end
                ),
            ));
        }
        if let Some(c) = e.catch_class {
            if c.index() >= program.classes.len() {
                return Err(err(
                    id,
                    e.start as usize,
                    format!("unknown catch class {c}"),
                ));
            }
        }
        for other in &method.exception_table[..i] {
            let disjoint = e.end <= other.start || other.end <= e.start;
            let nested = (other.start <= e.start && e.end <= other.end)
                || (e.start <= other.start && other.end <= e.end);
            if !disjoint && !nested {
                return Err(err(
                    id,
                    e.start as usize,
                    format!(
                        "exception ranges [{}, {}) and [{}, {}) partially overlap",
                        other.start, other.end, e.start, e.end
                    ),
                ));
            }
        }
    }

    // Metadata validity + branch ranges.
    for (bci, &insn) in method.code.iter().enumerate() {
        if let Some(t) = insn.branch_target() {
            if t as usize >= method.code.len() {
                return Err(err(id, bci, format!("branch target {t} out of range")));
            }
        }
        match insn {
            Insn::Load(n) | Insn::Store(n) if n >= method.max_locals => {
                return Err(err(id, bci, format!("local {n} out of range")));
            }
            Insn::New(c) | Insn::InstanceOf(c) | Insn::CheckCast(c)
                if c.index() >= program.classes.len() =>
            {
                return Err(err(id, bci, format!("unknown class {c}")));
            }
            Insn::GetField(f) | Insn::PutField(f) if f.index() >= program.fields.len() => {
                return Err(err(id, bci, format!("unknown field {f}")));
            }
            Insn::GetStatic(s) | Insn::PutStatic(s) if s.index() >= program.statics.len() => {
                return Err(err(id, bci, format!("unknown static {s}")));
            }
            Insn::InvokeStatic(m) => {
                if m.index() >= program.methods.len() {
                    return Err(err(id, bci, format!("unknown method {m}")));
                }
                if !program.method(m).is_static {
                    return Err(err(id, bci, "invokestatic of a virtual method"));
                }
            }
            Insn::InvokeVirtual(m) => {
                if m.index() >= program.methods.len() {
                    return Err(err(id, bci, format!("unknown method {m}")));
                }
                let callee = program.method(m);
                if callee.is_static {
                    return Err(err(id, bci, "invokevirtual of a static method"));
                }
                if callee.param_count == 0 {
                    return Err(err(id, bci, "virtual method without receiver slot"));
                }
            }
            Insn::ReturnValue if !method.returns_value => {
                return Err(err(id, bci, "value return from void method"));
            }
            Insn::Return if method.returns_value => {
                return Err(err(id, bci, "void return from value-returning method"));
            }
            _ => {}
        }
    }

    // Stack height dataflow: every reachable bci has a single fixed height.
    let mut height: Vec<Option<usize>> = vec![None; method.code.len()];
    let mut worklist = vec![(0usize, 0usize)];
    // Handler entry state: the operand stack holds exactly the thrown
    // exception, whatever the height was at the faulting instruction.
    for e in &method.exception_table {
        worklist.push((e.handler as usize, 1));
    }
    while let Some((bci, h)) = worklist.pop() {
        match height[bci] {
            Some(existing) => {
                if existing != h {
                    return Err(err(
                        id,
                        bci,
                        format!("inconsistent stack height at join: {existing} vs {h}"),
                    ));
                }
                continue;
            }
            None => height[bci] = Some(h),
        }
        let insn = method.code[bci];
        let (pops, pushes) = stack_effect(program, insn);
        if h < pops {
            return Err(err(
                id,
                bci,
                format!("stack underflow: height {h}, pops {pops}"),
            ));
        }
        let out = h - pops + pushes;
        if insn.is_terminator() {
            continue;
        }
        if let Some(t) = insn.branch_target() {
            worklist.push((t as usize, out));
        }
        if insn.falls_through() {
            worklist.push((bci + 1, out));
        }
    }
    Ok(())
}

/// Verifies every method of the program, plus the class hierarchy.
///
/// # Errors
///
/// Returns the first violation found.
pub fn verify_program(program: &Program) -> Result<(), VerifyError> {
    program.check_hierarchy().map_err(|e| VerifyError {
        method: MethodId(0),
        bci: 0,
        reason: e.to_string(),
    })?;
    for i in 0..program.methods.len() {
        verify_method(program, MethodId::from_index(i))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmpOp, MethodBuilder, ProgramBuilder, ValueKind};

    fn single(method: crate::Method) -> (Program, MethodId) {
        let mut pb = ProgramBuilder::new();
        let id = pb.add_method(method);
        (pb.build().unwrap(), id)
    }

    #[test]
    fn accepts_simple_method() {
        let mut mb = MethodBuilder::new_static("f", 2, true);
        mb.load(0);
        mb.load(1);
        mb.add();
        mb.return_value();
        let (p, id) = single(mb.build().unwrap());
        verify_method(&p, id).unwrap();
    }

    #[test]
    fn rejects_stack_underflow() {
        let (p, id) = single(crate::Method {
            class: None,
            name: "f".into(),
            param_count: 0,
            returns_value: false,
            is_static: true,
            is_synchronized: false,
            max_locals: 0,
            code: vec![Insn::Pop, Insn::Return],
            exception_table: vec![],
        });
        let e = verify_method(&p, id).unwrap_err();
        assert!(e.reason.contains("underflow"), "{e}");
    }

    #[test]
    fn rejects_inconsistent_join_heights() {
        // if-branch pushes an extra value on one path.
        let (p, id) = single(crate::Method {
            class: None,
            name: "f".into(),
            param_count: 1,
            returns_value: true,
            is_static: true,
            is_synchronized: false,
            max_locals: 1,
            code: vec![
                Insn::Load(0),
                Insn::Const(0),
                Insn::IfCmp(CmpOp::Eq, 4),
                Insn::Const(1), // fallthrough pushes 1 extra
                Insn::Const(2), // join: height 0 vs 1
                Insn::ReturnValue,
            ],
            exception_table: vec![],
        });
        let e = verify_method(&p, id).unwrap_err();
        assert!(e.reason.contains("inconsistent"), "{e}");
    }

    #[test]
    fn rejects_out_of_range_branch() {
        let (p, id) = single(crate::Method {
            class: None,
            name: "f".into(),
            param_count: 0,
            returns_value: false,
            is_static: true,
            is_synchronized: false,
            max_locals: 0,
            code: vec![Insn::Goto(99)],
            exception_table: vec![],
        });
        let e = verify_method(&p, id).unwrap_err();
        assert!(e.reason.contains("out of range"), "{e}");
    }

    #[test]
    fn rejects_local_out_of_range() {
        let (p, id) = single(crate::Method {
            class: None,
            name: "f".into(),
            param_count: 0,
            returns_value: false,
            is_static: true,
            is_synchronized: false,
            max_locals: 1,
            code: vec![Insn::Load(3), Insn::Pop, Insn::Return],
            exception_table: vec![],
        });
        let e = verify_method(&p, id).unwrap_err();
        assert!(e.reason.contains("local"), "{e}");
    }

    #[test]
    fn rejects_synchronized_static() {
        let (p, id) = single(crate::Method {
            class: None,
            name: "f".into(),
            param_count: 0,
            returns_value: false,
            is_static: true,
            is_synchronized: true,
            max_locals: 0,
            code: vec![Insn::Return],
            exception_table: vec![],
        });
        assert!(verify_method(&p, id).is_err());
    }

    #[test]
    fn rejects_fallthrough_off_end() {
        let (p, id) = single(crate::Method {
            class: None,
            name: "f".into(),
            param_count: 0,
            returns_value: false,
            is_static: true,
            is_synchronized: false,
            max_locals: 0,
            code: vec![Insn::Const(1), Insn::Pop],
            exception_table: vec![],
        });
        let e = verify_method(&p, id).unwrap_err();
        assert!(e.reason.contains("falls off"), "{e}");
    }

    #[test]
    fn rejects_wrong_return_kind() {
        let (p, id) = single(crate::Method {
            class: None,
            name: "f".into(),
            param_count: 0,
            returns_value: false,
            is_static: true,
            is_synchronized: false,
            max_locals: 0,
            code: vec![Insn::Const(1), Insn::ReturnValue],
            exception_table: vec![],
        });
        assert!(verify_method(&p, id).is_err());
    }

    #[test]
    fn verifies_whole_program_with_calls() {
        let mut pb = ProgramBuilder::new();
        let mut callee = MethodBuilder::new_static("g", 2, true);
        callee.load(0);
        callee.load(1);
        callee.add();
        callee.return_value();
        let g = pb.add_method(callee.build().unwrap());
        let mut caller = MethodBuilder::new_static("f", 0, true);
        caller.const_(1);
        caller.const_(2);
        caller.invoke_static(g);
        caller.return_value();
        pb.add_method(caller.build().unwrap());
        let p = pb.build().unwrap();
        verify_program(&p).unwrap();
    }

    #[test]
    fn rejects_invokestatic_of_virtual() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        let mut v = MethodBuilder::new_virtual("m", c, 1, false);
        v.return_();
        let vm = pb.add_method(v.build().unwrap());
        let mut caller = MethodBuilder::new_static("f", 0, false);
        caller.const_null();
        caller.invoke_static(vm);
        caller.return_();
        let fid = pb.add_method(caller.build().unwrap());
        let p = pb.build().unwrap();
        assert!(verify_method(&p, fid).is_err());
    }

    #[test]
    fn unknown_field_rejected() {
        let mut pb = ProgramBuilder::new();
        let mut mb = MethodBuilder::new_static("f", 1, true);
        mb.load(0);
        mb.get_field(crate::FieldId(9));
        mb.return_value();
        let id = pb.add_method(mb.build().unwrap());
        // one real field so the arena is non-empty but small
        let c = pb.add_class("C", None);
        pb.add_field(c, "x", ValueKind::Int);
        let p = pb.build().unwrap();
        assert!(verify_method(&p, id).is_err());
    }

    #[test]
    fn accepts_unbalanced_monitors() {
        // The verifier checks types and stack discipline only; monitor
        // pairing is intentionally out of scope (like JVM bytecode
        // verification). The lock-balance dataflow pass in `pea-analysis`
        // flags this, and the graph builder bails out on it.
        let src = "
            class C { }
            method f 0 returns {
                new C monitorenter
                const 1 retv
            }";
        let p = crate::asm::parse_program(src).unwrap();
        verify_program(&p).unwrap();
    }

    fn thrower(table: Vec<crate::ExceptionEntry>) -> (Program, MethodId) {
        // 0: new C, 1: athrow, 2: const 0, 3: pop (handler region filler),
        // 4: const 7, 5: retv
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        let id = pb.add_method(crate::Method {
            class: None,
            name: "f".into(),
            param_count: 0,
            returns_value: true,
            is_static: true,
            is_synchronized: false,
            max_locals: 0,
            code: vec![
                Insn::New(c),
                Insn::Athrow,
                Insn::Const(0),
                Insn::Pop,
                Insn::Const(7),
                Insn::ReturnValue,
            ],
            exception_table: table,
        });
        (pb.build().unwrap(), id)
    }

    fn entry(start: u32, end: u32, handler: u32) -> crate::ExceptionEntry {
        crate::ExceptionEntry {
            start,
            end,
            handler,
            catch_class: None,
        }
    }

    #[test]
    fn accepts_well_formed_exception_table() {
        // Nested and identical ranges are fine; handler enters with stack
        // height 1 (the thrown exception), popped before the shared tail.
        let (p, id) = thrower(vec![entry(0, 2, 3), entry(0, 2, 3)]);
        verify_method(&p, id).unwrap();
        let (p, id) = thrower(vec![entry(1, 2, 3), entry(0, 2, 3)]);
        verify_method(&p, id).unwrap();
    }

    #[test]
    fn rejects_partially_overlapping_exception_ranges() {
        let (p, id) = thrower(vec![entry(0, 2, 4), entry(1, 3, 4)]);
        let e = verify_method(&p, id).unwrap_err();
        assert!(e.reason.contains("partially overlap"), "{e}");
    }

    #[test]
    fn rejects_handler_inside_protected_region() {
        let (p, id) = thrower(vec![entry(0, 3, 2)]);
        let e = verify_method(&p, id).unwrap_err();
        assert!(e.reason.contains("inside its own protected region"), "{e}");
    }

    #[test]
    fn rejects_malformed_exception_range() {
        let (p, id) = thrower(vec![entry(2, 2, 3)]);
        let e = verify_method(&p, id).unwrap_err();
        assert!(e.reason.contains("malformed"), "{e}");
        let (p, id) = thrower(vec![entry(0, 99, 3)]);
        assert!(verify_method(&p, id).is_err());
        let (p, id) = thrower(vec![entry(0, 2, 99)]);
        let e = verify_method(&p, id).unwrap_err();
        assert!(e.reason.contains("handler"), "{e}");
    }

    #[test]
    fn rejects_unknown_catch_class() {
        let (p, id) = thrower(vec![crate::ExceptionEntry {
            start: 0,
            end: 2,
            handler: 3,
            catch_class: Some(crate::ClassId(42)),
        }]);
        let e = verify_method(&p, id).unwrap_err();
        assert!(e.reason.contains("unknown catch class"), "{e}");
    }

    #[test]
    fn handler_stack_height_participates_in_joins() {
        // bci 3 is reached normally (height 0, via the goto) and as a
        // handler (height 1, the thrown exception): inconsistent join.
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        let id = pb.add_method(crate::Method {
            class: None,
            name: "f".into(),
            param_count: 0,
            returns_value: true,
            is_static: true,
            is_synchronized: false,
            max_locals: 0,
            code: vec![
                Insn::Goto(3),
                Insn::New(c),
                Insn::Athrow,
                Insn::Const(7),
                Insn::ReturnValue,
            ],
            exception_table: vec![entry(1, 3, 3)],
        });
        let p = pb.build().unwrap();
        let e = verify_method(&p, id).unwrap_err();
        assert!(e.reason.contains("inconsistent"), "{e}");
    }

    #[test]
    fn accepts_read_before_any_store() {
        // Non-parameter locals default to zero/null at runtime, so a load
        // with no prior store verifies fine; the definite-assignment pass
        // in `pea-analysis` reports it as a likely bug instead.
        let src = "method f 0 returns { load 3 retv }";
        let p = crate::asm::parse_program(src).unwrap();
        verify_program(&p).unwrap();
    }
}
