//! Property tests for the bytecode substrate: assembler/disassembler
//! round-trips and verifier guarantees over randomly built programs.

use pea_bytecode::asm::parse_program;
use pea_bytecode::disasm::disassemble;
use pea_bytecode::{CmpOp, MethodBuilder, ProgramBuilder, ValueKind};
use proptest::prelude::*;

/// A random but always-valid method body: straight-line arithmetic over
/// two int parameters with optional diamonds and bounded loops, built via
/// the label-checked `MethodBuilder`.
#[derive(Clone, Debug)]
enum Piece {
    PushConst(i16),
    PushParam(bool),
    Arith(u8),
    Diamond(CmpOp),
    BoundedLoop(u8),
}

fn piece() -> impl Strategy<Value = Piece> {
    prop_oneof![
        any::<i16>().prop_map(Piece::PushConst),
        any::<bool>().prop_map(Piece::PushParam),
        (0u8..5).prop_map(Piece::Arith),
        prop_oneof![
            Just(CmpOp::Eq),
            Just(CmpOp::Ne),
            Just(CmpOp::Lt),
            Just(CmpOp::Le),
            Just(CmpOp::Gt),
            Just(CmpOp::Ge)
        ]
        .prop_map(Piece::Diamond),
        (1u8..5).prop_map(Piece::BoundedLoop),
    ]
}

/// Lowers pieces into a method keeping an accumulator in local 2.
fn lower(pieces: &[Piece]) -> pea_bytecode::Method {
    let mut mb = MethodBuilder::new_static("f", 2, true);
    mb.locals(8);
    mb.const_(1);
    mb.store(2); // accumulator
    let mut next_local = 3u16;
    for p in pieces {
        match p {
            Piece::PushConst(c) => {
                mb.load(2);
                mb.const_(i64::from(*c));
                mb.add();
                mb.store(2);
            }
            Piece::PushParam(which) => {
                mb.load(2);
                mb.load(u16::from(*which));
                mb.add();
                mb.store(2);
            }
            Piece::Arith(op) => {
                mb.load(2);
                mb.load(0);
                match op % 5 {
                    0 => mb.add(),
                    1 => mb.sub(),
                    2 => mb.mul(),
                    3 => {
                        // Safe division: acc / (|p0| + 1) via masking.
                        mb.pop();
                        mb.load(0);
                        mb.const_(255);
                        mb.emit(pea_bytecode::Insn::And);
                        mb.const_(1);
                        mb.add();
                        mb.div()
                    }
                    _ => mb.emit(pea_bytecode::Insn::Xor),
                };
                mb.store(2);
            }
            Piece::Diamond(op) => {
                let lt = mb.new_label();
                let lend = mb.new_label();
                mb.load(0);
                mb.load(1);
                mb.if_cmp(*op, lt);
                mb.load(2);
                mb.const_(3);
                mb.mul();
                mb.store(2);
                mb.goto(lend);
                mb.bind(lt);
                mb.load(2);
                mb.const_(7);
                mb.add();
                mb.store(2);
                mb.bind(lend);
            }
            Piece::BoundedLoop(n) => {
                let counter = next_local;
                next_local += 1;
                mb.locals(counter + 1);
                mb.const_(0);
                mb.store(counter);
                let head = mb.new_label();
                let done = mb.new_label();
                mb.bind(head);
                mb.load(counter);
                mb.const_(i64::from(*n));
                mb.if_cmp(CmpOp::Ge, done);
                mb.load(2);
                mb.const_(1);
                mb.add();
                mb.store(2);
                mb.load(counter);
                mb.const_(1);
                mb.add();
                mb.store(counter);
                mb.goto(head);
                mb.bind(done);
            }
        }
    }
    mb.load(2);
    mb.return_value();
    mb.build().expect("generated method builds")
}

fn program_of(pieces: &[Piece]) -> pea_bytecode::Program {
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("C", None);
    pb.add_field(c, "x", ValueKind::Int);
    pb.add_static("s", ValueKind::Int);
    pb.add_method(lower(pieces));
    pb.build().expect("program builds")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn generated_methods_always_verify(pieces in prop::collection::vec(piece(), 0..12)) {
        let program = program_of(&pieces);
        pea_bytecode::verify_program(&program)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
    }

    #[test]
    fn disassembly_round_trips(pieces in prop::collection::vec(piece(), 0..12)) {
        let p1 = program_of(&pieces);
        let text = disassemble(&p1);
        let p2 = parse_program(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{text}")))?;
        prop_assert_eq!(p1.methods.len(), p2.methods.len());
        for (a, b) in p1.methods.iter().zip(&p2.methods) {
            prop_assert_eq!(&a.code, &b.code, "instruction streams differ\n{}", text);
        }
        // Printing again is a fixpoint.
        prop_assert_eq!(text, disassemble(&p2));
    }

    #[test]
    fn verifier_rejects_corrupted_branch_targets(
        pieces in prop::collection::vec(piece(), 1..8),
        extra in 1u32..1000,
    ) {
        let mut program = program_of(&pieces);
        // Corrupt the first branch, if any, to point far out of range.
        let code = &mut program.methods[0].code;
        let mut corrupted = false;
        let len = code.len() as u32;
        for insn in code.iter_mut() {
            use pea_bytecode::Insn;
            let bad = len + extra;
            *insn = match *insn {
                Insn::Goto(_) => { corrupted = true; Insn::Goto(bad) }
                Insn::IfCmp(op, _) => { corrupted = true; Insn::IfCmp(op, bad) }
                other => other,
            };
            if corrupted {
                break;
            }
        }
        if corrupted {
            prop_assert!(pea_bytecode::verify_program(&program).is_err());
        }
    }
}
