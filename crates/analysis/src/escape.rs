//! Flow-insensitive, conservative escape pre-analysis.
//!
//! Every `new`/`newarray` site in a method is classified on the classic
//! three-point lattice
//!
//! ```text
//! NoEscape  <  ArgEscape  <  GlobalEscape
//! ```
//!
//! following whole-method escape analyses built by abstract interpretation
//! (Hill & Spoto). The analysis runs the forward [`crate::dataflow`] solver
//! with **source sets** as the abstract value: each stack slot and local
//! holds the set of allocation sites, parameters, and/or the *unknown*
//! source that may have produced it. Escaping operations (stores to
//! statics, call arguments, returns) raise the class of every source in the
//! operand set; stores into tracked objects record field *contents* so that
//! later loads re-surface the stored sources (this is what makes the
//! verdicts sound against PEA's load elision, which forwards stored values
//! directly).
//!
//! The analysis **over-approximates**: it may report `ArgEscape` or
//! `GlobalEscape` for an object that dynamically never leaves the method,
//! but a `NoEscape` verdict is definitive. That direction is exactly what
//! both consumers need — the compiler only *skips* PEA work for provably
//! escaping sites, and the sanitizer only *rejects* PEA decisions that
//! contradict a `NoEscape` proof.

use crate::dataflow::{solve_forward, BitSet, ForwardAnalysis};
use pea_bytecode::{ClassId, Insn, Method, MethodId, Program, ValueKind};
use std::collections::BTreeSet;

/// Escape classification of an allocation site, ordered by severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EscapeClass {
    /// The object provably never leaves the method.
    NoEscape,
    /// The object may leave via a call argument, a return value, or a
    /// store into a caller-visible object — but not via a static.
    ArgEscape,
    /// The object may become reachable from a static variable (or flows
    /// into entirely unknown storage).
    GlobalEscape,
}

impl EscapeClass {
    /// Kebab-case tag for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            EscapeClass::NoEscape => "no-escape",
            EscapeClass::ArgEscape => "arg-escape",
            EscapeClass::GlobalEscape => "global-escape",
        }
    }
}

/// What an allocation site allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocKind {
    Instance(ClassId),
    Array(ValueKind),
}

/// Per-site analysis result.
#[derive(Clone, Debug)]
pub struct AllocSite {
    /// Bytecode index of the `new`/`newarray` instruction.
    pub bci: u32,
    pub kind: AllocKind,
    pub escape: EscapeClass,
    /// The site may appear in a `monitorenter`/`monitorexit` operand set
    /// (including via values loaded back out of tracked objects).
    pub locked: bool,
    /// The site may flow into a call argument (including receivers).
    pub passed_to_call: bool,
    /// The allocation is immediately published: the very next instruction
    /// is `putstatic` consuming the fresh reference. These sites escape
    /// globally in *any* calling context, which makes them safe to exclude
    /// from PEA up front (see the compiler's pre-filter opt level).
    pub immediate_global: bool,
}

impl AllocSite {
    /// Whether any execution could hold a monitor on this object: it is
    /// locked directly, may reach a callee (which may lock it), or escapes
    /// the method entirely.
    pub fn may_be_locked(&self) -> bool {
        self.locked || self.passed_to_call || self.escape != EscapeClass::NoEscape
    }
}

/// Result of [`analyze_method`]: one entry per allocation site, in
/// bytecode order, plus per-parameter escape verdicts.
#[derive(Clone, Debug)]
pub struct EscapeSummary {
    pub method: MethodId,
    pub sites: Vec<AllocSite>,
    /// Escape class of each parameter *as caused by this method* (and,
    /// when analyzed with a [`CalleeOracle`], its transitive callees):
    /// `GlobalEscape` means a caller-passed object may become reachable
    /// from a static by calling this method.
    pub param_escape: Vec<EscapeClass>,
    /// The method returns a value and every returned source is one of its
    /// own allocation sites — inlining the method exposes a fresh
    /// allocation to the caller's compilation unit.
    pub returns_fresh: bool,
    /// Some `athrow` in this method may throw one of its own allocation
    /// sites — the site is published through the exception edge and PEA
    /// materializes it at the throw (`thrown-escape`).
    pub throws_fresh: bool,
    /// Per-site escape *events*: every `(bci, class)` pair at which the
    /// site's references were raised above `NoEscape` during solving
    /// (publication points, call arguments, returns, throws — including
    /// events inherited through the contents closure). The branch-aware
    /// layer (`crate::flow`) qualifies these against the CFG to decide
    /// whether a site escapes only on exception or cold paths. Indexed
    /// parallel to [`sites`](Self::sites).
    pub site_events: Vec<Vec<(u32, EscapeClass)>>,
    /// Escape events of each parameter, parallel to
    /// [`param_escape`](Self::param_escape).
    pub param_events: Vec<Vec<(u32, EscapeClass)>>,
}

impl EscapeSummary {
    /// The site allocated at `bci`, if any.
    pub fn site_at(&self, bci: u32) -> Option<&AllocSite> {
        self.sites.iter().find(|s| s.bci == bci)
    }
}

/// All `new`/`newarray` sites of a method, in bytecode order.
pub fn alloc_sites(method: &Method) -> Vec<(u32, AllocKind)> {
    method
        .code
        .iter()
        .enumerate()
        .filter_map(|(bci, insn)| match insn {
            Insn::New(c) => Some((bci as u32, AllocKind::Instance(*c))),
            Insn::NewArray(k) => Some((bci as u32, AllocKind::Array(*k))),
            _ => None,
        })
        .collect()
}

/// Bcis of allocations whose fresh reference is consumed by an immediately
/// following `putstatic` or `athrow` — the syntactic subset of
/// `GlobalEscape` that is safe to exclude from PEA regardless of inlining
/// context. An exception edge is a publication point just like a static
/// store: the thrown object surfaces to an unknown handler, so a site that
/// feeds `athrow` directly can never stay virtual past its allocation.
pub fn immediate_global_sites(method: &Method) -> Vec<u32> {
    alloc_sites(method)
        .into_iter()
        .filter(|&(bci, _)| {
            matches!(
                method.code.get(bci as usize + 1),
                Some(Insn::PutStatic(_) | Insn::Athrow)
            )
        })
        .map(|(bci, _)| bci)
        .collect()
}

/// Supplies per-parameter escape verdicts for call targets, letting the
/// per-method flow raise call arguments only as far as the callee (join
/// of possible callees for virtual dispatch) actually forces. Without an
/// oracle every argument is blanket-raised to `ArgEscape`; an oracle can
/// only *add* `GlobalEscape` upgrades on top of that floor, so
/// oracle-driven results are always at least as severe as the
/// intraprocedural ones.
pub trait CalleeOracle {
    /// Escape class a call to `target` imposes on its argument at
    /// parameter position `idx` (receiver = position 0). Virtual calls
    /// must join over every possible concrete target.
    fn call_arg_class(&self, target: MethodId, virtual_call: bool, idx: usize) -> EscapeClass;
}

/// Abstract frame: per-local and per-stack-slot source sets.
#[derive(Clone, PartialEq, Eq)]
struct Frame {
    locals: Vec<BitSet>,
    stack: Vec<BitSet>,
}

struct EscapeFlow<'a> {
    /// Site bcis, defining source indices `0..n_sites`.
    site_bcis: Vec<u32>,
    n_sites: usize,
    n_params: usize,
    /// Monotone per-source escape class (`n_sites + n_params + 1` entries;
    /// the last is the *unknown* source, pinned at `GlobalEscape`).
    escape: Vec<EscapeClass>,
    /// Per-source over-approximation of everything ever stored into the
    /// object's fields/elements (field- and element-insensitive).
    contents: Vec<BitSet>,
    /// Sources observed as monitor operands.
    locked: BitSet,
    /// Sources observed as call arguments.
    called: BitSet,
    /// Sources observed as return values.
    returned: BitSet,
    /// Sources observed as `athrow` operands.
    thrown: BitSet,
    /// Optional per-callee parameter verdicts (interprocedural mode).
    oracle: Option<&'a dyn CalleeOracle>,
    /// Any global fact grew during the current solver pass.
    grew: bool,
    /// Bci of the instruction currently being transferred — the program
    /// point attributed to escape events raised during that transfer.
    cur_bci: u32,
    /// Per-source escape events: `(bci, class)` for every raise above
    /// `NoEscape` (monotone sets, so re-visits stay idempotent).
    event_bcis: Vec<BTreeSet<(u32, EscapeClass)>>,
}

impl EscapeFlow<'_> {
    fn n_sources(&self) -> usize {
        self.n_sites + self.n_params + 1
    }

    fn unknown_bit(&self) -> usize {
        self.n_sources() - 1
    }

    fn empty(&self) -> BitSet {
        BitSet::new(self.n_sources())
    }

    fn raise(&mut self, set: &BitSet, to: EscapeClass) {
        for src in set.iter() {
            if self.escape[src] < to {
                self.escape[src] = to;
                self.grew = true;
            }
            if to > EscapeClass::NoEscape {
                self.grew |= self.event_bcis[src].insert((self.cur_bci, to));
            }
        }
    }

    /// Records `value` flowing into the fields of every object in
    /// `container`.
    fn flow_into(&mut self, container: &BitSet, value: &BitSet) {
        let mut into_param = false;
        let mut into_unknown = false;
        for src in container.iter() {
            if src < self.n_sites {
                let grown = self.contents[src].union_with(value);
                self.grew |= grown;
            } else if src == self.unknown_bit() {
                into_unknown = true;
            } else {
                into_param = true;
                let grown = self.contents[src].union_with(value);
                self.grew |= grown;
            }
        }
        if into_unknown {
            self.raise(value, EscapeClass::GlobalEscape);
        } else if into_param {
            self.raise(value, EscapeClass::ArgEscape);
        }
    }

    /// The set of sources a load out of `container` may surface.
    fn loaded_from(&self, container: &BitSet) -> BitSet {
        let mut out = self.empty();
        for src in container.iter() {
            if src == self.unknown_bit() {
                out.insert(self.unknown_bit());
            } else {
                // Both allocation sites and parameter objects surface their
                // recorded contents; parameters additionally surface unknown
                // caller-written values.
                out.union_with(&self.contents[src]);
                if src >= self.n_sites {
                    out.insert(self.unknown_bit());
                }
            }
        }
        out
    }

    fn mark_locked(&mut self, set: &BitSet) {
        self.grew |= self.locked.union_with(set);
    }
}

impl ForwardAnalysis for EscapeFlow<'_> {
    type State = Frame;

    fn boundary(&mut self, _program: &Program, method: &Method) -> Frame {
        let mut locals = vec![self.empty(); method.max_locals as usize];
        for (p, slot) in locals.iter_mut().enumerate().take(self.n_params) {
            slot.insert(self.n_sites + p);
        }
        Frame {
            locals,
            stack: Vec::new(),
        }
    }

    fn join(a: &mut Frame, b: &Frame) -> bool {
        let mut changed = false;
        for (x, y) in a.locals.iter_mut().zip(&b.locals) {
            changed |= x.union_with(y);
        }
        // The verifier guarantees equal stack heights at joins.
        for (x, y) in a.stack.iter_mut().zip(&b.stack) {
            changed |= x.union_with(y);
        }
        changed
    }

    fn handler_boundary(&mut self, _program: &Program, method: &Method) -> Option<Frame> {
        // Catch handlers enter with the operand stack cleared to just the
        // caught exception. Flow-insensitively we know neither which throw
        // site reached the handler nor what the locals held at that point,
        // so every slot gets the full source universe: any site, any
        // parameter, or unknown (a callee's exception dispatches in this
        // frame too). Anything the handler publishes is then raised for
        // *all* sources — coarse, but sound, and the module contract only
        // promises that `NoEscape` is definitive.
        let mut all = self.empty();
        for src in 0..self.n_sources() {
            all.insert(src);
        }
        Some(Frame {
            locals: vec![all.clone(); method.max_locals as usize],
            stack: vec![all],
        })
    }

    fn transfer(
        &mut self,
        program: &Program,
        _method: &Method,
        bci: usize,
        insn: Insn,
        state: &mut Frame,
    ) {
        self.cur_bci = bci as u32;
        let empty = self.empty();
        match insn {
            Insn::Load(n) => state.stack.push(state.locals[n as usize].clone()),
            Insn::Store(n) => {
                let v = state.stack.pop().expect("verified stack");
                state.locals[n as usize] = v;
            }
            Insn::New(_) | Insn::NewArray(_) => {
                if matches!(insn, Insn::NewArray(_)) {
                    state.stack.pop(); // length
                }
                let site = self
                    .site_bcis
                    .iter()
                    .position(|&b| b == bci as u32)
                    .expect("every allocation is a site");
                let mut s = self.empty();
                s.insert(site);
                state.stack.push(s);
            }
            Insn::Dup => {
                let top = state.stack.last().expect("verified stack").clone();
                state.stack.push(top);
            }
            Insn::Swap => {
                let n = state.stack.len();
                state.stack.swap(n - 1, n - 2);
            }
            Insn::GetField(_) => {
                let obj = state.stack.pop().expect("verified stack");
                state.stack.push(self.loaded_from(&obj));
            }
            Insn::PutField(_) => {
                let value = state.stack.pop().expect("verified stack");
                let obj = state.stack.pop().expect("verified stack");
                self.flow_into(&obj, &value);
            }
            Insn::ArrayLoad => {
                state.stack.pop(); // index
                let arr = state.stack.pop().expect("verified stack");
                state.stack.push(self.loaded_from(&arr));
            }
            Insn::ArrayStore => {
                let value = state.stack.pop().expect("verified stack");
                state.stack.pop(); // index
                let arr = state.stack.pop().expect("verified stack");
                self.flow_into(&arr, &value);
            }
            Insn::GetStatic(_) => {
                let mut s = self.empty();
                s.insert(self.unknown_bit());
                state.stack.push(s);
            }
            Insn::PutStatic(_) => {
                let value = state.stack.pop().expect("verified stack");
                self.raise(&value, EscapeClass::GlobalEscape);
            }
            Insn::MonitorEnter | Insn::MonitorExit => {
                let obj = state.stack.pop().expect("verified stack");
                self.mark_locked(&obj);
            }
            Insn::InvokeStatic(target) | Insn::InvokeVirtual(target) => {
                let callee = program.method(target);
                let virtual_call = matches!(insn, Insn::InvokeVirtual(_));
                // Arguments pop in reverse: top of stack is the last
                // parameter.
                for idx in (0..callee.param_count as usize).rev() {
                    let arg = state.stack.pop().expect("verified stack");
                    let class = match self.oracle {
                        Some(oracle) => oracle
                            .call_arg_class(target, virtual_call, idx)
                            .max(EscapeClass::ArgEscape),
                        None => EscapeClass::ArgEscape,
                    };
                    self.raise(&arg, class);
                    self.grew |= self.called.union_with(&arg);
                }
                if callee.returns_value {
                    let mut s = self.empty();
                    s.insert(self.unknown_bit());
                    state.stack.push(s);
                }
            }
            Insn::ReturnValue => {
                let value = state.stack.pop().expect("verified stack");
                self.raise(&value, EscapeClass::ArgEscape);
                self.grew |= self.returned.union_with(&value);
            }
            Insn::Throw => {
                let value = state.stack.pop().expect("verified stack");
                self.raise(&value, EscapeClass::GlobalEscape);
            }
            Insn::Athrow => {
                // The exception edge is a publication point: once thrown,
                // the object is visible to handler code here or in any
                // (transitive) caller, and PEA materializes it at the
                // corresponding `Unwind` exit. Flow-insensitively we cannot
                // tell a locally-caught throw from an escaping one, so
                // raise to GlobalEscape — PEA staying more optimistic on
                // caught paths is exactly the allowed direction.
                let value = state.stack.pop().expect("verified stack");
                self.raise(&value, EscapeClass::GlobalEscape);
                self.grew |= self.thrown.union_with(&value);
            }
            Insn::CheckCast(_) => {} // identity on the reference
            Insn::InstanceOf(_) | Insn::ArrayLength | Insn::Neg => {
                state.stack.pop();
                state.stack.push(empty);
            }
            other => {
                // Pure stack arithmetic/control: pop/push integer results,
                // which carry no sources.
                for _ in 0..other.pops() {
                    state.stack.pop().expect("verified stack");
                }
                for _ in 0..other.pushes() {
                    state.stack.push(empty.clone());
                }
            }
        }
    }
}

/// Runs the escape pre-analysis over one (verified) method, with no
/// knowledge of callees (every call argument is raised to `ArgEscape`).
pub fn analyze_method(program: &Program, method_id: MethodId) -> EscapeSummary {
    analyze_method_with(program, method_id, None)
}

/// Runs the escape pre-analysis over one (verified) method, raising call
/// arguments per the oracle's callee verdicts (see [`CalleeOracle`]).
pub fn analyze_method_with(
    program: &Program,
    method_id: MethodId,
    oracle: Option<&dyn CalleeOracle>,
) -> EscapeSummary {
    let method = program.method(method_id);
    let sites = alloc_sites(method);
    let n_sites = sites.len();
    let n_params = method.param_count as usize;
    let n_sources = n_sites + n_params + 1;
    let mut flow = EscapeFlow {
        site_bcis: sites.iter().map(|&(b, _)| b).collect(),
        n_sites,
        n_params,
        escape: vec![EscapeClass::NoEscape; n_sources],
        contents: vec![BitSet::new(n_sources); n_sources],
        locked: BitSet::new(n_sources),
        called: BitSet::new(n_sources),
        returned: BitSet::new(n_sources),
        thrown: BitSet::new(n_sources),
        oracle,
        grew: false,
        cur_bci: 0,
        event_bcis: vec![BTreeSet::new(); n_sources],
    };
    *flow.escape.last_mut().expect("unknown source") = EscapeClass::GlobalEscape;
    if method.is_synchronized {
        let mut receiver = flow.empty();
        receiver.insert(n_sites); // param 0
        flow.mark_locked(&receiver);
    }
    // Parameter verdicts matter even for allocation-free methods (the
    // interprocedural fixpoint reads them), so the solver always runs.
    // Global facts (contents, escape) feed back into transfer functions,
    // so re-solve until they stop growing. Termination: all facts are
    // monotone over finite domains.
    loop {
        flow.grew = false;
        solve_forward(program, method, &mut flow);
        if !flow.grew {
            break;
        }
    }
    // Close escape classes over the contents relation: anything stored
    // into an escaping object escapes at least as far, and inherits the
    // container's escape events (the value surfaces wherever the
    // container does, so those bcis qualify its path verdict too).
    loop {
        let mut changed = false;
        for container in 0..n_sources {
            let class = flow.escape[container];
            if class == EscapeClass::NoEscape {
                continue;
            }
            let inherited = flow.event_bcis[container].clone();
            for value in flow.contents[container].clone().iter() {
                if flow.escape[value] < class {
                    flow.escape[value] = class;
                    changed = true;
                }
                if value != container {
                    let before = flow.event_bcis[value].len();
                    flow.event_bcis[value].extend(inherited.iter().copied());
                    changed |= flow.event_bcis[value].len() != before;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let immediate = immediate_global_sites(method);
    let returns_fresh = method.returns_value
        && flow.returned.iter().next().is_some()
        && flow.returned.iter().all(|src| src < n_sites);
    let throws_fresh = flow.thrown.iter().any(|src| src < n_sites);
    EscapeSummary {
        method: method_id,
        sites: sites
            .into_iter()
            .enumerate()
            .map(|(i, (bci, kind))| AllocSite {
                bci,
                kind,
                escape: flow.escape[i],
                locked: flow.locked.contains(i),
                passed_to_call: flow.called.contains(i),
                immediate_global: immediate.contains(&bci),
            })
            .collect(),
        param_escape: (0..n_params).map(|p| flow.escape[n_sites + p]).collect(),
        returns_fresh,
        throws_fresh,
        site_events: (0..n_sites)
            .map(|i| flow.event_bcis[i].iter().copied().collect())
            .collect(),
        param_events: (0..n_params)
            .map(|p| flow.event_bcis[n_sites + p].iter().copied().collect())
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pea_bytecode::asm::parse_program;

    fn summary(src: &str, method: &str) -> EscapeSummary {
        let program = parse_program(src).unwrap();
        pea_bytecode::verify_program(&program).unwrap();
        let id = program.static_method_by_name(method).unwrap();
        analyze_method(&program, id)
    }

    #[test]
    fn purely_local_object_does_not_escape() {
        let s = summary(
            "class Box { field v int }
             method m 1 returns {
                new Box store 1
                load 1 load 0 putfield Box.v
                load 1 getfield Box.v retv
             }",
            "m",
        );
        assert_eq!(s.sites.len(), 1);
        assert_eq!(s.sites[0].escape, EscapeClass::NoEscape);
        assert!(!s.sites[0].may_be_locked());
        assert!(!s.sites[0].immediate_global);
    }

    #[test]
    fn returned_object_arg_escapes() {
        let s = summary(
            "class Box { field v int }
             method m 0 returns { new Box retv }",
            "m",
        );
        assert_eq!(s.sites[0].escape, EscapeClass::ArgEscape);
    }

    #[test]
    fn published_object_global_escapes_and_is_immediate() {
        let s = summary(
            "class Box { field v int }
             static g ref
             method m 0 { new Box putstatic g ret }",
            "m",
        );
        assert_eq!(s.sites[0].escape, EscapeClass::GlobalEscape);
        assert!(s.sites[0].immediate_global);
    }

    #[test]
    fn publication_via_local_is_global_but_not_immediate() {
        let s = summary(
            "class Box { field v int }
             static g ref
             method m 0 { new Box store 0 load 0 putstatic g ret }",
            "m",
        );
        assert_eq!(s.sites[0].escape, EscapeClass::GlobalEscape);
        assert!(!s.sites[0].immediate_global);
    }

    #[test]
    fn store_into_published_container_escapes_transitively() {
        let s = summary(
            "class Node { field next ref }
             static g ref
             method m 0 {
                new Node store 0
                new Node store 1
                load 0 load 1 putfield Node.next
                load 0 putstatic g ret
             }",
            "m",
        );
        // Both the container and the stored object are global.
        assert_eq!(s.sites[0].escape, EscapeClass::GlobalEscape);
        assert_eq!(s.sites[1].escape, EscapeClass::GlobalEscape);
    }

    #[test]
    fn store_into_parameter_object_arg_escapes() {
        let s = summary(
            "class Node { field next ref }
             method m 1 {
                new Node store 1
                load 0 checkcast Node load 1 putfield Node.next ret
             }",
            "m",
        );
        assert_eq!(s.sites[0].escape, EscapeClass::ArgEscape);
    }

    #[test]
    fn call_argument_arg_escapes_and_may_be_locked() {
        let s = summary(
            "class Box { field v int }
             method callee 1 { ret }
             method m 0 {
                new Box invokestatic callee ret
             }",
            "m",
        );
        assert_eq!(s.sites[0].escape, EscapeClass::ArgEscape);
        assert!(s.sites[0].passed_to_call);
        assert!(s.sites[0].may_be_locked());
    }

    #[test]
    fn lock_through_reloaded_field_is_seen() {
        // The object is locked via a value loaded back out of a tracked
        // container — exactly the flow PEA's load elision shortcuts.
        let s = summary(
            "class Holder { field obj ref }
             class Box { field v int }
             method m 0 {
                new Holder store 0
                new Box store 1
                load 0 load 1 putfield Holder.obj
                load 0 getfield Holder.obj monitorenter
                load 0 getfield Holder.obj monitorexit
                ret
             }",
            "m",
        );
        let boxsite = &s.sites[1];
        assert_eq!(boxsite.escape, EscapeClass::NoEscape);
        assert!(boxsite.locked, "lock through elidable load must be seen");
        assert!(boxsite.may_be_locked());
        assert!(!s.sites[0].locked);
    }

    #[test]
    fn loop_carried_store_reaches_fixpoint() {
        // a.next = b inside a loop where a and b swap: both sites end up in
        // each other's contents; neither escapes.
        let s = summary(
            "class Node { field next ref }
             method m 1 {
                new Node store 1
                new Node store 2
             L: load 0 const 0 ifcmp le Ld
                load 1 load 2 putfield Node.next
                load 1 store 3 load 2 store 1 load 3 store 2
                load 0 const 1 sub store 0
                goto L
             Ld: ret
             }",
            "m",
        );
        assert_eq!(s.sites[0].escape, EscapeClass::NoEscape);
        assert_eq!(s.sites[1].escape, EscapeClass::NoEscape);
    }

    #[test]
    fn array_element_flow_tracked() {
        let s = summary(
            "class Box { field v int }
             static g ref
             method m 0 {
                const 1 newarray ref store 0
                new Box store 1
                load 0 const 0 load 1 astore
                load 0 putstatic g ret
             }",
            "m",
        );
        assert_eq!(s.sites[0].escape, EscapeClass::GlobalEscape, "the array");
        assert_eq!(s.sites[1].escape, EscapeClass::GlobalEscape, "the element");
    }

    #[test]
    fn thrown_allocation_global_escapes_and_is_fresh() {
        // The exception edge is a publication point: a thrown site must
        // never be NoEscape, and the summary records the fresh throw.
        let s = summary(
            "class Err { field code int }
             method m 1 {
                load 0 const 0 ifcmp eq Ldone
                new Err athrow
             Ldone: ret
             }",
            "m",
        );
        assert_eq!(s.sites[0].escape, EscapeClass::GlobalEscape);
        assert!(s.throws_fresh);
        // `new Err athrow` is a throw-publishing site: the syntactic
        // pre-filter must exclude it just like `new ... putstatic`.
        assert!(s.sites[0].immediate_global);
    }

    #[test]
    fn stored_then_thrown_allocation_is_not_immediate() {
        // Publication through a local is real (GlobalEscape) but not
        // syntactically immediate — only the flow analysis sees it.
        let s = summary(
            "class Err { field code int }
             method m 1 {
                new Err store 1
                load 1 load 0 putfield Err.code
                load 1 athrow
             }",
            "m",
        );
        assert_eq!(s.sites[0].escape, EscapeClass::GlobalEscape);
        assert!(s.throws_fresh);
        assert!(!s.sites[0].immediate_global);
    }

    #[test]
    fn rethrown_parameter_is_not_a_fresh_throw() {
        let s = summary("method m 1 { load 0 athrow }", "m");
        assert!(s.sites.is_empty());
        assert!(!s.throws_fresh);
        assert_eq!(s.param_escape, vec![EscapeClass::GlobalEscape]);
    }

    #[test]
    fn publication_inside_catch_handler_is_seen() {
        // The handler block is reachable only through the exceptional edge;
        // without handler seeding the putstatic below would never be
        // analyzed and the Box would keep an (unsound) NoEscape verdict.
        let s = summary(
            "class Box { field v int }
             class Err { }
             static g ref
             method m 1 {
                try Ls Le Lh *
             Ls:
                new Box store 1
                load 0 const 0 ifcmp eq Ldone
                new Err athrow
             Le:
             Ldone: ret
             Lh:
                pop
                load 1 putstatic g
                ret
             }",
            "m",
        );
        let boxsite = s.site_at(0).expect("new Box is the bci-0 site");
        assert_eq!(boxsite.escape, EscapeClass::GlobalEscape);
    }

    #[test]
    fn method_without_handlers_is_unaffected_by_seeding() {
        // Sanity: the conservative handler state only applies to methods
        // that actually have exception tables.
        let s = summary(
            "class Box { field v int }
             method m 1 returns {
                new Box store 1
                load 1 load 0 putfield Box.v
                load 1 getfield Box.v retv
             }",
            "m",
        );
        assert_eq!(s.sites[0].escape, EscapeClass::NoEscape);
        assert!(!s.throws_fresh);
    }

    #[test]
    fn escape_events_name_the_publication_point() {
        // The `athrow` is bci 6: the global-escape event for the site
        // must be attributed there, not to the allocation.
        let s = summary(
            "class Err { field code int }
             method m 1 {
                new Err store 1
                load 1 load 0 putfield Err.code
                load 1 athrow
             }",
            "m",
        );
        assert_eq!(s.sites[0].escape, EscapeClass::GlobalEscape);
        assert!(
            s.site_events[0].contains(&(6, EscapeClass::GlobalEscape)),
            "{:?}",
            s.site_events[0]
        );
        assert!(
            s.site_events[0]
                .iter()
                .all(|&(_, c)| c > EscapeClass::NoEscape),
            "only above-NoEscape raises are events"
        );
    }

    #[test]
    fn events_inherited_through_contents_closure() {
        // The element is published only because the array is: it must
        // inherit the array's putstatic event bci.
        let s = summary(
            "class Box { field v int }
             static g ref
             method m 0 {
                const 1 newarray ref store 0
                new Box store 1
                load 0 const 0 load 1 astore
                load 0 putstatic g ret
             }",
            "m",
        );
        let pub_bci = s.site_events[0]
            .iter()
            .find(|&&(_, c)| c == EscapeClass::GlobalEscape)
            .expect("array has a global event")
            .0;
        assert!(
            s.site_events[1].contains(&(pub_bci, EscapeClass::GlobalEscape)),
            "element inherits the array's publication event: {:?}",
            s.site_events[1]
        );
    }

    #[test]
    fn paper_cache_key_escapes_globally_but_not_immediately() {
        // The running example: the fresh Key is compared on the hit path
        // and published to `cacheKey` on the miss path. Flow-insensitively
        // it must be GlobalEscape (PEA's win is exactly that it is *not*
        // flow-insensitive), and it is not an immediate publication.
        let s = summary(
            "class Key { field idx int field ref ref }
             static cacheKey ref
             static cacheValue int
             method virtual Key.equals 2 returns { const 1 retv }
             method getValue 1 returns {
                new Key store 1
                load 1 load 0 putfield Key.idx
                load 1 getstatic cacheKey invokevirtual Key.equals
                const 0 ifcmp eq Lmiss
                getstatic cacheValue retv
             Lmiss:
                load 1 putstatic cacheKey
                load 0 const 13 mul putstatic cacheValue
                getstatic cacheValue retv
             }",
            "getValue",
        );
        assert_eq!(s.sites[0].escape, EscapeClass::GlobalEscape);
        assert!(!s.sites[0].immediate_global);
        assert!(s.sites[0].passed_to_call, "receiver of Key.equals");
    }
}
