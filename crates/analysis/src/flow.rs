//! Branch-aware qualification of the flow-insensitive escape verdicts
//! (SkipFlow-style predicate edges + primitive constant flow).
//!
//! The flow-insensitive tier ([`crate::escape`]) answers *whether* a site
//! escapes; this module answers *where*: each above-`NoEscape` verdict is
//! qualified against the method's control flow into a [`PathEscape`] —
//! escapes only through exception paths, only behind one conditional, or
//! on ordinary paths too. Three ingredients:
//!
//! 1. **Predicate-qualified dataflow** — a forward constant/nullness
//!    analysis over the [`crate::dataflow`] solver's new per-edge
//!    [`refine_edge`](crate::dataflow::ForwardAnalysis::refine_edge) hook.
//!    Compare/instanceof/null-check outcomes specialize the state per
//!    successor, and edges whose predicate is statically false are pruned
//!    from the CFG the qualification reasons over.
//! 2. **Event qualification** — the escape *events* recorded by the
//!    flow-insensitive pass (`(bci, class)` publication points) are tested
//!    for reachability, throw-path-ness (the event instruction is an
//!    `athrow`, can no longer reach a return, or sits in handler-only
//!    code), and common guarding branches.
//! 3. **Certain-escape must-analysis** — the dual direction: a site that
//!    escapes globally on *every* path from its allocation, with nothing
//!    observable or faulting in between, can be excluded from PEA with
//!    bit-identical results and allocation counts (the allocation merely
//!    moves from the materialization point back to the `new`). These are
//!    the extra sites the `pea-pre-flow` pre-filter level excludes beyond
//!    `pea-pre-ipa`.
//!
//! [`FlowSummary`] also path-qualifies the method's *throw* behaviour
//! ([`ThrowPath`]): a callee that throws only behind profile-cold guards
//! can be inlined by the summary inline policy even though the coarse
//! `may_throw` bit is set — the builder's branch speculation prunes the
//! throwing path entirely (and bails out if it ever parses an inlined
//! `athrow`, so the verdict is a performance hint, never a soundness
//! obligation).
//!
//! Everything here **refines, never contradicts**, the flow-insensitive
//! tier: a [`FlowSite::path`] is `NoEscape` exactly when the insensitive
//! class is, and every other qualification only narrows *where* that class
//! arises — the `flow ⊆ flow-insensitive` invariant `pealint` enforces.

use crate::dataflow::{edges, solve_forward, BitSet, EdgeKind, ForwardAnalysis};
use crate::escape::{EscapeClass, EscapeSummary};
use pea_bytecode::{Insn, Method, MethodId, Program};
use std::collections::BTreeSet;

/// Path-qualified escape verdict for one allocation site.
///
/// The qualification describes where the site's *class-defining* escape
/// events sit (for a `GlobalEscape` site, its global publications; weaker
/// events on other paths are not the verdict's concern).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathEscape {
    /// The site does not escape at all (iff the flow-insensitive class is
    /// `NoEscape` — this tier never claims new `NoEscape` proofs).
    NoEscape,
    /// Every escape event is on an exception path: the event is an
    /// `athrow`, sits in code that can no longer reach a return, or is
    /// reachable only through handler entries.
    EscapesOnThrowPathOnly,
    /// Every escape event sits behind one side of the conditional branch
    /// at this bci: pruning that edge makes all of them unreachable.
    EscapesOnColdBranch(u32),
    /// Escape events exist on ordinary paths (or could not be qualified);
    /// the branch-aware tier adds nothing over the insensitive class.
    GlobalEscape,
}

impl PathEscape {
    /// Kebab-case tag for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            PathEscape::NoEscape => "no-escape",
            PathEscape::EscapesOnThrowPathOnly => "throw-path-only",
            PathEscape::EscapesOnColdBranch(_) => "cold-branch",
            PathEscape::GlobalEscape => "global-escape",
        }
    }
}

/// Branch-aware verdict for one allocation site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowSite {
    /// Bytecode index of the allocation.
    pub bci: u32,
    /// The flow-insensitive class being qualified.
    pub insensitive: EscapeClass,
    /// Where that class arises.
    pub path: PathEscape,
    /// The site escapes globally on **every** path from its allocation
    /// with nothing observable or faulting in between: excluding it from
    /// PEA preserves results and allocation counts exactly (the
    /// `pea-pre-flow` exclusion set beyond `pea-pre-ipa`'s).
    pub certain_global: bool,
}

/// A conditional branch guarding every path to some `athrow`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThrowGuard {
    /// Bci of the guarding conditional in the analyzed method.
    pub bci: u32,
    /// Whether the throwing path is behind the *taken* edge (else the
    /// fall-through edge).
    pub throw_on_taken: bool,
}

/// Path-qualified `may_throw`: where this method's own `athrow`s sit
/// relative to its control flow. Computed on the **unpruned** CFG (normal
/// plus exceptional edges) so it mirrors what the graph builder would
/// parse — predicate-dead paths are left in, keeping the verdict a safe
/// input to the inliner's cold-throw clearance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ThrowPath {
    /// The interprocedural `may_throw` bit is off: no throw anywhere.
    Never,
    /// `may_throw` is set but this method has no (reachable) `athrow` of
    /// its own — only callees throw, and a residual call that throws is
    /// already handled by exception-unwind deoptimization at any inline
    /// depth.
    CalleesOnly,
    /// Every reachable `athrow` sits behind one of these conditional
    /// guards: pruning the guard's throw-side edge makes it unreachable.
    /// If a profile proves each guard's throw side never taken, branch
    /// speculation removes every throwing path from an inlined body.
    Guarded(Vec<ThrowGuard>),
    /// No return is reachable: the method throws on every execution.
    Always,
    /// Reachable `athrow`s exist that no single conditional guards.
    Sometimes,
}

impl ThrowPath {
    /// Kebab-case tag for reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            ThrowPath::Never => "never",
            ThrowPath::CalleesOnly => "callees-only",
            ThrowPath::Guarded(_) => "guarded",
            ThrowPath::Always => "always",
            ThrowPath::Sometimes => "sometimes",
        }
    }
}

/// Result of [`analyze_method_flow`]: the branch-aware layer over one
/// method's [`EscapeSummary`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowSummary {
    pub method: MethodId,
    /// One entry per allocation site, parallel to the insensitive
    /// summary's `sites`.
    pub sites: Vec<FlowSite>,
    /// Path-qualified throw behaviour.
    pub throw_path: ThrowPath,
    /// Per-parameter: the parameter's `GlobalEscape` verdict arises only
    /// on exception paths (publishes-param-on-throw-path-only). `false`
    /// for parameters that do not globally escape at all.
    pub publishes_on_throw_only: Vec<bool>,
}

impl FlowSummary {
    /// The flow verdict for the site allocated at `bci`, if any.
    pub fn site_at(&self, bci: u32) -> Option<&FlowSite> {
        self.sites.iter().find(|s| s.bci == bci)
    }
}

// ---------------------------------------------------------------------------
// Predicate-qualified constant/nullness flow.

/// Abstract primitive value: small constants and reference nullness, the
/// two predicate families the bytecode can branch on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PredVal {
    Top,
    Const(i64),
    Null,
    NonNull,
}

impl PredVal {
    fn join(self, other: PredVal) -> PredVal {
        if self == other {
            self
        } else {
            PredVal::Top
        }
    }
}

#[derive(Clone, PartialEq, Eq)]
struct PredFrame {
    locals: Vec<PredVal>,
    stack: Vec<PredVal>,
}

struct PredicateFlow {
    /// Bcis that are a branch target or handler entry: syntactic operand
    /// patterns may only refine across single-predecessor fall-through
    /// chains, so refinement is disabled at these join points.
    jump_targets: BitSet,
    /// Operand values of the conditional currently being transferred,
    /// captured before the pop so `refine_edge` can test feasibility.
    branch_ops: (PredVal, PredVal),
}

impl PredicateFlow {
    fn new(method: &Method) -> PredicateFlow {
        let mut jump_targets = BitSet::new(method.code.len() + 1);
        for insn in &method.code {
            if let Some(t) = insn.branch_target() {
                jump_targets.insert(t as usize);
            }
        }
        for e in &method.exception_table {
            jump_targets.insert(e.handler as usize);
        }
        PredicateFlow {
            jump_targets,
            branch_ops: (PredVal::Top, PredVal::Top),
        }
    }

    /// The instruction at `bci` has `bci - 1` as its only predecessor (a
    /// straight fall-through chain), so facts about the instructions just
    /// before it hold on every path reaching it.
    fn straightline(&self, method: &Method, bci: usize) -> bool {
        bci > 0 && method.code[bci - 1].falls_through() && !self.jump_targets.contains(bci)
    }

    fn fold(insn: Insn, a: PredVal, b: PredVal) -> PredVal {
        let (PredVal::Const(x), PredVal::Const(y)) = (a, b) else {
            return PredVal::Top;
        };
        match insn {
            Insn::Add => PredVal::Const(x.wrapping_add(y)),
            Insn::Sub => PredVal::Const(x.wrapping_sub(y)),
            Insn::Mul => PredVal::Const(x.wrapping_mul(y)),
            Insn::And => PredVal::Const(x & y),
            Insn::Or => PredVal::Const(x | y),
            Insn::Xor => PredVal::Const(x ^ y),
            // Shifts/division fold less often than they complicate; Top.
            _ => PredVal::Top,
        }
    }
}

impl ForwardAnalysis for PredicateFlow {
    type State = PredFrame;

    fn boundary(&mut self, _program: &Program, method: &Method) -> PredFrame {
        PredFrame {
            locals: vec![PredVal::Top; method.max_locals as usize],
            stack: Vec::new(),
        }
    }

    fn join(a: &mut PredFrame, b: &PredFrame) -> bool {
        let mut changed = false;
        for (x, y) in a.locals.iter_mut().zip(&b.locals) {
            let next = x.join(*y);
            changed |= next != *x;
            *x = next;
        }
        for (x, y) in a.stack.iter_mut().zip(&b.stack) {
            let next = x.join(*y);
            changed |= next != *x;
            *x = next;
        }
        changed
    }

    fn handler_boundary(&mut self, _program: &Program, method: &Method) -> Option<PredFrame> {
        // Handler entry: unknown locals, stack holding the (non-null)
        // caught exception. Seeding keeps handler-only code solved so the
        // dead-edge computation covers it.
        Some(PredFrame {
            locals: vec![PredVal::Top; method.max_locals as usize],
            stack: vec![PredVal::NonNull],
        })
    }

    fn transfer(
        &mut self,
        program: &Program,
        _method: &Method,
        _bci: usize,
        insn: Insn,
        state: &mut PredFrame,
    ) {
        match insn {
            Insn::Const(c) => state.stack.push(PredVal::Const(c)),
            Insn::ConstNull => state.stack.push(PredVal::Null),
            Insn::Load(n) => state.stack.push(state.locals[n as usize]),
            Insn::Store(n) => {
                let v = state.stack.pop().expect("verified stack");
                state.locals[n as usize] = v;
            }
            Insn::Add | Insn::Sub | Insn::Mul | Insn::And | Insn::Or | Insn::Xor => {
                let b = state.stack.pop().expect("verified stack");
                let a = state.stack.pop().expect("verified stack");
                state.stack.push(Self::fold(insn, a, b));
            }
            Insn::Neg => {
                let a = state.stack.pop().expect("verified stack");
                state.stack.push(match a {
                    PredVal::Const(x) => PredVal::Const(x.wrapping_neg()),
                    _ => PredVal::Top,
                });
            }
            Insn::New(_) => state.stack.push(PredVal::NonNull),
            Insn::NewArray(_) => {
                state.stack.pop();
                state.stack.push(PredVal::NonNull);
            }
            Insn::CheckCast(_) => {} // identity on the reference
            Insn::InstanceOf(_) => {
                let r = state.stack.pop().expect("verified stack");
                // `instanceof null` is 0; anything else is unknown.
                state.stack.push(match r {
                    PredVal::Null => PredVal::Const(0),
                    _ => PredVal::Top,
                });
            }
            Insn::Dup => {
                let top = *state.stack.last().expect("verified stack");
                state.stack.push(top);
            }
            Insn::Swap => {
                let n = state.stack.len();
                state.stack.swap(n - 1, n - 2);
            }
            Insn::IfCmp(..) | Insn::IfRefEq(_) | Insn::IfRefNe(_) => {
                let b = state.stack.pop().expect("verified stack");
                let a = state.stack.pop().expect("verified stack");
                self.branch_ops = (a, b);
            }
            Insn::IfNull(_) | Insn::IfNonNull(_) => {
                let r = state.stack.pop().expect("verified stack");
                self.branch_ops = (r, PredVal::Top);
            }
            Insn::InvokeStatic(target) | Insn::InvokeVirtual(target) => {
                let callee = program.method(target);
                for _ in 0..callee.param_count {
                    state.stack.pop();
                }
                if callee.returns_value {
                    state.stack.push(PredVal::Top);
                }
            }
            other => {
                for _ in 0..other.pops() {
                    state.stack.pop();
                }
                for _ in 0..other.pushes() {
                    state.stack.push(PredVal::Top);
                }
            }
        }
    }

    fn refine_edge(
        &mut self,
        _program: &Program,
        method: &Method,
        bci: usize,
        insn: Insn,
        edge: EdgeKind,
        _target: usize,
        state: &mut PredFrame,
    ) -> bool {
        let (a, b) = self.branch_ops;
        let taken = edge == EdgeKind::Taken;
        let feasible = match insn {
            Insn::IfCmp(op, _) => match (a, b) {
                (PredVal::Const(x), PredVal::Const(y)) => op.apply(x, y) == taken,
                _ => true,
            },
            Insn::IfNull(_) => match a {
                PredVal::Null => taken,
                PredVal::NonNull => !taken,
                _ => true,
            },
            Insn::IfNonNull(_) => match a {
                PredVal::NonNull => taken,
                PredVal::Null => !taken,
                _ => true,
            },
            Insn::IfRefEq(_) => match (a, b) {
                (PredVal::Null, PredVal::Null) => taken,
                (PredVal::Null, PredVal::NonNull) | (PredVal::NonNull, PredVal::Null) => !taken,
                _ => true,
            },
            Insn::IfRefNe(_) => match (a, b) {
                (PredVal::Null, PredVal::Null) => !taken,
                (PredVal::Null, PredVal::NonNull) | (PredVal::NonNull, PredVal::Null) => taken,
                _ => true,
            },
            _ => return true,
        };
        if !feasible {
            return false;
        }
        // Syntactic operand refinement along the surviving edge, valid
        // only when the operand-producing instructions fall straight into
        // the branch (no join in between).
        match insn {
            Insn::IfNull(_) | Insn::IfNonNull(_) if self.straightline(method, bci) => {
                if let Insn::Load(n) = method.code[bci - 1] {
                    let null_side = matches!(insn, Insn::IfNull(_)) == taken;
                    state.locals[n as usize] = if null_side {
                        PredVal::Null
                    } else {
                        PredVal::NonNull
                    };
                }
            }
            Insn::IfCmp(op, _)
                if matches!(op, pea_bytecode::CmpOp::Eq | pea_bytecode::CmpOp::Ne)
                    && bci >= 2
                    && self.straightline(method, bci)
                    && self.straightline(method, bci - 1) =>
            {
                if let (Insn::Load(n), Insn::Const(k)) =
                    (method.code[bci - 2], method.code[bci - 1])
                {
                    let eq_side = matches!(op, pea_bytecode::CmpOp::Eq) == taken;
                    if eq_side {
                        state.locals[n as usize] = PredVal::Const(k);
                    }
                }
            }
            _ => {}
        }
        true
    }
}

/// Conditional edges proven infeasible by the predicate analysis. Derived
/// *after* the fixpoint from the final entry states (collecting during
/// solving would over-report: states only rise toward `Top` as the solver
/// iterates). Unreachable instructions contribute all their edges.
fn dead_edges(
    program: &Program,
    method: &Method,
    flow: &mut PredicateFlow,
    states: &[Option<PredFrame>],
) -> BTreeSet<(usize, EdgeKind)> {
    let mut dead = BTreeSet::new();
    for (bci, &insn) in method.code.iter().enumerate() {
        let Some(entry) = &states[bci] else {
            for (_, kind) in edges(insn, bci) {
                dead.insert((bci, kind));
            }
            continue;
        };
        if insn.branch_target().is_none() || !insn.falls_through() {
            continue; // only conditionals can have infeasible edges
        }
        let mut state = entry.clone();
        flow.transfer(program, method, bci, insn, &mut state);
        for (target, kind) in edges(insn, bci) {
            let mut out = state.clone();
            if !flow.refine_edge(program, method, bci, insn, kind, target, &mut out) {
                dead.insert((bci, kind));
            }
        }
    }
    dead
}

// ---------------------------------------------------------------------------
// CFG views and reachability.

/// Instruction-level CFG views the qualification reasons over.
struct FlowCfg {
    /// Normal + exceptional edges, unpruned — mirrors what the graph
    /// builder parses; used for [`ThrowPath`] and doom analysis.
    all: Vec<Vec<usize>>,
    /// Normal + exceptional edges minus predicate-dead edges; used to
    /// test event reachability and find guarding branches.
    pruned: Vec<Vec<usize>>,
    /// Pruned normal edges only (no exceptional edges); an event outside
    /// this but inside `pruned` is reachable only through handlers.
    pruned_normal: Vec<Vec<usize>>,
    /// Conditionals with two distinct live targets in `pruned`.
    pruned_branches: Vec<(usize, usize, usize)>,
    /// Conditionals with two distinct targets in `all`.
    all_branches: Vec<(usize, usize, usize)>,
}

impl FlowCfg {
    fn build(method: &Method, dead: &BTreeSet<(usize, EdgeKind)>) -> FlowCfg {
        let code = &method.code;
        let n = code.len();
        let mut all: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut pruned: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut pruned_normal: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (bci, &insn) in code.iter().enumerate() {
            for (t, kind) in edges(insn, bci) {
                push_edge(&mut all[bci], t);
                if !dead.contains(&(bci, kind)) {
                    push_edge(&mut pruned[bci], t);
                    push_edge(&mut pruned_normal[bci], t);
                }
            }
        }
        for e in &method.exception_table {
            let h = e.handler as usize;
            let end = (e.end as usize).min(n);
            for bci in e.start as usize..end {
                push_edge(&mut all[bci], h);
                push_edge(&mut pruned[bci], h);
            }
        }
        let mut pruned_branches = Vec::new();
        let mut all_branches = Vec::new();
        for (bci, &insn) in code.iter().enumerate() {
            let (Some(t), true) = (insn.branch_target(), insn.falls_through()) else {
                continue;
            };
            let (taken, fall) = (t as usize, bci + 1);
            if taken == fall {
                continue;
            }
            all_branches.push((bci, taken, fall));
            if !dead.contains(&(bci, EdgeKind::Taken))
                && !dead.contains(&(bci, EdgeKind::FallThrough))
            {
                pruned_branches.push((bci, taken, fall));
            }
        }
        FlowCfg {
            all,
            pruned,
            pruned_normal,
            pruned_branches,
            all_branches,
        }
    }
}

fn push_edge(out: &mut Vec<usize>, t: usize) {
    if !out.contains(&t) {
        out.push(t);
    }
}

/// Forward reachability from `start`, optionally with one edge removed.
fn reach_from(succs: &[Vec<usize>], start: usize, skip: Option<(usize, usize)>) -> BitSet {
    let mut seen = BitSet::new(succs.len());
    if start >= succs.len() {
        return seen;
    }
    seen.insert(start);
    let mut work = vec![start];
    while let Some(bci) = work.pop() {
        for &s in &succs[bci] {
            if skip == Some((bci, s)) || seen.contains(s) {
                continue;
            }
            seen.insert(s);
            work.push(s);
        }
    }
    seen
}

/// Bcis from which some `return`/`retv` is reachable (over `succs`); an
/// instruction outside this set is *doomed* — every continuation throws.
fn returns_reachable(method: &Method, succs: &[Vec<usize>]) -> BitSet {
    let n = method.code.len();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (bci, out) in succs.iter().enumerate() {
        for &s in out {
            preds[s].push(bci);
        }
    }
    let mut seen = BitSet::new(n);
    let mut work = Vec::new();
    for (bci, insn) in method.code.iter().enumerate() {
        if matches!(insn, Insn::Return | Insn::ReturnValue) {
            seen.insert(bci);
            work.push(bci);
        }
    }
    while let Some(bci) = work.pop() {
        for &p in &preds[bci] {
            if !seen.contains(p) {
                seen.insert(p);
                work.push(p);
            }
        }
    }
    seen
}

// ---------------------------------------------------------------------------
// Event qualification.

#[allow(clippy::too_many_arguments)]
fn qualify(
    method: &Method,
    cfg: &FlowCfg,
    class: EscapeClass,
    events: &[(u32, EscapeClass)],
    pruned_reach: &BitSet,
    pruned_normal_reach: &BitSet,
    ret_reach: &BitSet,
) -> PathEscape {
    if class == EscapeClass::NoEscape {
        return PathEscape::NoEscape;
    }
    // Only the class-defining events qualify, and only where the pruned
    // CFG can still reach them.
    let qualifying: Vec<usize> = events
        .iter()
        .filter(|&&(_, c)| c == class)
        .map(|&(b, _)| b as usize)
        .filter(|&b| pruned_reach.contains(b))
        .collect();
    if qualifying.is_empty() {
        // The class arose only on predicate-dead paths (or purely through
        // closure): stay conservative rather than claim a vacuous
        // qualification.
        return PathEscape::GlobalEscape;
    }
    let throwish = |b: usize| {
        matches!(method.code[b], Insn::Athrow)
            || !ret_reach.contains(b)
            || !pruned_normal_reach.contains(b)
    };
    if qualifying.iter().all(|&b| throwish(b)) {
        return PathEscape::EscapesOnThrowPathOnly;
    }
    // A single conditional whose one edge dominates every event: removing
    // that edge must make all of them unreachable. Deepest such branch
    // (max bci) wins — it is the tightest guard.
    let mut best: Option<usize> = None;
    for &(b, taken, fall) in &cfg.pruned_branches {
        if !pruned_reach.contains(b) {
            continue;
        }
        for tgt in [taken, fall] {
            let r = reach_from(&cfg.pruned, 0, Some((b, tgt)));
            if qualifying.iter().all(|&e| !r.contains(e)) {
                best = Some(best.map_or(b, |prev: usize| prev.max(b)));
            }
        }
    }
    match best {
        Some(b) => PathEscape::EscapesOnColdBranch(b as u32),
        None => PathEscape::GlobalEscape,
    }
}

// ---------------------------------------------------------------------------
// Path-qualified throw behaviour.

fn compute_throw_path(method: &Method, cfg: &FlowCfg, may_throw: bool) -> ThrowPath {
    if !may_throw {
        return ThrowPath::Never;
    }
    let entry_reach = reach_from(&cfg.all, 0, None);
    let athrows: Vec<usize> = method
        .code
        .iter()
        .enumerate()
        .filter(|&(bci, insn)| matches!(insn, Insn::Athrow) && entry_reach.contains(bci))
        .map(|(bci, _)| bci)
        .collect();
    if athrows.is_empty() {
        return ThrowPath::CalleesOnly;
    }
    let any_return = method.code.iter().enumerate().any(|(bci, insn)| {
        matches!(insn, Insn::Return | Insn::ReturnValue) && entry_reach.contains(bci)
    });
    if !any_return {
        return ThrowPath::Always;
    }
    let mut guards: Vec<ThrowGuard> = Vec::new();
    for &a in &athrows {
        let mut found: Option<ThrowGuard> = None;
        for &(b, taken, fall) in &cfg.all_branches {
            if !entry_reach.contains(b) {
                continue;
            }
            let guard = if !reach_from(&cfg.all, 0, Some((b, taken))).contains(a) {
                Some(ThrowGuard {
                    bci: b as u32,
                    throw_on_taken: true,
                })
            } else if !reach_from(&cfg.all, 0, Some((b, fall))).contains(a) {
                Some(ThrowGuard {
                    bci: b as u32,
                    throw_on_taken: false,
                })
            } else {
                None
            };
            if let Some(g) = guard {
                // Keep the tightest (deepest) guard for this athrow.
                found = Some(match found {
                    Some(prev) if prev.bci >= g.bci => prev,
                    _ => g,
                });
            }
        }
        match found {
            Some(g) => {
                if !guards.contains(&g) {
                    guards.push(g);
                }
            }
            None => return ThrowPath::Sometimes,
        }
    }
    guards.sort_by_key(|g| g.bci);
    ThrowPath::Guarded(guards)
}

// ---------------------------------------------------------------------------
// Certain-escape must-analysis.

/// How a slot relates to the analyzed site's (latest) allocation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Track {
    /// The slot may hold the object on some path.
    may: bool,
    /// The slot holds the object on every path.
    must: bool,
}

#[derive(Clone, PartialEq, Eq)]
struct CFrame {
    locals: Vec<Track>,
    stack: Vec<Track>,
    /// The object has been allocated and not yet published on some path
    /// reaching here.
    live: bool,
}

/// Must-analysis for one `GlobalEscape` site: does the object escape
/// globally on **every** path from its allocation, with no observable or
/// faulting instruction while it is live? If so, PEA's deferral of the
/// allocation to the materialization point is indistinguishable from
/// allocating eagerly — the site can be pre-filtered with identical
/// results and allocation counts.
///
/// The checks are deliberately strict: any faulting instruction (it would
/// abort before PEA ever materializes), any other allocation (handle
/// numbering must not shift), any branch *on* the object, and any call
/// that does not certainly publish it all disqualify the site.
struct CertainFlow<'a> {
    site_bci: usize,
    /// Per-method, per-parameter publishes-on-every-path bits (the
    /// interprocedural `publishes_immediately`), when available.
    publishes: Option<&'a [Vec<bool>]>,
    failed: bool,
    saw_site: bool,
}

impl CertainFlow<'_> {
    fn publish(state: &mut CFrame) {
        for t in &mut state.locals {
            *t = Track::default();
        }
        for t in &mut state.stack {
            *t = Track::default();
        }
        state.live = false;
    }
}

impl ForwardAnalysis for CertainFlow<'_> {
    type State = CFrame;

    fn boundary(&mut self, _program: &Program, method: &Method) -> CFrame {
        CFrame {
            locals: vec![Track::default(); method.max_locals as usize],
            stack: Vec::new(),
            live: false,
        }
    }

    fn join(a: &mut CFrame, b: &CFrame) -> bool {
        let mut changed = false;
        for (x, y) in a.locals.iter_mut().zip(&b.locals) {
            let next = Track {
                may: x.may || y.may,
                must: x.must && y.must,
            };
            changed |= next != *x;
            *x = next;
        }
        for (x, y) in a.stack.iter_mut().zip(&b.stack) {
            let next = Track {
                may: x.may || y.may,
                must: x.must && y.must,
            };
            changed |= next != *x;
            *x = next;
        }
        if b.live && !a.live {
            a.live = true;
            changed = true;
        }
        changed
    }

    fn transfer(
        &mut self,
        program: &Program,
        _method: &Method,
        bci: usize,
        insn: Insn,
        state: &mut CFrame,
    ) {
        let live = state.live;
        match insn {
            Insn::New(_) | Insn::NewArray(_) => {
                if matches!(insn, Insn::NewArray(_)) {
                    state.stack.pop();
                }
                // Another allocation while ours is live would reorder
                // handle assignment (and `newarray` can fault); a
                // re-allocation of our own site while a prior instance is
                // live breaks the one-object tracking.
                if live {
                    self.failed = true;
                }
                if bci == self.site_bci {
                    self.saw_site = true;
                    state.stack.push(Track {
                        may: true,
                        must: true,
                    });
                    state.live = true;
                } else {
                    state.stack.push(Track::default());
                }
            }
            Insn::Load(n) => state.stack.push(state.locals[n as usize]),
            Insn::Store(n) => {
                let v = state.stack.pop().expect("verified stack");
                state.locals[n as usize] = v;
            }
            Insn::Dup => {
                let top = *state.stack.last().expect("verified stack");
                state.stack.push(top);
            }
            Insn::Swap => {
                let n = state.stack.len();
                state.stack.swap(n - 1, n - 2);
            }
            Insn::Pop => {
                state.stack.pop();
            }
            Insn::Const(_) | Insn::ConstNull | Insn::GetStatic(_) => {
                state.stack.push(Track::default());
            }
            Insn::Goto(_) => {}
            Insn::Add
            | Insn::Sub
            | Insn::Mul
            | Insn::And
            | Insn::Or
            | Insn::Xor
            | Insn::Shl
            | Insn::Shr => {
                state.stack.pop();
                state.stack.pop();
                state.stack.push(Track::default());
            }
            Insn::Neg => {
                state.stack.pop();
                state.stack.push(Track::default());
            }
            Insn::Div | Insn::Rem => {
                // Can fault (divide by zero) before the publication.
                state.stack.pop();
                state.stack.pop();
                state.stack.push(Track::default());
                if live {
                    self.failed = true;
                }
            }
            Insn::IfCmp(..) | Insn::IfRefEq(_) | Insn::IfRefNe(_) => {
                let b = state.stack.pop().expect("verified stack");
                let a = state.stack.pop().expect("verified stack");
                // Branching on the object itself makes publication
                // path-dependent in ways this must-analysis cannot track.
                if a.may || b.may {
                    self.failed = true;
                }
            }
            Insn::IfNull(_) | Insn::IfNonNull(_) => {
                let r = state.stack.pop().expect("verified stack");
                if r.may {
                    self.failed = true;
                }
            }
            Insn::PutStatic(_) => {
                let v = state.stack.pop().expect("verified stack");
                if v.must {
                    Self::publish(state);
                } else if v.may {
                    self.failed = true;
                }
                // Publishing an unrelated value cannot fault and does not
                // interact with the deferred allocation: allowed.
            }
            Insn::Athrow => {
                let v = state.stack.pop().expect("verified stack");
                if v.must {
                    // Thrown-escape: PEA materializes exactly here.
                    Self::publish(state);
                } else if v.may || live {
                    self.failed = true;
                }
            }
            Insn::Throw => {
                state.stack.pop();
                if live {
                    self.failed = true;
                }
            }
            Insn::Return => {
                if live {
                    self.failed = true;
                }
            }
            Insn::ReturnValue => {
                let v = state.stack.pop().expect("verified stack");
                if v.may || live {
                    self.failed = true;
                }
            }
            Insn::InvokeStatic(target) => {
                let callee = program.method(target);
                let pc = callee.param_count as usize;
                let mut args = vec![Track::default(); pc];
                for idx in (0..pc).rev() {
                    args[idx] = state.stack.pop().expect("verified stack");
                }
                let mut published = false;
                for (idx, arg) in args.iter().enumerate() {
                    let publishes_here = arg.must
                        && self
                            .publishes
                            .is_some_and(|p| p[target.index()].get(idx).copied().unwrap_or(false));
                    if publishes_here {
                        published = true;
                    } else if arg.may {
                        self.failed = true;
                    }
                }
                if published {
                    Self::publish(state);
                } else if live {
                    // The callee may fault, observe globals, or allocate
                    // before our deferred allocation materializes.
                    self.failed = true;
                }
                if callee.returns_value {
                    state.stack.push(Track::default());
                }
            }
            Insn::InvokeVirtual(target) => {
                let callee = program.method(target);
                for _ in 0..callee.param_count {
                    let a = state.stack.pop().expect("verified stack");
                    if a.may {
                        self.failed = true;
                    }
                }
                if live {
                    self.failed = true;
                }
                if callee.returns_value {
                    state.stack.push(Track::default());
                }
            }
            // Faulting or heap-observing instructions: disallowed while
            // the object is live (a fault would abort before PEA's
            // materialization point; the allocation counts would differ).
            Insn::GetField(_) | Insn::ArrayLength | Insn::CheckCast(_) | Insn::InstanceOf(_) => {
                state.stack.pop();
                state.stack.push(Track::default());
                if live {
                    self.failed = true;
                }
            }
            Insn::ArrayLoad => {
                state.stack.pop();
                state.stack.pop();
                state.stack.push(Track::default());
                if live {
                    self.failed = true;
                }
            }
            Insn::PutField(_) => {
                state.stack.pop();
                state.stack.pop();
                if live {
                    self.failed = true;
                }
            }
            Insn::ArrayStore => {
                state.stack.pop();
                state.stack.pop();
                state.stack.pop();
                if live {
                    self.failed = true;
                }
            }
            Insn::MonitorEnter | Insn::MonitorExit => {
                state.stack.pop();
                if live {
                    self.failed = true;
                }
            }
        }
    }
}

/// Whether the `GlobalEscape` site at `site_bci` escapes on every path
/// from its allocation with nothing observable in between (see
/// [`CertainFlow`]). Methods with exception tables are skipped wholesale:
/// exceptional edges would let control leave the live region invisibly.
fn certainly_escapes(
    program: &Program,
    method: &Method,
    site_bci: u32,
    publishes: Option<&[Vec<bool>]>,
) -> bool {
    if !method.exception_table.is_empty() {
        return false;
    }
    let mut flow = CertainFlow {
        site_bci: site_bci as usize,
        publishes,
        failed: false,
        saw_site: false,
    };
    solve_forward(program, method, &mut flow);
    flow.saw_site && !flow.failed
}

// ---------------------------------------------------------------------------
// Entry point.

/// Runs the branch-aware layer over one method, qualifying the given
/// flow-insensitive summary. `may_throw` is the interprocedural bit
/// (local `athrow` or any transitive callee throws); `publishes` supplies
/// per-method `publishes_immediately` rows for the certain-escape call
/// case (pass `None` to treat every call conservatively).
pub fn analyze_method_flow(
    program: &Program,
    method_id: MethodId,
    insensitive: &EscapeSummary,
    may_throw: bool,
    publishes: Option<&[Vec<bool>]>,
) -> FlowSummary {
    let method = program.method(method_id);
    if method.code.is_empty() {
        return FlowSummary {
            method: method_id,
            sites: Vec::new(),
            throw_path: if may_throw {
                ThrowPath::CalleesOnly
            } else {
                ThrowPath::Never
            },
            publishes_on_throw_only: vec![false; method.param_count as usize],
        };
    }
    let mut pred = PredicateFlow::new(method);
    let states = solve_forward(program, method, &mut pred);
    let dead = dead_edges(program, method, &mut pred, &states);
    let cfg = FlowCfg::build(method, &dead);
    let pruned_reach = reach_from(&cfg.pruned, 0, None);
    let pruned_normal_reach = reach_from(&cfg.pruned_normal, 0, None);
    let ret_reach = returns_reachable(method, &cfg.all);
    let sites = insensitive
        .sites
        .iter()
        .enumerate()
        .map(|(i, site)| {
            let path = qualify(
                method,
                &cfg,
                site.escape,
                &insensitive.site_events[i],
                &pruned_reach,
                &pruned_normal_reach,
                &ret_reach,
            );
            let certain_global = site.escape == EscapeClass::GlobalEscape
                && certainly_escapes(program, method, site.bci, publishes);
            FlowSite {
                bci: site.bci,
                insensitive: site.escape,
                path,
                certain_global,
            }
        })
        .collect();
    let throw_path = compute_throw_path(method, &cfg, may_throw);
    let publishes_on_throw_only = insensitive
        .param_escape
        .iter()
        .enumerate()
        .map(|(p, &class)| {
            class == EscapeClass::GlobalEscape
                && qualify(
                    method,
                    &cfg,
                    class,
                    &insensitive.param_events[p],
                    &pruned_reach,
                    &pruned_normal_reach,
                    &ret_reach,
                ) == PathEscape::EscapesOnThrowPathOnly
        })
        .collect();
    FlowSummary {
        method: method_id,
        sites,
        throw_path,
        publishes_on_throw_only,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::escape::analyze_method;
    use pea_bytecode::asm::parse_program;

    fn flow(src: &str, name: &str, may_throw: bool) -> FlowSummary {
        let program = parse_program(src).unwrap();
        pea_bytecode::verify_program(&program).unwrap();
        let id = program.static_method_by_name(name).unwrap();
        let insensitive = analyze_method(&program, id);
        analyze_method_flow(&program, id, &insensitive, may_throw, None)
    }

    #[test]
    fn no_escape_site_stays_no_escape() {
        let s = flow(
            "class Box { field v int }
             method m 1 returns {
                new Box store 1
                load 1 load 0 putfield Box.v
                load 1 getfield Box.v retv
             }",
            "m",
            false,
        );
        assert_eq!(s.sites[0].path, PathEscape::NoEscape);
        assert!(!s.sites[0].certain_global);
        assert_eq!(s.throw_path, ThrowPath::Never);
    }

    #[test]
    fn throw_only_publication_is_qualified() {
        // The Err is built and thrown on one arm; the other arm returns.
        let s = flow(
            "class Err { field code int }
             method m 1 returns {
                load 0 const 0 ifcmp eq Lok
                new Err store 1
                load 1 load 0 putfield Err.code
                load 1 athrow
             Lok: const 0 retv
             }",
            "m",
            true,
        );
        assert_eq!(s.sites[0].insensitive, EscapeClass::GlobalEscape);
        assert_eq!(s.sites[0].path, PathEscape::EscapesOnThrowPathOnly);
        // The athrow sits behind the ifcmp guard at bci 2 (fall side).
        match &s.throw_path {
            ThrowPath::Guarded(gs) => {
                assert_eq!(gs.len(), 1);
                assert_eq!(gs[0].bci, 2);
                assert!(!gs[0].throw_on_taken, "throw is on the fall-through side");
            }
            other => panic!("expected Guarded, got {other:?}"),
        }
    }

    #[test]
    fn guarded_publication_is_cold_branch_and_certain() {
        // Publication via a local behind a branch: flow-insensitively
        // GlobalEscape (not syntactically immediate), but every path from
        // the allocation publishes with nothing observable in between —
        // the pea-pre-flow exclusion pattern.
        let s = flow(
            "class Box { field v int }
             static g ref
             method m 1 {
                load 0 const 7 ifcmp ne Lskip
                new Box store 1
                load 1 putstatic g
             Lskip: ret
             }",
            "m",
            false,
        );
        assert_eq!(s.sites[0].insensitive, EscapeClass::GlobalEscape);
        assert_eq!(s.sites[0].path, PathEscape::EscapesOnColdBranch(2));
        assert!(
            s.sites[0].certain_global,
            "all paths from the alloc publish"
        );
    }

    #[test]
    fn hot_path_publication_stays_global() {
        let s = flow(
            "class Box { field v int }
             static g ref
             method m 0 { new Box store 0 load 0 putstatic g ret }",
            "m",
            false,
        );
        assert_eq!(s.sites[0].path, PathEscape::GlobalEscape);
        assert!(s.sites[0].certain_global);
    }

    #[test]
    fn observable_op_while_live_is_not_certain() {
        // A getfield (can fault) between allocation and publication: the
        // deferred allocation is distinguishable, so not certain.
        let s = flow(
            "class Box { field v int }
             static g ref
             method m 1 {
                new Box store 1
                load 0 checkcast Box getfield Box.v pop
                load 1 putstatic g ret
             }",
            "m",
            false,
        );
        assert_eq!(s.sites[0].insensitive, EscapeClass::GlobalEscape);
        assert!(!s.sites[0].certain_global);
    }

    #[test]
    fn escaping_path_without_publication_is_not_certain() {
        // One arm returns without publishing: must-publish fails.
        let s = flow(
            "class Box { field v int }
             static g ref
             method m 1 {
                new Box store 1
                load 0 const 0 ifcmp eq Lout
                load 1 putstatic g
             Lout: ret
             }",
            "m",
            false,
        );
        assert_eq!(s.sites[0].insensitive, EscapeClass::GlobalEscape);
        assert!(!s.sites[0].certain_global);
    }

    #[test]
    fn predicate_dead_edge_prunes_publication() {
        // `const 1 const 0 ifcmp eq` never takes the branch: the
        // publication behind it is predicate-dead, and the (conservative)
        // verdict falls back to GlobalEscape rather than inventing a
        // NoEscape the insensitive tier did not prove.
        let s = flow(
            "class Box { field v int }
             static g ref
             method m 0 {
                new Box store 0
                const 1 const 0 ifcmp eq Lpub
                ret
             Lpub: load 0 putstatic g ret
             }",
            "m",
            false,
        );
        assert_eq!(s.sites[0].insensitive, EscapeClass::GlobalEscape);
        assert_eq!(s.sites[0].path, PathEscape::GlobalEscape);
        assert!(!s.sites[0].certain_global, "publication path is dead");
    }

    #[test]
    fn constant_local_flow_kills_guarded_edge() {
        // Local 1 is the constant 3 on the fall side of the eq-compare;
        // the second compare `load 1 const 3 ifcmp ne` can then never be
        // taken, so the publication behind it is unreachable.
        let s = flow(
            "class Box { field v int }
             static g ref
             method m 1 {
                new Box store 2
                load 0 const 3 ifcmp ne Lout
                load 0 store 1
                load 1 const 3 ifcmp ne Lpub
             Lout: ret
             Lpub: load 2 putstatic g ret
             }",
            "m",
            false,
        );
        // Local 0 is Const(3) along the first compare's fall side, so the
        // copy into local 1 is too, and the second compare's taken (ne)
        // edge is infeasible: the publication is predicate-dead and the
        // verdict falls back to the conservative GlobalEscape instead of
        // the EscapesOnColdBranch a non-predicate analysis would report.
        assert_eq!(s.sites[0].insensitive, EscapeClass::GlobalEscape);
        assert_eq!(s.sites[0].path, PathEscape::GlobalEscape);
    }

    #[test]
    fn throws_on_every_path_is_always() {
        let s = flow(
            "class Err { }
             method m 0 { new Err athrow }",
            "m",
            true,
        );
        assert_eq!(s.throw_path, ThrowPath::Always);
        assert_eq!(s.sites[0].path, PathEscape::EscapesOnThrowPathOnly);
    }

    #[test]
    fn callee_only_throws_are_transparent() {
        let s = flow(
            "class Err { }
             method thrower 0 { new Err athrow }
             method m 0 { invokestatic thrower ret }",
            "m",
            true, // may_throw via the callee
        );
        assert_eq!(s.throw_path, ThrowPath::CalleesOnly);
    }

    #[test]
    fn publishes_param_on_throw_path_only() {
        // The parameter is published only inside the doomed (throwing)
        // arm.
        let s = flow(
            "class Err { }
             static g ref
             method m 2 {
                load 0 const 0 ifcmp eq Lok
                load 1 putstatic g
                new Err athrow
             Lok: ret
             }",
            "m",
            true,
        );
        assert_eq!(s.publishes_on_throw_only, vec![false, true]);
    }
}
