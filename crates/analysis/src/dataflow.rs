//! A small worklist dataflow framework over method bytecode.
//!
//! Analyses implement [`ForwardAnalysis`] or [`BackwardAnalysis`]: a state
//! type forming a join-semilattice (the `join` must be monotone and
//! idempotent), a boundary state, and a per-instruction transfer function.
//! The solvers iterate a worklist over bytecode indices until the per-bci
//! states stabilize.
//!
//! Transfer functions take `&mut self` so an analysis can accumulate global
//! facts (escape classes, findings) while solving. Because the solver may
//! visit an instruction several times before the fixpoint, such accumulation
//! must be **idempotent** — grow monotone sets, never bump counters.

use pea_bytecode::{Insn, Method, Program};

/// A fixed-capacity bit set used as the workhorse abstract domain: joins are
/// word-wise ORs and the lattice height is bounded by the bit count, which
/// guarantees solver termination.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set with capacity for `n` bits.
    pub fn new(n: usize) -> BitSet {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    pub fn insert(&mut self, bit: usize) {
        self.words[bit / 64] |= 1 << (bit % 64);
    }

    pub fn remove(&mut self, bit: usize) {
        if let Some(w) = self.words.get_mut(bit / 64) {
            *w &= !(1u64 << (bit % 64));
        }
    }

    pub fn contains(&self, bit: usize) -> bool {
        self.words
            .get(bit / 64)
            .is_some_and(|w| w & (1 << (bit % 64)) != 0)
    }

    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Unions `other` into `self`; true when any new bit appeared.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// True when the two sets share at least one bit.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Iterates the set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            (0..64)
                .filter(move |b| w & (1 << b) != 0)
                .map(move |b| i * 64 + b)
        })
    }
}

/// Successor bytecode indices of the instruction at `bci`.
pub fn successors(insn: Insn, bci: usize) -> impl Iterator<Item = usize> {
    let branch = insn.branch_target().map(|t| t as usize);
    let fall = if insn.falls_through() {
        Some(bci + 1)
    } else {
        None
    };
    branch.into_iter().chain(fall)
}

/// Which outgoing control-flow edge a state is propagated along: the
/// explicit branch target of a conditional/goto, or the fall-through to
/// the next instruction. Passed to [`ForwardAnalysis::refine_edge`] so
/// predicate-aware analyses can specialize (or kill) the state per edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EdgeKind {
    /// The explicit `branch_target()` edge (the "taken" side).
    Taken,
    /// The implicit fall-through edge to `bci + 1`.
    FallThrough,
}

/// Edges leaving the instruction at `bci`, labelled with their kind.
pub fn edges(insn: Insn, bci: usize) -> impl Iterator<Item = (usize, EdgeKind)> {
    let branch = insn.branch_target().map(|t| (t as usize, EdgeKind::Taken));
    let fall = if insn.falls_through() {
        Some((bci + 1, EdgeKind::FallThrough))
    } else {
        None
    };
    branch.into_iter().chain(fall)
}

/// A forward dataflow analysis: states flow from method entry toward
/// instruction successors.
pub trait ForwardAnalysis {
    type State: Clone;

    /// The state on entry to the method (before bci 0).
    fn boundary(&mut self, program: &Program, method: &Method) -> Self::State;

    /// Joins `b` into `a`; true when `a` changed. Must be monotone.
    fn join(a: &mut Self::State, b: &Self::State) -> bool;

    /// Applies the instruction at `bci` to `state` in place. May record
    /// global facts on `self` (idempotently — see the module docs).
    fn transfer(
        &mut self,
        program: &Program,
        method: &Method,
        bci: usize,
        insn: Insn,
        state: &mut Self::State,
    );

    /// The state on entry to an exception handler. The framework propagates
    /// one post-transfer state to *all* successors, so it cannot model the
    /// JVM's exceptional transfer (operand stack cleared to just the caught
    /// exception) edge-precisely; instead, analyses that must see handler
    /// code return a conservative handler-entry state here and the solver
    /// seeds every `exception_table` handler bci with it. `None` (the
    /// default) leaves handlers reachable only through normal control flow,
    /// which is correct for analyses that do not model exceptions at all —
    /// but note their transfer functions then never run on handler-only
    /// blocks.
    fn handler_boundary(&mut self, _program: &Program, _method: &Method) -> Option<Self::State> {
        None
    }

    /// Specializes the post-transfer `state` for one outgoing edge before it
    /// is joined into `target`'s input — the SkipFlow-style predicate hook.
    /// A conditional's transfer runs once; then this runs on a *clone* of
    /// the resulting state per edge, so an analysis can assert the branch
    /// predicate's outcome along each side (e.g. "the compared local is
    /// nonzero on the taken edge"). Returning `false` declares the edge
    /// infeasible under the current state and the solver skips it entirely.
    ///
    /// The default keeps every edge with the unrefined state, which is
    /// exactly the classic edge-insensitive solver. Refinements must stay
    /// sound under joins: only strengthen facts the predicate guarantees.
    #[allow(clippy::too_many_arguments)]
    fn refine_edge(
        &mut self,
        _program: &Program,
        _method: &Method,
        _bci: usize,
        _insn: Insn,
        _edge: EdgeKind,
        _target: usize,
        _state: &mut Self::State,
    ) -> bool {
        true
    }
}

/// Runs `analysis` to a fixpoint and returns the state *entering* each
/// bytecode index (`None` for unreachable instructions).
pub fn solve_forward<A: ForwardAnalysis>(
    program: &Program,
    method: &Method,
    analysis: &mut A,
) -> Vec<Option<A::State>> {
    let code = &method.code;
    let mut input: Vec<Option<A::State>> = vec![None; code.len()];
    if code.is_empty() {
        return input;
    }
    input[0] = Some(analysis.boundary(program, method));
    let mut work = vec![0usize];
    if !method.exception_table.is_empty() {
        if let Some(entry_state) = analysis.handler_boundary(program, method) {
            for e in &method.exception_table {
                let h = e.handler as usize;
                match &mut input[h] {
                    Some(existing) => {
                        if A::join(existing, &entry_state) {
                            work.push(h);
                        }
                    }
                    slot @ None => {
                        *slot = Some(entry_state.clone());
                        work.push(h);
                    }
                }
            }
        }
    }
    while let Some(bci) = work.pop() {
        let mut state = input[bci].clone().expect("worklist entries have states");
        let insn = code[bci];
        analysis.transfer(program, method, bci, insn, &mut state);
        for (succ, edge) in edges(insn, bci) {
            let mut out = state.clone();
            if !analysis.refine_edge(program, method, bci, insn, edge, succ, &mut out) {
                continue;
            }
            match &mut input[succ] {
                Some(existing) => {
                    if A::join(existing, &out) {
                        work.push(succ);
                    }
                }
                slot @ None => {
                    *slot = Some(out);
                    work.push(succ);
                }
            }
        }
    }
    input
}

/// A backward dataflow analysis: states flow from method exits toward
/// instruction predecessors.
pub trait BackwardAnalysis {
    type State: Clone;

    /// The state *after* a terminator (return/throw).
    fn boundary(&mut self, program: &Program, method: &Method) -> Self::State;

    /// Joins `b` into `a`; true when `a` changed. Must be monotone.
    fn join(a: &mut Self::State, b: &Self::State) -> bool;

    /// Transforms the state holding *after* the instruction at `bci` into
    /// the state holding *before* it, in place.
    fn transfer(
        &mut self,
        program: &Program,
        method: &Method,
        bci: usize,
        insn: Insn,
        state: &mut Self::State,
    );
}

/// Runs `analysis` backward to a fixpoint and returns the state *before*
/// each bytecode index.
pub fn solve_backward<A: BackwardAnalysis>(
    program: &Program,
    method: &Method,
    analysis: &mut A,
) -> Vec<Option<A::State>> {
    let code = &method.code;
    // Normal successors plus exceptional edges: any instruction inside a
    // protected range may (after interpreter-side unwinding) transfer to
    // the handler, so facts holding before the handler must hold after
    // every covered bci. Over-approximate — only throw sites and calls can
    // actually take the edge — which is the safe direction for backward
    // may-analyses like liveness.
    let mut succs: Vec<Vec<usize>> = code
        .iter()
        .enumerate()
        .map(|(bci, &insn)| successors(insn, bci).collect())
        .collect();
    for e in &method.exception_table {
        let h = e.handler as usize;
        let end = (e.end as usize).min(code.len());
        for out in &mut succs[e.start as usize..end] {
            if !out.contains(&h) {
                out.push(h);
            }
        }
    }
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); code.len()];
    for (bci, out) in succs.iter().enumerate() {
        for &succ in out {
            preds[succ].push(bci);
        }
    }
    let mut before: Vec<Option<A::State>> = vec![None; code.len()];
    // Seed every instruction once; terminators start from the exit
    // boundary, everything else becomes live once a successor has a state.
    let mut work: Vec<usize> = (0..code.len()).collect();
    while let Some(bci) = work.pop() {
        let insn = code[bci];
        let mut after: Option<A::State> = if insn.is_terminator() {
            Some(analysis.boundary(program, method))
        } else {
            None
        };
        for &succ in &succs[bci] {
            if let Some(s) = &before[succ] {
                match &mut after {
                    Some(a) => {
                        A::join(a, s);
                    }
                    slot @ None => *slot = Some(s.clone()),
                }
            }
        }
        let Some(mut state) = after else { continue };
        analysis.transfer(program, method, bci, insn, &mut state);
        let changed = match &mut before[bci] {
            Some(existing) => A::join(existing, &state),
            slot @ None => {
                *slot = Some(state);
                true
            }
        };
        if changed {
            work.extend(preds[bci].iter().copied());
        }
    }
    before
}

/// Per-bci sets of locals that may be read before being overwritten later
/// in the method — the textbook backward liveness analysis, exposed both as
/// a framework demonstration and for dead-store reporting.
pub fn live_locals(program: &Program, method: &Method) -> Vec<Option<BitSet>> {
    struct Liveness {
        n_locals: usize,
    }
    impl BackwardAnalysis for Liveness {
        type State = BitSet;
        fn boundary(&mut self, _program: &Program, _method: &Method) -> BitSet {
            BitSet::new(self.n_locals)
        }
        fn join(a: &mut BitSet, b: &BitSet) -> bool {
            a.union_with(b)
        }
        fn transfer(
            &mut self,
            _program: &Program,
            _method: &Method,
            _bci: usize,
            insn: Insn,
            state: &mut BitSet,
        ) {
            match insn {
                Insn::Store(n) => state.remove(n as usize),
                Insn::Load(n) => state.insert(n as usize),
                _ => {}
            }
        }
    }
    let mut analysis = Liveness {
        n_locals: method.max_locals as usize,
    };
    solve_backward(program, method, &mut analysis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pea_bytecode::asm::parse_program;

    #[test]
    fn bitset_ops() {
        let mut a = BitSet::new(130);
        a.insert(0);
        a.insert(65);
        a.insert(129);
        assert!(a.contains(65) && !a.contains(64));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 65, 129]);
        a.remove(65);
        assert!(!a.contains(65));
        a.insert(65);
        let mut b = BitSet::new(130);
        b.insert(64);
        assert!(!a.intersects(&b));
        assert!(b.union_with(&a));
        assert!(!b.union_with(&a), "second union is a no-op");
        assert!(a.intersects(&b));
    }

    /// Forward toy analysis: which `const` bcis may have produced the
    /// current top-of-stack value. Exercises branch joins.
    #[test]
    fn forward_solver_joins_across_branches() {
        let program = parse_program(
            "method m 1 returns {
                load 0 const 0 ifcmp ne Lb
                const 7 goto Lr
            Lb: const 9
            Lr: retv
            }",
        )
        .unwrap();
        let method = &program.methods[0];

        struct TopConst;
        impl ForwardAnalysis for TopConst {
            type State = BitSet;
            fn boundary(&mut self, _p: &Program, m: &Method) -> BitSet {
                BitSet::new(m.code.len())
            }
            fn join(a: &mut BitSet, b: &BitSet) -> bool {
                a.union_with(b)
            }
            fn transfer(
                &mut self,
                _p: &Program,
                m: &Method,
                bci: usize,
                insn: Insn,
                state: &mut BitSet,
            ) {
                if matches!(insn, Insn::Const(_)) {
                    *state = BitSet::new(m.code.len());
                    state.insert(bci);
                }
            }
        }
        let states = solve_forward(&program, method, &mut TopConst);
        // retv is the last instruction; both arms' consts reach it.
        let at_ret = states.last().unwrap().as_ref().unwrap();
        assert_eq!(at_ret.iter().count(), 2, "{at_ret:?}");
        assert!(!at_ret.contains(1), "comparison const was overwritten");
    }

    /// An analysis that kills the taken edge of every branch must leave the
    /// branch target unreachable while fall-through code still solves.
    #[test]
    fn refine_edge_can_prune_infeasible_edges() {
        let program = parse_program(
            "method m 1 returns {
                load 0 const 0 ifcmp ne Lb
                const 7 retv
            Lb: const 9 retv
            }",
        )
        .unwrap();
        let method = &program.methods[0];

        struct NeverTaken;
        impl ForwardAnalysis for NeverTaken {
            type State = ();
            fn boundary(&mut self, _p: &Program, _m: &Method) {}
            fn join(_a: &mut (), _b: &()) -> bool {
                false
            }
            fn transfer(&mut self, _p: &Program, _m: &Method, _b: usize, _i: Insn, _s: &mut ()) {}
            fn refine_edge(
                &mut self,
                _p: &Program,
                _m: &Method,
                _b: usize,
                _i: Insn,
                edge: EdgeKind,
                _t: usize,
                _s: &mut (),
            ) -> bool {
                edge == EdgeKind::FallThrough
            }
        }
        let states = solve_forward(&program, method, &mut NeverTaken);
        let target = method.code[2].branch_target().unwrap() as usize;
        assert!(states[target].is_none(), "taken edge was pruned");
        assert!(states[3].is_some(), "fall-through still solved");
    }

    #[test]
    fn backward_liveness_sees_loop_carried_use() {
        let program = parse_program(
            "method m 1 returns {
                load 0 store 1
            L:  load 1 const 0 ifcmp eq Ld
                load 1 const 1 sub store 1 goto L
            Ld: load 1 retv
            }",
        )
        .unwrap();
        let method = &program.methods[0];
        let live = live_locals(&program, method);
        // At the loop header (bci 2), local 1 is live around the back edge.
        assert!(live[2].as_ref().unwrap().contains(1));
        // On entry, local 0 is live but local 1 is not yet.
        let entry = live[0].as_ref().unwrap();
        assert!(entry.contains(0) && !entry.contains(1));
    }

    #[test]
    fn handler_blocks_reach_only_via_boundary_hook() {
        let program = parse_program(
            "class Err { }
             method m 1 returns {
                try Ls Le Lh *
             Ls:
                load 0 const 0 ifcmp eq Ld
                new Err athrow
             Le:
             Ld: const 0 retv
             Lh: pop const 1 retv
             }",
        )
        .unwrap();
        let method = &program.methods[0];
        let handler = method.exception_table[0].handler as usize;
        assert!(matches!(method.code[handler], Insn::Pop));

        struct Height {
            seed_handlers: bool,
        }
        impl ForwardAnalysis for Height {
            type State = usize;
            fn boundary(&mut self, _p: &Program, _m: &Method) -> usize {
                0
            }
            fn join(a: &mut usize, b: &usize) -> bool {
                let next = (*a).max(*b);
                let changed = next != *a;
                *a = next;
                changed
            }
            fn transfer(&mut self, _p: &Program, _m: &Method, _b: usize, i: Insn, s: &mut usize) {
                *s = s.saturating_sub(i.pops()) + i.pushes();
            }
            fn handler_boundary(&mut self, _p: &Program, _m: &Method) -> Option<usize> {
                // Handler entry: stack holds exactly the caught exception.
                self.seed_handlers.then_some(1)
            }
        }
        // Default (no hook): the handler block is unreachable.
        let states = solve_forward(
            &program,
            method,
            &mut Height {
                seed_handlers: false,
            },
        );
        assert!(states[handler].is_none());
        // With the hook the handler is solved, entering at height 1.
        let states = solve_forward(
            &program,
            method,
            &mut Height {
                seed_handlers: true,
            },
        );
        assert_eq!(states[handler], Some(1));
    }

    #[test]
    fn liveness_sees_handler_only_uses_throughout_try_range() {
        // Local 1 is written before the try region and read only in the
        // handler: the exceptional edges must keep it live across the
        // entire protected range, else a deopt inside the try would drop
        // a value the handler still needs.
        let program = parse_program(
            "class Err { }
             method m 1 returns {
                const 7 store 1
                try Ls Le Lh *
             Ls:
                load 0 const 0 ifcmp eq Ld
                new Err athrow
             Le:
             Ld: const 0 retv
             Lh: pop load 1 retv
             }",
        )
        .unwrap();
        let method = &program.methods[0];
        let live = live_locals(&program, method);
        let entry = method.exception_table[0];
        for bci in entry.start..entry.end {
            assert!(
                live[bci as usize].as_ref().unwrap().contains(1),
                "local 1 must stay live at covered bci {bci}"
            );
        }
        // After the protected range ends the local is genuinely dead.
        let at_ret = live[entry.end as usize].as_ref().unwrap();
        assert!(!at_ret.contains(1));
    }

    #[test]
    fn unreachable_code_has_no_state() {
        let program = parse_program(
            "method m 0 returns {
                const 1 retv
                const 2 retv
            }",
        )
        .unwrap();
        let method = &program.methods[0];

        struct Unit;
        impl ForwardAnalysis for Unit {
            type State = ();
            fn boundary(&mut self, _p: &Program, _m: &Method) {}
            fn join(_a: &mut (), _b: &()) -> bool {
                false
            }
            fn transfer(&mut self, _p: &Program, _m: &Method, _b: usize, _i: Insn, _s: &mut ()) {}
        }
        let states = solve_forward(&program, method, &mut Unit);
        assert!(states[0].is_some() && states[2].is_none());
    }
}
