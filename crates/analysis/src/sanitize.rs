//! The PEA decision sanitizer: cross-checks the speculative partial escape
//! analysis against the conservative static verdicts.
//!
//! PEA is allowed to be *more* optimistic than the flow-insensitive
//! pre-analysis — that is its entire point (the paper's running example is
//! `GlobalEscape` flow-insensitively yet fully scalar-replaced on the hot
//! path). But it can never be optimistic about things the static analysis
//! *proves*:
//!
//! * an allocation the static analysis classifies `NoEscape` can never
//!   materialize for a *direct escape* reason — reaching a residual call
//!   argument, a return, a throw, or an `Unwind` exit (`thrown-escape`)
//!   requires a corresponding bytecode-level flow the pre-analysis would
//!   have seen (the exception edge is a publication point there too:
//!   `athrow` raises its operand set in the pre-analysis, so a thrown site
//!   is never NoEscape; stores into escaped containers are excluded — the
//!   *container's* dynamic state decides those);
//! * a `LockElided` event on a site the static analysis proves is never a
//!   monitor operand (and never reaches a callee or escapes) is a phantom
//!   lock;
//! * elided enter/exit node counts per site only diverge when the object
//!   materialized mid-critical-section (§5.2 — later exits become real
//!   operations on the materialized object);
//! * every post-PEA frame state must carry *closed* rematerialization
//!   info: layout-consistent inputs, live nodes, virtual-object mappings
//!   with exactly one value per field slot, and lock counts within the
//!   static balance bound (paper §5.5).
//!
//! Any violation is a compiler bug, surfaced as an [`Inconsistency`] and
//! escalated to a panic under the VM's `--checked` flag.

use crate::escape::{analyze_method, AllocKind, EscapeClass};
use crate::flow::{analyze_method_flow, PathEscape};
use crate::lockbalance::analyze_locks;
use pea_bytecode::{MethodId, Program};
use pea_ir::{AllocShape, Graph, NodeId, NodeKind};
use pea_trace::{MaterializeReason, TraceEvent};
use std::collections::HashMap;
use std::fmt;

/// Conservative verdict for one allocation site, keyed by `(method, bci)`.
#[derive(Clone, Debug)]
pub struct SiteVerdict {
    pub escape: EscapeClass,
    pub kind: AllocKind,
    /// Any execution could hold a monitor on this object.
    pub may_be_locked: bool,
    /// Upper bound on the simultaneous lock depth; `None` when unbounded
    /// (the object may reach a callee or escape the allocating method).
    pub lock_depth_bound: Option<u32>,
    /// The fresh reference is consumed by an immediately following
    /// `putstatic` (see [`crate::escape::immediate_global_sites`]).
    pub immediate_global: bool,
    /// Branch-aware qualification of `escape`: *where* the escape happens
    /// (throw path only, a single cold guard, everywhere), from the
    /// predicate-edge flow tier (see [`crate::flow`]).
    pub path: PathEscape,
    /// The site escapes globally on every path from its allocation with
    /// nothing observable in between (the `pea-pre-flow` exclusion
    /// certificate).
    pub certain_global: bool,
}

/// All static verdicts for a program, computed once and shared by every
/// compilation (sync path and background compile service alike).
#[derive(Debug, Default)]
pub struct StaticVerdicts {
    sites: HashMap<(MethodId, u32), SiteVerdict>,
}

impl StaticVerdicts {
    /// Runs the escape and lock-balance analyses over every method.
    pub fn analyze(program: &Program) -> StaticVerdicts {
        let mut sites = HashMap::new();
        for index in 0..program.methods.len() {
            let method = MethodId::from_index(index);
            let escape = analyze_method(program, method);
            let locks = analyze_locks(program, method);
            // Intraprocedural flow tier: callee throws are invisible here,
            // so `may_throw` is the local `athrow` bit only. The verdicts
            // stay sound — the flow tier treats residual calls as opaque.
            let flow = analyze_method_flow(
                program,
                method,
                &escape,
                program.method(method).has_athrow(),
                None,
            );
            for (i, site) in escape.sites.iter().enumerate() {
                let bounded = !site.passed_to_call && site.escape == EscapeClass::NoEscape;
                let fs = flow.site_at(site.bci);
                sites.insert(
                    (method, site.bci),
                    SiteVerdict {
                        escape: site.escape,
                        kind: site.kind,
                        may_be_locked: site.may_be_locked(),
                        lock_depth_bound: bounded.then(|| locks.max_depth[i]),
                        immediate_global: site.immediate_global,
                        path: fs.map_or(PathEscape::GlobalEscape, |f| f.path),
                        certain_global: fs.is_some_and(|f| f.certain_global),
                    },
                );
            }
        }
        StaticVerdicts { sites }
    }

    /// The verdict for the allocation at `(method, bci)`, if that bytecode
    /// index is an allocation.
    pub fn verdict(&self, method: MethodId, bci: u32) -> Option<&SiteVerdict> {
        self.sites.get(&(method, bci))
    }

    /// Number of classified sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }
}

/// One contradiction between a PEA decision and the static analyses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Inconsistency {
    /// Qualified name of the compiled (root) method.
    pub method: String,
    pub detail: String,
}

impl fmt::Display for Inconsistency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.method, self.detail)
    }
}

/// Per-site event bookkeeping gathered from a compilation's trace.
#[derive(Default)]
struct SiteEvents {
    virtualized: bool,
    materialized: bool,
    elided_enters: usize,
    elided_exits: usize,
    escape_reasons: Vec<MaterializeReason>,
}

/// Cross-checks one compilation: its decision-trace `events` and its final
/// `graph` against the `verdicts`. Returns every contradiction found
/// (empty = sanitized clean).
pub fn check_compilation(
    program: &Program,
    verdicts: &StaticVerdicts,
    root: MethodId,
    graph: &Graph,
    events: &[TraceEvent],
) -> Vec<Inconsistency> {
    let method_name = program.method(root).qualified_name(program);
    let mut out = Vec::new();
    let mut flag = |detail: String| {
        out.push(Inconsistency {
            method: method_name.clone(),
            detail,
        });
    };

    // ---- event checks ----
    let mut sites: HashMap<u32, SiteEvents> = HashMap::new();
    for event in events {
        match event {
            TraceEvent::Virtualized { site, shape } => {
                let entry = sites.entry(*site).or_default();
                entry.virtualized = true;
                match lookup(program, verdicts, graph, *site) {
                    Err(why) => flag(format!("Virtualized site {site}: {why}")),
                    Ok(verdict) => {
                        if !shape_matches(program, verdict.kind, shape) {
                            flag(format!(
                                "Virtualized site {site}: traced shape `{shape}` does not \
                                 match the bytecode allocation ({:?})",
                                verdict.kind
                            ));
                        }
                    }
                }
            }
            TraceEvent::Materialized { site, reason, .. } => {
                let entry = sites.entry(*site).or_default();
                entry.materialized = true;
                if matches!(
                    reason,
                    MaterializeReason::CallArgument
                        | MaterializeReason::ReturnValue
                        | MaterializeReason::ThrowValue
                        | MaterializeReason::ThrownEscape
                ) {
                    entry.escape_reasons.push(*reason);
                    if let Ok(verdict) = lookup(program, verdicts, graph, *site) {
                        if verdict.escape == EscapeClass::NoEscape {
                            flag(format!(
                                "Materialized site {site} for direct-escape reason \
                                 `{}` but the static analysis proves NoEscape",
                                reason.as_str()
                            ));
                        }
                    }
                }
            }
            TraceEvent::LockElided { site, exit, .. } => {
                let entry = sites.entry(*site).or_default();
                if *exit {
                    entry.elided_exits += 1;
                } else {
                    entry.elided_enters += 1;
                }
                match lookup(program, verdicts, graph, *site) {
                    Err(why) => flag(format!("LockElided site {site}: {why}")),
                    Ok(verdict) => {
                        if !verdict.may_be_locked {
                            flag(format!(
                                "LockElided site {site}: the static analysis proves the \
                                 object is never a monitor operand"
                            ));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    for (site, ev) in &sites {
        if ev.elided_enters != ev.elided_exits && !ev.materialized {
            flag(format!(
                "site {site}: {} elided monitorenter vs {} elided monitorexit \
                 without a materialization to absorb the difference",
                ev.elided_enters, ev.elided_exits
            ));
        }
    }

    // ---- flow/insensitive coherence checks ----
    // The flow tier refines the insensitive verdicts; it must never be
    // *more* pessimistic where the insensitive analysis proved NoEscape,
    // and a certain-escape certificate is only meaningful on a
    // GlobalEscape site (flow ⊆ flow-insensitive, by construction).
    for (_, method, bci) in graph.provenance_entries() {
        if let Some(v) = verdicts.verdict(method, bci) {
            if v.escape == EscapeClass::NoEscape && v.path != PathEscape::NoEscape {
                flag(format!(
                    "site {}:{bci}: insensitive NoEscape but flow path verdict `{}`",
                    program.method(method).qualified_name(program),
                    v.path.as_str()
                ));
            }
            if v.certain_global && v.escape != EscapeClass::GlobalEscape {
                flag(format!(
                    "site {}:{bci}: certain-escape certificate on a {} site",
                    program.method(method).qualified_name(program),
                    v.escape.as_str()
                ));
            }
        }
    }

    // ---- frame-state closure checks ----
    // A depth bound for virtual-object lock counts holds only when *every*
    // allocation in the graph has a bounded verdict.
    let mut vom_depth_bound: Option<u32> = Some(0);
    for (_, method, bci) in graph.provenance_entries() {
        match verdicts
            .verdict(method, bci)
            .and_then(|v| v.lock_depth_bound)
        {
            Some(bound) => {
                vom_depth_bound = vom_depth_bound.map(|b| b.max(bound));
            }
            None => vom_depth_bound = None,
        }
    }

    for id in graph.live_nodes() {
        let node = graph.node(id);
        match &node.kind {
            NodeKind::FrameState(data) => {
                if node.inputs().len() != data.input_count() {
                    flag(format!(
                        "frame state {id}: {} inputs but layout wants {}",
                        node.inputs().len(),
                        data.input_count()
                    ));
                    continue;
                }
                if data.lock_from_sync.len() != data.n_locks as usize {
                    flag(format!(
                        "frame state {id}: lock_from_sync length {} != n_locks {}",
                        data.lock_from_sync.len(),
                        data.n_locks
                    ));
                }
                for &input in node.inputs() {
                    if graph.node(input).is_deleted() {
                        flag(format!(
                            "frame state {id}: references deleted node {input} — \
                             rematerialization info is not closed"
                        ));
                    }
                }
                if let Some(outer_index) = data.outer_index() {
                    let outer = node.inputs()[outer_index];
                    if !matches!(graph.kind(outer), NodeKind::FrameState(_)) {
                        flag(format!(
                            "frame state {id}: outer slot holds {} instead of a frame state",
                            graph.kind(outer).mnemonic()
                        ));
                    }
                }
                for &lock in &node.inputs()[data.locks_range()] {
                    if let NodeKind::VirtualObjectMapping { lock_count, .. } = graph.kind(lock) {
                        if *lock_count == 0 {
                            flag(format!(
                                "frame state {id}: virtual object {lock} sits in a lock \
                                 slot but records lock_count 0"
                            ));
                        }
                    }
                }
            }
            NodeKind::VirtualObjectMapping { shape, lock_count } => {
                let want = match shape {
                    AllocShape::Instance { class } => program.instance_fields(*class).len(),
                    AllocShape::Array { length, .. } => *length as usize,
                };
                if node.inputs().len() != want {
                    flag(format!(
                        "virtual object {id}: {} field values for a {} slot shape",
                        node.inputs().len(),
                        want
                    ));
                }
                for &input in node.inputs() {
                    if graph.node(input).is_deleted() {
                        flag(format!(
                            "virtual object {id}: field value {input} is deleted"
                        ));
                    }
                }
                if let Some(bound) = vom_depth_bound {
                    if *lock_count > bound {
                        flag(format!(
                            "virtual object {id}: lock_count {lock_count} exceeds the \
                             static lock-balance bound {bound}"
                        ));
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Resolves a traced site id (the original allocation's node id) to its
/// static verdict via the graph's provenance table.
fn lookup<'v>(
    program: &Program,
    verdicts: &'v StaticVerdicts,
    graph: &Graph,
    site: u32,
) -> Result<&'v SiteVerdict, String> {
    let (method, bci) = graph
        .provenance(NodeId(site))
        .ok_or_else(|| "no bytecode provenance recorded".to_string())?;
    verdicts.verdict(method, bci).ok_or_else(|| {
        format!(
            "no allocation at {}:{bci} per the static analysis",
            program.method(method).qualified_name(program)
        )
    })
}

fn shape_matches(program: &Program, kind: AllocKind, shape: &str) -> bool {
    match kind {
        AllocKind::Instance(class) => program.class(class).name == shape,
        // Traced array shapes read `int[3]`; the static side does not know
        // the length, so compare the element kind prefix.
        AllocKind::Array(kind) => shape.starts_with(&format!("{kind}[")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pea_bytecode::asm::parse_program;

    fn verdicts_for(src: &str) -> (Program, StaticVerdicts) {
        let program = parse_program(src).unwrap();
        pea_bytecode::verify_program(&program).unwrap();
        let v = StaticVerdicts::analyze(&program);
        (program, v)
    }

    const CACHE: &str = "
        class Key { field idx int field ref ref }
        static cacheKey ref
        static cacheValue int
        method virtual Key.equals 2 returns { const 1 retv }
        method getValue 1 returns {
            new Key store 1
            load 1 load 0 putfield Key.idx
            load 1 getstatic cacheKey invokevirtual Key.equals
            const 0 ifcmp eq Lmiss
            getstatic cacheValue retv
        Lmiss:
            load 1 putstatic cacheKey
            load 0 const 13 mul putstatic cacheValue
            getstatic cacheValue retv
        }";

    #[test]
    fn verdicts_cover_every_allocation() {
        let (program, v) = verdicts_for(CACHE);
        assert_eq!(v.len(), 1);
        let m = program.static_method_by_name("getValue").unwrap();
        let verdict = v.verdict(m, 0).unwrap();
        assert_eq!(verdict.escape, EscapeClass::GlobalEscape);
        assert!(verdict.may_be_locked, "receiver of an invokevirtual");
        assert_eq!(verdict.lock_depth_bound, None);
    }

    #[test]
    fn verdicts_carry_path_qualification() {
        let (program, v) = verdicts_for(
            "class Err { field code int }
             class Box { field v int }
             method m 1 {
                load 0 const 0 ifcmp eq Ldone
                new Err athrow
             Ldone: ret
             }
             method n 1 returns {
                new Box store 1
                load 1 load 0 putfield Box.v
                load 1 getfield Box.v retv
             }",
        );
        let m = program.static_method_by_name("m").unwrap();
        let thrown = v.verdict(m, 3).unwrap();
        assert_eq!(thrown.escape, EscapeClass::GlobalEscape);
        assert_eq!(thrown.path, PathEscape::EscapesOnThrowPathOnly);
        let n = program.static_method_by_name("n").unwrap();
        let local = v.verdict(n, 0).unwrap();
        assert_eq!(local.escape, EscapeClass::NoEscape);
        assert_eq!(local.path, PathEscape::NoEscape);
        assert!(!local.certain_global);
    }

    #[test]
    fn phantom_lock_elision_is_flagged() {
        // A site that is provably never locked: LockElided on it must be
        // reported as an inconsistency.
        let (program, v) = verdicts_for(
            "class Box { field v int }
             method m 1 returns {
                new Box store 1
                load 1 load 0 putfield Box.v
                load 1 getfield Box.v retv
             }",
        );
        let m = program.static_method_by_name("m").unwrap();
        let mut graph = Graph::new();
        // Fake an allocation node with provenance at bci 0.
        let alloc = graph.add(
            NodeKind::New {
                class: pea_bytecode::ClassId::from_index(0),
            },
            vec![],
        );
        graph.set_provenance(alloc, m, 0);
        let events = vec![TraceEvent::LockElided {
            site: alloc.index() as u32,
            node: 99,
            exit: false,
        }];
        let found = check_compilation(&program, &v, m, &graph, &events);
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found[0].detail.contains("never a monitor operand"));
        assert!(found[1].detail.contains("elided monitorenter"));
    }

    #[test]
    fn unbalanced_elision_needs_materialization() {
        let (program, v) = verdicts_for(
            "class Box { field v int }
             method m 1 returns {
                new Box store 1
                load 1 monitorenter
                load 1 monitorexit
                load 1 getfield Box.v retv
             }",
        );
        let m = program.static_method_by_name("m").unwrap();
        let mut graph = Graph::new();
        let alloc = graph.add(
            NodeKind::New {
                class: pea_bytecode::ClassId::from_index(0),
            },
            vec![],
        );
        graph.set_provenance(alloc, m, 0);
        let site = alloc.index() as u32;
        let unbalanced = vec![TraceEvent::LockElided {
            site,
            node: 7,
            exit: false,
        }];
        let found = check_compilation(&program, &v, m, &graph, &unbalanced);
        assert!(
            found
                .iter()
                .any(|i| i.detail.contains("without a materialization")),
            "{found:?}"
        );
        // With a materialization between enter and exit the imbalance is
        // legitimate (§5.2: the later exit became a real operation).
        let absorbed = vec![
            TraceEvent::LockElided {
                site,
                node: 7,
                exit: false,
            },
            TraceEvent::Materialized {
                site,
                anchor: 8,
                block: 1,
                reason: MaterializeReason::EscapeToStore,
            },
        ];
        let found = check_compilation(&program, &v, m, &graph, &absorbed);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn no_escape_site_cannot_escape_directly() {
        let (program, v) = verdicts_for(
            "class Box { field v int }
             method m 1 returns {
                new Box store 1
                load 1 load 0 putfield Box.v
                load 1 getfield Box.v retv
             }",
        );
        let m = program.static_method_by_name("m").unwrap();
        let mut graph = Graph::new();
        let alloc = graph.add(
            NodeKind::New {
                class: pea_bytecode::ClassId::from_index(0),
            },
            vec![],
        );
        graph.set_provenance(alloc, m, 0);
        let events = vec![TraceEvent::Materialized {
            site: alloc.index() as u32,
            anchor: 9,
            block: 2,
            reason: MaterializeReason::ReturnValue,
        }];
        let found = check_compilation(&program, &v, m, &graph, &events);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].detail.contains("NoEscape"));
        // A store-driven materialization is NOT flagged: the container's
        // dynamic state decides those, which the static pass cannot see.
        let store = vec![TraceEvent::Materialized {
            site: alloc.index() as u32,
            anchor: 9,
            block: 2,
            reason: MaterializeReason::EscapeToStore,
        }];
        assert!(check_compilation(&program, &v, m, &graph, &store).is_empty());
    }

    #[test]
    fn thrown_escape_on_no_escape_site_is_flagged() {
        // A NoEscape proof means the object can never reach an `Unwind`
        // exit: a thrown-escape materialization on it is a compiler bug.
        let (program, v) = verdicts_for(
            "class Box { field v int }
             method m 1 returns {
                new Box store 1
                load 1 load 0 putfield Box.v
                load 1 getfield Box.v retv
             }",
        );
        let m = program.static_method_by_name("m").unwrap();
        let mut graph = Graph::new();
        let alloc = graph.add(
            NodeKind::New {
                class: pea_bytecode::ClassId::from_index(0),
            },
            vec![],
        );
        graph.set_provenance(alloc, m, 0);
        let events = vec![TraceEvent::Materialized {
            site: alloc.index() as u32,
            anchor: 9,
            block: 2,
            reason: MaterializeReason::ThrownEscape,
        }];
        let found = check_compilation(&program, &v, m, &graph, &events);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].detail.contains("thrown-escape"), "{found:?}");
    }

    #[test]
    fn thrown_escape_on_thrown_site_is_clean() {
        // The pre-analysis raises `athrow` operands, so a genuinely thrown
        // site is GlobalEscape and its thrown-escape materialization passes.
        let (program, v) = verdicts_for(
            "class Err { field code int }
             method m 1 {
                load 0 const 0 ifcmp eq Ldone
                new Err athrow
             Ldone: ret
             }",
        );
        let m = program.static_method_by_name("m").unwrap();
        assert_eq!(
            v.verdict(m, 3).unwrap().escape,
            EscapeClass::GlobalEscape,
            "thrown site must not be NoEscape"
        );
        let mut graph = Graph::new();
        let alloc = graph.add(
            NodeKind::New {
                class: pea_bytecode::ClassId::from_index(0),
            },
            vec![],
        );
        graph.set_provenance(alloc, m, 3);
        let events = vec![TraceEvent::Materialized {
            site: alloc.index() as u32,
            anchor: 4,
            block: 1,
            reason: MaterializeReason::ThrownEscape,
        }];
        assert!(check_compilation(&program, &v, m, &graph, &events).is_empty());
    }

    #[test]
    fn missing_provenance_is_flagged() {
        let (program, v) = verdicts_for(CACHE);
        let m = program.static_method_by_name("getValue").unwrap();
        let graph = Graph::new();
        let events = vec![TraceEvent::Virtualized {
            site: 42,
            shape: "Key".into(),
        }];
        let found = check_compilation(&program, &v, m, &graph, &events);
        assert_eq!(found.len(), 1);
        assert!(found[0].detail.contains("no bytecode provenance"));
    }

    #[test]
    fn frame_state_closure_violations_detected() {
        let (program, v) = verdicts_for(CACHE);
        let m = program.static_method_by_name("getValue").unwrap();
        let mut graph = Graph::new();
        let value = graph.const_int(3);
        // A virtual Key mapping with only one of its two field values.
        let vom = graph.add(
            NodeKind::VirtualObjectMapping {
                shape: AllocShape::Instance {
                    class: pea_bytecode::ClassId::from_index(0),
                },
                lock_count: 0,
            },
            vec![value],
        );
        let found = check_compilation(&program, &v, m, &graph, &[]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].detail.contains("field values"), "{found:?}");
        let _ = vom;
    }
}
