//! Definite-assignment and null-ness analysis.
//!
//! A forward pass over the [`crate::dataflow`] framework tracking, per
//! local and stack slot, a small may-lattice: *unassigned*, *null*,
//! *non-null-or-int* (joins are bit-ORs). It reports
//!
//! * locals read before any store reaches them (the bytecode verifier
//!   deliberately allows this — defaults are well-defined — but it is
//!   almost always a workload-authoring bug),
//! * dereferences whose receiver is provably `null`, and
//! * a count of *maybe*-null dereferences (sites PEA must keep a null
//!   check for).

use crate::dataflow::{solve_forward, EdgeKind, ForwardAnalysis};
use pea_bytecode::{Insn, Method, MethodId, Program};
use std::collections::BTreeSet;

const UNASSIGNED: u8 = 1;
const NULL: u8 = 2;
const NONNULL: u8 = 4;

/// A located definite finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct NullFinding {
    pub bci: u32,
    pub kind: NullFindingKind,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum NullFindingKind {
    /// `load n` may execute before any `store n`.
    ReadBeforeStore { local: u16 },
    /// The dereferenced receiver can only be `null` here.
    DefiniteNullDeref,
}

impl NullFindingKind {
    pub fn as_str(self) -> &'static str {
        match self {
            NullFindingKind::ReadBeforeStore { .. } => "read-before-store",
            NullFindingKind::DefiniteNullDeref => "definite-null-deref",
        }
    }
}

/// Result of [`analyze_nullness`] for one method.
#[derive(Clone, Debug)]
pub struct NullnessSummary {
    pub method: MethodId,
    pub findings: Vec<NullFinding>,
    /// Distinct dereference sites whose receiver *may* be null — each one
    /// needs a residual null check unless PEA folds it.
    pub maybe_null_derefs: usize,
}

#[derive(Clone, PartialEq, Eq)]
struct NullFrame {
    locals: Vec<u8>,
    stack: Vec<u8>,
}

struct NullFlow {
    findings: BTreeSet<NullFinding>,
    maybe_null: BTreeSet<u32>,
}

impl NullFlow {
    fn deref(&mut self, bci: usize, receiver: u8) {
        if receiver & (NULL | UNASSIGNED) == 0 {
            return;
        }
        if receiver & NONNULL == 0 {
            self.findings.insert(NullFinding {
                bci: bci as u32,
                kind: NullFindingKind::DefiniteNullDeref,
            });
        } else {
            self.maybe_null.insert(bci as u32);
        }
    }
}

impl ForwardAnalysis for NullFlow {
    type State = NullFrame;

    fn boundary(&mut self, _program: &Program, method: &Method) -> NullFrame {
        let mut locals = vec![UNASSIGNED; method.max_locals as usize];
        for (i, slot) in locals
            .iter_mut()
            .enumerate()
            .take(method.param_count as usize)
        {
            // The receiver of an instance method is null-checked by the VM
            // at dispatch; other parameters may be anything.
            *slot = if i == 0 && !method.is_static {
                NONNULL
            } else {
                NULL | NONNULL
            };
        }
        NullFrame {
            locals,
            stack: Vec::new(),
        }
    }

    fn handler_boundary(&mut self, _program: &Program, method: &Method) -> Option<NullFrame> {
        // Handler code must be analyzed too (it dereferences the caught
        // exception and whatever locals the try block left behind). Locals
        // are assumed assigned-to-anything — the unwound path may have
        // skipped stores, so claiming UNASSIGNED here would fabricate
        // read-before-store findings on perfectly normal catch blocks. The
        // caught exception on the stack is always a real object.
        Some(NullFrame {
            locals: vec![NULL | NONNULL; method.max_locals as usize],
            stack: vec![NONNULL],
        })
    }

    fn join(a: &mut NullFrame, b: &NullFrame) -> bool {
        let mut changed = false;
        for (x, y) in a.locals.iter_mut().zip(&b.locals) {
            let next = *x | y;
            changed |= next != *x;
            *x = next;
        }
        for (x, y) in a.stack.iter_mut().zip(&b.stack) {
            let next = *x | y;
            changed |= next != *x;
            *x = next;
        }
        changed
    }

    fn transfer(
        &mut self,
        program: &Program,
        _method: &Method,
        bci: usize,
        insn: Insn,
        state: &mut NullFrame,
    ) {
        let any = NULL | NONNULL;
        match insn {
            Insn::Load(n) => {
                let v = state.locals[n as usize];
                if v & UNASSIGNED != 0 {
                    self.findings.insert(NullFinding {
                        bci: bci as u32,
                        kind: NullFindingKind::ReadBeforeStore { local: n },
                    });
                }
                // Unassigned locals read as well-defined defaults (0/null).
                let loaded = if v & UNASSIGNED != 0 {
                    (v & !UNASSIGNED) | NULL | NONNULL
                } else {
                    v
                };
                state.stack.push(loaded);
            }
            Insn::Store(n) => {
                let v = state.stack.pop().expect("verified stack");
                state.locals[n as usize] = v;
            }
            Insn::Const(_) => state.stack.push(NONNULL),
            Insn::ConstNull => state.stack.push(NULL),
            Insn::New(_) => state.stack.push(NONNULL),
            Insn::NewArray(_) => {
                state.stack.pop();
                state.stack.push(NONNULL);
            }
            Insn::Dup => {
                let top = *state.stack.last().expect("verified stack");
                state.stack.push(top);
            }
            Insn::Swap => {
                let n = state.stack.len();
                state.stack.swap(n - 1, n - 2);
            }
            Insn::GetField(_) => {
                let obj = state.stack.pop().expect("verified stack");
                self.deref(bci, obj);
                state.stack.push(any);
            }
            Insn::PutField(_) => {
                state.stack.pop();
                let obj = state.stack.pop().expect("verified stack");
                self.deref(bci, obj);
            }
            Insn::ArrayLoad => {
                state.stack.pop();
                let arr = state.stack.pop().expect("verified stack");
                self.deref(bci, arr);
                state.stack.push(any);
            }
            Insn::ArrayStore => {
                state.stack.pop();
                state.stack.pop();
                let arr = state.stack.pop().expect("verified stack");
                self.deref(bci, arr);
            }
            Insn::ArrayLength => {
                let arr = state.stack.pop().expect("verified stack");
                self.deref(bci, arr);
                state.stack.push(NONNULL);
            }
            Insn::MonitorEnter | Insn::MonitorExit => {
                let obj = state.stack.pop().expect("verified stack");
                self.deref(bci, obj);
            }
            Insn::GetStatic(_) => state.stack.push(any),
            Insn::CheckCast(_) => {} // a null reference passes any cast
            Insn::InstanceOf(_) => {
                state.stack.pop();
                state.stack.push(NONNULL);
            }
            Insn::InvokeStatic(target) | Insn::InvokeVirtual(target) => {
                let callee = program.method(target);
                let argc = callee.param_count as usize;
                if matches!(insn, Insn::InvokeVirtual(_)) {
                    let receiver = state.stack[state.stack.len() - argc];
                    self.deref(bci, receiver);
                }
                for _ in 0..argc {
                    state.stack.pop();
                }
                if callee.returns_value {
                    state.stack.push(any);
                }
            }
            other => {
                for _ in 0..other.pops() {
                    state.stack.pop().expect("verified stack");
                }
                for _ in 0..other.pushes() {
                    state.stack.push(NONNULL);
                }
            }
        }
    }

    fn refine_edge(
        &mut self,
        _program: &Program,
        method: &Method,
        bci: usize,
        insn: Insn,
        edge: EdgeKind,
        _target: usize,
        state: &mut NullFrame,
    ) -> bool {
        // `load n; ifnull L` pins local `n`'s null-ness per outgoing edge:
        // the taken side sees the local definitely null, the fall-through
        // definitely non-null, and a side the incoming facts already rule
        // out is skipped as infeasible. Only the immediately-preceding
        // load is recognized — nothing can re-store the local between it
        // and the branch, so the local still holds the tested value.
        if !matches!(insn, Insn::IfNull(_)) || bci == 0 {
            return true;
        }
        let Some(&Insn::Load(n)) = method.code.get(bci - 1) else {
            return true;
        };
        let v = state.locals[n as usize];
        if v & UNASSIGNED != 0 {
            // An unassigned local reads as a well-defined default; keep
            // the bit so later reads still report read-before-store.
            return true;
        }
        let refined = match edge {
            EdgeKind::Taken => v & !NONNULL,
            EdgeKind::FallThrough => v & !NULL,
        };
        if refined == 0 {
            return false;
        }
        state.locals[n as usize] = refined;
        true
    }
}

/// Runs the definite-assignment/null-ness analysis over one (verified)
/// method.
pub fn analyze_nullness(program: &Program, method_id: MethodId) -> NullnessSummary {
    let mut flow = NullFlow {
        findings: BTreeSet::new(),
        maybe_null: BTreeSet::new(),
    };
    solve_forward(program, program.method(method_id), &mut flow);
    NullnessSummary {
        method: method_id,
        findings: flow.findings.into_iter().collect(),
        maybe_null_derefs: flow.maybe_null.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pea_bytecode::asm::parse_program;

    fn nullness(src: &str, method: &str) -> NullnessSummary {
        let program = parse_program(src).unwrap();
        pea_bytecode::verify_program(&program).unwrap();
        let id = (0..program.methods.len())
            .map(MethodId::from_index)
            .find(|&m| program.method(m).name == method)
            .unwrap();
        analyze_nullness(&program, id)
    }

    #[test]
    fn read_before_any_store_flagged() {
        let s = nullness("method m 1 returns { load 1 retv }", "m");
        assert_eq!(s.findings.len(), 1);
        assert_eq!(
            s.findings[0].kind,
            NullFindingKind::ReadBeforeStore { local: 1 }
        );
    }

    #[test]
    fn stored_local_is_clean() {
        let s = nullness("method m 1 returns { load 0 store 1 load 1 retv }", "m");
        assert!(s.findings.is_empty(), "{:?}", s.findings);
    }

    #[test]
    fn store_on_only_one_path_still_flagged() {
        let s = nullness(
            "method m 1 returns {
                load 0 const 0 ifcmp eq Lskip
                const 7 store 1
             Lskip:
                load 1 retv
             }",
            "m",
        );
        assert!(s
            .findings
            .iter()
            .any(|f| f.kind == NullFindingKind::ReadBeforeStore { local: 1 }));
    }

    #[test]
    fn definite_null_deref_flagged() {
        let s = nullness(
            "class Box { field v int }
             method m 0 returns { cnull getfield Box.v retv }",
            "m",
        );
        assert_eq!(s.findings[0].kind, NullFindingKind::DefiniteNullDeref);
    }

    #[test]
    fn fresh_object_deref_is_clean() {
        let s = nullness(
            "class Box { field v int }
             method m 1 returns {
                new Box store 1
                load 1 load 0 putfield Box.v
                load 1 getfield Box.v retv
             }",
            "m",
        );
        assert!(s.findings.is_empty(), "{:?}", s.findings);
        assert_eq!(s.maybe_null_derefs, 0);
    }

    #[test]
    fn parameter_deref_is_maybe_null_not_definite() {
        let s = nullness(
            "class Box { field v int }
             method m 1 returns { load 0 checkcast Box getfield Box.v retv }",
            "m",
        );
        assert!(s.findings.is_empty());
        assert_eq!(s.maybe_null_derefs, 1);
    }

    #[test]
    fn ifnull_fall_through_proves_non_null() {
        // The guarded deref needs no residual null check: the fall-through
        // edge of `load 0 ifnull` pins local 0 non-null.
        let s = nullness(
            "class Box { field v int }
             method m 1 returns {
                load 0 ifnull Lnull
                load 0 checkcast Box getfield Box.v retv
             Lnull:
                const 0 retv
             }",
            "m",
        );
        assert!(s.findings.is_empty(), "{:?}", s.findings);
        assert_eq!(s.maybe_null_derefs, 0);
    }

    #[test]
    fn ifnull_taken_side_makes_deref_definitely_null() {
        let s = nullness(
            "class Box { field v int }
             method m 1 returns {
                load 0 ifnull Lnull
                const 0 retv
             Lnull:
                load 0 checkcast Box getfield Box.v retv
             }",
            "m",
        );
        assert_eq!(s.findings.len(), 1);
        assert_eq!(s.findings[0].kind, NullFindingKind::DefiniteNullDeref);
    }

    #[test]
    fn ifnull_on_fresh_object_skips_the_infeasible_edge() {
        // Local 1 is definitely non-null, so the taken edge is infeasible
        // and the definitely-null deref behind it is never reachable.
        let s = nullness(
            "class Box { field v int }
             method m 1 returns {
                new Box store 1
                load 1 ifnull Ldead
                const 0 retv
             Ldead:
                cnull getfield Box.v retv
             }",
            "m",
        );
        assert!(s.findings.is_empty(), "{:?}", s.findings);
    }

    #[test]
    fn catch_handler_code_is_analyzed_without_false_positives() {
        // The handler dereferences the caught exception (always non-null)
        // and a local the try block may or may not have stored: neither is
        // a finding, but the definitely-null deref after it still is.
        let s = nullness(
            "class Err { field code int }
             method m 1 returns {
                try Ls Le Lh Err
             Ls:
                load 0 const 0 ifcmp eq Ld
                new Err athrow
             Le:
             Ld: const 0 retv
             Lh:
                getfield Err.code
                store 1
                cnull getfield Err.code retv
             }",
            "m",
        );
        assert_eq!(s.findings.len(), 1, "{:?}", s.findings);
        assert_eq!(s.findings[0].kind, NullFindingKind::DefiniteNullDeref);
    }

    #[test]
    fn receiver_of_instance_method_is_nonnull() {
        let s = nullness(
            "class Box { field v int }
             method virtual Box.get 1 returns { load 0 getfield Box.v retv }",
            "get",
        );
        assert!(s.findings.is_empty());
        assert_eq!(s.maybe_null_derefs, 0);
    }
}
