//! Lock-balance analysis: proves `monitorenter`/`monitorexit` pairing and
//! bounds the simultaneous lock depth per allocation site.
//!
//! The bytecode verifier only checks stack heights; structured locking is
//! *assumed* by the graph builder (which bails out with
//! `UnstructuredLocking` when its block-local lock stack goes wrong) and by
//! the paper's lock-elision rules, which remove enter/exit *pairs* on
//! virtual objects (§5.2). This analysis provides the missing whole-method
//! proof: a forward dataflow pass tracks an abstract stack of lock operands
//! (as source sets, like [`crate::escape`]) and reports every way the
//! pairing can break — an exit with no enter, provably mismatched
//! enter/exit operands, locks still held at a return, or join points where
//! two paths disagree on the lock depth.

use crate::dataflow::{solve_forward, BitSet, ForwardAnalysis};
use crate::escape::alloc_sites;
use pea_bytecode::{Insn, Method, MethodId, Program};
use std::collections::BTreeSet;

/// One way the monitor pairing can break, at a bytecode index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockFindingKind {
    /// `monitorexit` with an empty abstract lock stack.
    ExitWithoutEnter,
    /// The exited object provably differs from the innermost held lock.
    MismatchedExit,
    /// A return is reachable with monitors still held (beyond the
    /// synchronized-method frame lock, which the VM releases itself).
    UnreleasedAtReturn,
    /// Two paths reach the same instruction with different lock depths.
    InconsistentDepthAtJoin,
}

impl LockFindingKind {
    pub fn as_str(self) -> &'static str {
        match self {
            LockFindingKind::ExitWithoutEnter => "exit-without-enter",
            LockFindingKind::MismatchedExit => "mismatched-exit",
            LockFindingKind::UnreleasedAtReturn => "unreleased-at-return",
            LockFindingKind::InconsistentDepthAtJoin => "inconsistent-depth-at-join",
        }
    }
}

/// A located lock-balance violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockFinding {
    pub bci: u32,
    pub kind: LockFindingKind,
}

/// Result of [`analyze_locks`] for one method.
#[derive(Clone, Debug)]
pub struct LockSummary {
    pub method: MethodId,
    pub findings: Vec<LockFinding>,
    /// Upper bound on the simultaneous lock depth per allocation site of
    /// this method, aligned with [`crate::escape::alloc_sites`] order.
    pub max_depth: Vec<u32>,
}

impl LockSummary {
    /// The pairing is provably structured.
    pub fn balanced(&self) -> bool {
        self.findings.is_empty()
    }

    /// Largest per-site depth bound (0 when the method locks nothing it
    /// allocates).
    pub fn max_site_depth(&self) -> u32 {
        self.max_depth.iter().copied().max().unwrap_or(0)
    }
}

#[derive(Clone, PartialEq, Eq)]
struct LockFrame {
    locals: Vec<BitSet>,
    stack: Vec<BitSet>,
    /// Innermost lock last; each entry is the operand's source set.
    locks: Vec<BitSet>,
    /// A join merged unequal depths; suppress downstream findings.
    broken: bool,
}

struct LockFlow {
    site_bcis: Vec<u32>,
    n_sites: usize,
    n_params: usize,
    findings: BTreeSet<LockFinding>,
    max_depth: Vec<u32>,
}

impl LockFlow {
    fn n_sources(&self) -> usize {
        self.n_sites + self.n_params + 1
    }

    fn unknown_bit(&self) -> usize {
        self.n_sources() - 1
    }

    fn empty(&self) -> BitSet {
        BitSet::new(self.n_sources())
    }

    fn unknown(&self) -> BitSet {
        let mut s = self.empty();
        s.insert(self.unknown_bit());
        s
    }

    fn record(&mut self, bci: usize, kind: LockFindingKind) {
        self.findings.insert(LockFinding {
            bci: bci as u32,
            kind,
        });
    }
}

impl ForwardAnalysis for LockFlow {
    type State = LockFrame;

    fn boundary(&mut self, _program: &Program, method: &Method) -> LockFrame {
        let mut locals = vec![self.empty(); method.max_locals as usize];
        for (p, slot) in locals.iter_mut().enumerate().take(self.n_params) {
            slot.insert(self.n_sites + p);
        }
        LockFrame {
            locals,
            stack: Vec::new(),
            // The VM acquires the receiver lock for synchronized methods;
            // model it so nested explicit locking is counted on top of it.
            locks: if method.is_synchronized {
                let mut receiver = self.empty();
                receiver.insert(self.n_sites);
                vec![receiver]
            } else {
                Vec::new()
            },
            broken: false,
        }
    }

    fn join(a: &mut LockFrame, b: &LockFrame) -> bool {
        let mut changed = false;
        for (x, y) in a.locals.iter_mut().zip(&b.locals) {
            changed |= x.union_with(y);
        }
        for (x, y) in a.stack.iter_mut().zip(&b.stack) {
            changed |= x.union_with(y);
        }
        if a.locks.len() != b.locks.len() {
            if !a.broken {
                a.broken = true;
                changed = true;
            }
            a.locks.truncate(b.locks.len().min(a.locks.len()));
        } else {
            for (x, y) in a.locks.iter_mut().zip(&b.locks) {
                changed |= x.union_with(y);
            }
        }
        if b.broken && !a.broken {
            a.broken = true;
            changed = true;
        }
        changed
    }

    fn transfer(
        &mut self,
        program: &Program,
        method: &Method,
        bci: usize,
        insn: Insn,
        state: &mut LockFrame,
    ) {
        match insn {
            Insn::Load(n) => state.stack.push(state.locals[n as usize].clone()),
            Insn::Store(n) => {
                let v = state.stack.pop().expect("verified stack");
                state.locals[n as usize] = v;
            }
            Insn::New(_) | Insn::NewArray(_) => {
                if matches!(insn, Insn::NewArray(_)) {
                    state.stack.pop();
                }
                let site = self
                    .site_bcis
                    .iter()
                    .position(|&b| b == bci as u32)
                    .expect("every allocation is a site");
                let mut s = self.empty();
                s.insert(site);
                state.stack.push(s);
            }
            Insn::Dup => {
                let top = state.stack.last().expect("verified stack").clone();
                state.stack.push(top);
            }
            Insn::Swap => {
                let n = state.stack.len();
                state.stack.swap(n - 1, n - 2);
            }
            Insn::CheckCast(_) => {}
            Insn::GetField(_) => {
                state.stack.pop();
                state.stack.push(self.unknown());
            }
            Insn::ArrayLoad => {
                state.stack.pop();
                state.stack.pop();
                state.stack.push(self.unknown());
            }
            Insn::GetStatic(_) => state.stack.push(self.unknown()),
            Insn::MonitorEnter => {
                let obj = state.stack.pop().expect("verified stack");
                state.locks.push(obj);
                if !state.broken {
                    for site in state.locks.last().expect("just pushed").clone().iter() {
                        if site < self.n_sites {
                            let depth =
                                state.locks.iter().filter(|l| l.contains(site)).count() as u32;
                            self.max_depth[site] = self.max_depth[site].max(depth);
                        }
                    }
                }
            }
            Insn::MonitorExit => {
                let obj = state.stack.pop().expect("verified stack");
                match state.locks.pop() {
                    None => {
                        if !state.broken {
                            self.record(bci, LockFindingKind::ExitWithoutEnter);
                            state.broken = true;
                        }
                    }
                    Some(top) => {
                        let provable = !obj.is_empty()
                            && !top.is_empty()
                            && !obj.contains(self.unknown_bit())
                            && !top.contains(self.unknown_bit());
                        if provable && !obj.intersects(&top) && !state.broken {
                            self.record(bci, LockFindingKind::MismatchedExit);
                        }
                    }
                }
            }
            Insn::InvokeStatic(target) | Insn::InvokeVirtual(target) => {
                let callee = program.method(target);
                for _ in 0..callee.param_count {
                    state.stack.pop();
                }
                if callee.returns_value {
                    state.stack.push(self.unknown());
                }
            }
            Insn::Return | Insn::ReturnValue => {
                if matches!(insn, Insn::ReturnValue) {
                    state.stack.pop();
                }
                let expected = usize::from(method.is_synchronized);
                if state.locks.len() != expected && !state.broken {
                    self.record(bci, LockFindingKind::UnreleasedAtReturn);
                }
            }
            Insn::Throw => {
                // Throw aborts the whole VM run in this machine; no unwind
                // releases to account for.
                state.stack.pop();
            }
            Insn::Athrow => {
                // A catchable throw. Which monitors are still held depends
                // on which handler (here or in a caller) catches it, and
                // well-formed try-finally regions release in the handler —
                // a path this per-bci lattice cannot follow, so holding
                // locks at an `athrow` is not reported as a finding.
                state.stack.pop();
            }
            other => {
                let empty = self.empty();
                for _ in 0..other.pops() {
                    state.stack.pop().expect("verified stack");
                }
                for _ in 0..other.pushes() {
                    state.stack.push(empty.clone());
                }
            }
        }
    }
}

/// Runs the lock-balance analysis over one (verified) method.
pub fn analyze_locks(program: &Program, method_id: MethodId) -> LockSummary {
    let method = program.method(method_id);
    let sites = alloc_sites(method);
    let n_sites = sites.len();
    let mut flow = LockFlow {
        site_bcis: sites.iter().map(|&(b, _)| b).collect(),
        n_sites,
        n_params: method.param_count as usize,
        findings: BTreeSet::new(),
        max_depth: vec![0; n_sites],
    };
    let states = solve_forward(program, method, &mut flow);
    if let Some(bci) = states
        .iter()
        .position(|s| s.as_ref().is_some_and(|s| s.broken))
    {
        flow.record(bci, LockFindingKind::InconsistentDepthAtJoin);
    }
    LockSummary {
        method: method_id,
        findings: flow.findings.into_iter().collect(),
        max_depth: flow.max_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pea_bytecode::asm::parse_program;

    fn locks(src: &str, method: &str) -> LockSummary {
        let program = parse_program(src).unwrap();
        pea_bytecode::verify_program(&program).unwrap();
        let id = (0..program.methods.len())
            .map(MethodId::from_index)
            .find(|&m| program.method(m).name == method)
            .unwrap();
        analyze_locks(&program, id)
    }

    const BOX: &str = "class Box { field v int }\n";

    #[test]
    fn balanced_pair_is_clean_with_depth_one() {
        let s = locks(
            &format!(
                "{BOX} method m 0 {{
                    new Box store 0
                    load 0 monitorenter
                    load 0 monitorexit
                    ret
                }}"
            ),
            "m",
        );
        assert!(s.balanced(), "{:?}", s.findings);
        assert_eq!(s.max_depth, vec![1]);
    }

    #[test]
    fn nested_relocking_bounds_depth_two() {
        let s = locks(
            &format!(
                "{BOX} method m 0 {{
                    new Box store 0
                    load 0 monitorenter
                    load 0 monitorenter
                    load 0 monitorexit
                    load 0 monitorexit
                    ret
                }}"
            ),
            "m",
        );
        assert!(s.balanced());
        assert_eq!(s.max_depth, vec![2]);
    }

    #[test]
    fn missing_exit_flagged_at_return() {
        let s = locks(
            &format!(
                "{BOX} method m 0 {{
                    new Box store 0
                    load 0 monitorenter
                    ret
                }}"
            ),
            "m",
        );
        assert_eq!(s.findings.len(), 1);
        assert_eq!(s.findings[0].kind, LockFindingKind::UnreleasedAtReturn);
    }

    #[test]
    fn exit_without_enter_flagged() {
        let s = locks(
            &format!("{BOX} method m 1 {{ load 0 monitorexit ret }}"),
            "m",
        );
        assert_eq!(s.findings[0].kind, LockFindingKind::ExitWithoutEnter);
    }

    #[test]
    fn provably_mismatched_exit_flagged() {
        let s = locks(
            &format!(
                "{BOX} method m 0 {{
                    new Box store 0
                    new Box store 1
                    load 0 monitorenter
                    load 1 monitorexit
                    ret
                }}"
            ),
            "m",
        );
        assert!(s
            .findings
            .iter()
            .any(|f| f.kind == LockFindingKind::MismatchedExit));
    }

    #[test]
    fn depth_disagreement_at_join_flagged() {
        let s = locks(
            &format!(
                "{BOX} method m 1 {{
                    new Box store 1
                    load 0 const 0 ifcmp eq Lskip
                    load 1 monitorenter
                Lskip:
                    load 1 monitorexit
                    ret
                }}"
            ),
            "m",
        );
        assert!(s
            .findings
            .iter()
            .any(|f| f.kind == LockFindingKind::InconsistentDepthAtJoin));
    }

    #[test]
    fn synchronized_method_frame_lock_is_expected() {
        let s = locks(
            "class C { field v int }
             method virtual C.m 1 returns synchronized {
                load 0 getfield C.v retv
             }",
            "m",
        );
        assert!(s.balanced(), "{:?}", s.findings);
    }

    #[test]
    fn try_finally_lock_region_is_clean() {
        // The canonical try-finally lowering: lock, protected body, exit on
        // both the normal path and the catch-all handler (which rethrows).
        // Neither the athrow nor the handler-side exit may produce
        // findings, and the depth bound still comes from the enter.
        let s = locks(
            &format!(
                "{BOX} class Err {{ }}
                 method m 1 {{
                    new Box store 1
                    load 1 monitorenter
                    try Ls Le Lh *
                 Ls:
                    load 0 const 0 ifcmp eq Le
                    new Err athrow
                 Le:
                    load 1 monitorexit
                    ret
                 Lh:
                    pop
                    load 1 monitorexit
                    ret
                 }}"
            ),
            "m",
        );
        assert!(s.balanced(), "{:?}", s.findings);
        assert_eq!(s.max_depth[0], 1);
    }

    #[test]
    fn lock_on_unknown_object_is_not_a_mismatch() {
        let s = locks(
            &format!(
                "{BOX} static g ref
                 method m 0 {{
                    getstatic g monitorenter
                    getstatic g monitorexit
                    ret
                }}"
            ),
            "m",
        );
        assert!(s.balanced(), "{:?}", s.findings);
        assert_eq!(s.max_site_depth(), 0);
    }
}
