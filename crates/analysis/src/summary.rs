//! Interprocedural escape summaries over a program call graph.
//!
//! The per-method pre-analysis in [`crate::escape`] must assume that any
//! object passed to a call escapes as an argument — it cannot see what the
//! callee does. This module closes that gap with the classic cheap
//! interprocedural recipe (Choi-style summaries, as revived by SkipFlow
//! and summary-based points-to work): build a closed-world call graph,
//! give every method a small reusable summary — the escape class each
//! *parameter* is forced to by the callee subtree, whether the method
//! *immediately publishes* a parameter to a static, and whether it returns
//! a fresh allocation — and iterate to a fixpoint with a worklist seeded
//! optimistically at `NoEscape`.
//!
//! Two consumers:
//!
//! * the `pea-pre-ipa` compiler pre-filter widens the "immediately
//!   published" site exclusion across call edges: an allocation whose very
//!   next instruction hands the fresh reference to a callee that provably
//!   publishes that parameter *before doing anything else* escapes
//!   globally in every calling context, exactly like a site followed by a
//!   direct `putstatic` (see [`ProgramSummaries::excluded_sites`]);
//! * the summary-driven inline policy asks whether a callee globally
//!   publishes an argument (inlining cannot save that allocation) or
//!   keeps it local (inlining exposes it to scalar replacement).
//!
//! Summaries depend only on bytecode, never on profiles, so a program's
//! summaries can be computed once and shared by every compilation (the VM
//! keeps them in a cache shared by both JIT modes).

use crate::escape::{
    alloc_sites, analyze_method_with, immediate_global_sites, AllocSite, CalleeOracle, EscapeClass,
};
use crate::flow::{analyze_method_flow, FlowSummary};
use pea_bytecode::{ClassId, Insn, MethodId, Program};
use std::collections::VecDeque;

/// A closed-world program call graph: static calls resolve to their
/// target, virtual calls to every implementation reachable by
/// class-hierarchy analysis (the same enumeration the graph builder uses
/// to devirtualize).
#[derive(Clone, Debug)]
pub struct CallGraph {
    /// Per caller: deduplicated possible concrete callees, sorted.
    callees: Vec<Vec<MethodId>>,
    /// Inverse edges: per method, the callers that may reach it.
    callers: Vec<Vec<MethodId>>,
    /// Per declared method: the concrete implementations a virtual call
    /// naming it may dispatch to.
    virtual_impls: Vec<Vec<MethodId>>,
}

impl CallGraph {
    /// Builds the call graph of a (verified) program.
    pub fn build(program: &Program) -> CallGraph {
        let n = program.methods.len();
        let mut virtual_impls: Vec<Vec<MethodId>> = vec![Vec::new(); n];
        for (t, target) in program.methods.iter().enumerate() {
            if target.is_static {
                continue;
            }
            let tid = MethodId::from_index(t);
            let mut impls: Vec<MethodId> = (0..program.classes.len())
                .filter_map(|c| program.resolve_virtual(ClassId::from_index(c), tid).ok())
                .collect();
            impls.sort_by_key(|m| m.index());
            impls.dedup();
            virtual_impls[t] = impls;
        }
        let mut callees: Vec<Vec<MethodId>> = vec![Vec::new(); n];
        for (m, method) in program.methods.iter().enumerate() {
            let mut out = Vec::new();
            for insn in &method.code {
                match insn {
                    Insn::InvokeStatic(t) => out.push(*t),
                    Insn::InvokeVirtual(t) => out.extend(&virtual_impls[t.index()]),
                    _ => {}
                }
            }
            out.sort_by_key(|m| m.index());
            out.dedup();
            callees[m] = out;
        }
        let mut callers: Vec<Vec<MethodId>> = vec![Vec::new(); n];
        for (m, outs) in callees.iter().enumerate() {
            for t in outs {
                callers[t.index()].push(MethodId::from_index(m));
            }
        }
        for ins in &mut callers {
            ins.sort_by_key(|m| m.index());
            ins.dedup();
        }
        CallGraph {
            callees,
            callers,
            virtual_impls,
        }
    }

    /// Possible concrete callees of `caller`, deduplicated.
    pub fn callees(&self, caller: MethodId) -> &[MethodId] {
        &self.callees[caller.index()]
    }

    /// Methods that may call `callee`, deduplicated.
    pub fn callers(&self, callee: MethodId) -> &[MethodId] {
        &self.callers[callee.index()]
    }

    /// Concrete methods a call naming `target` may reach: the target
    /// itself for static calls, the CHA implementation set for virtual
    /// ones.
    pub fn possible_targets(&self, target: MethodId, virtual_call: bool) -> Vec<MethodId> {
        if virtual_call {
            self.virtual_impls[target.index()].clone()
        } else {
            vec![target]
        }
    }

    /// Total number of call edges (caller → possible concrete callee).
    pub fn edge_count(&self) -> usize {
        self.callees.iter().map(Vec::len).sum()
    }
}

/// The reusable interprocedural summary of one method.
#[derive(Clone, Debug)]
pub struct MethodSummary {
    pub method: MethodId,
    /// Escape class forced on each parameter by this method and its
    /// transitive callees. `GlobalEscape` means calling the method may
    /// publish the argument to a static.
    pub param_escape: Vec<EscapeClass>,
    /// Parameter `p` is stored to a static before any other effect, on
    /// every path — directly (`load p; putstatic`) or by immediately
    /// forwarding it to a callee that does (transitively). Such a
    /// parameter escapes globally the moment the method is entered.
    pub publishes_immediately: Vec<bool>,
    /// The method returns one of its own allocation sites.
    pub returns_fresh: bool,
    /// An exception may be raised while this method is on the stack: it
    /// contains an `athrow` itself or can reach one through a callee.
    /// Syntactic over-approximation — a locally-caught throw still counts,
    /// matching the compiler's may-throw inlining gate.
    pub may_throw: bool,
    /// Some `athrow` in this method may throw one of the method's own
    /// allocation sites (see [`crate::escape::EscapeSummary::throws_fresh`]).
    /// Always implies [`MethodSummary::may_throw`] — pealint checks the
    /// implication as a summary invariant.
    pub throws_fresh: bool,
    /// Allocation-site verdicts refined with callee knowledge. Compared
    /// to [`crate::escape::analyze_method`] these can only be *upgraded*
    /// (to `GlobalEscape` where a callee publishes the argument) — the
    /// sanitizer keeps using the unrefined intraprocedural verdicts,
    /// because a refined `GlobalEscape` site may still legitimately stay
    /// virtual under flow-sensitive PEA until the residual call.
    pub sites: Vec<AllocSite>,
    /// The branch-aware layer: path-qualified site verdicts, the
    /// certain-escape exclusion bits, the path-qualified throw behaviour
    /// ([`crate::flow::ThrowPath`]) the inliner's cold-throw clearance
    /// consults, and per-parameter publishes-on-throw-path-only bits.
    /// Computed from the *intraprocedural* escape events (callee effects
    /// are call-site events, correctly attributed to the call bci).
    pub flow: FlowSummary,
}

/// Per-method summaries for a whole program, at fixpoint over the call
/// graph.
#[derive(Clone, Debug)]
pub struct ProgramSummaries {
    pub call_graph: CallGraph,
    methods: Vec<MethodSummary>,
    /// Worklist passes it took the parameter fixpoint to stabilize.
    pub iterations: usize,
}

/// Oracle over a (possibly still-converging) parameter-verdict table.
struct TableOracle<'a> {
    graph: &'a CallGraph,
    table: &'a [Vec<EscapeClass>],
}

impl CalleeOracle for TableOracle<'_> {
    fn call_arg_class(&self, target: MethodId, virtual_call: bool, idx: usize) -> EscapeClass {
        let mut class = EscapeClass::NoEscape;
        for t in self.graph.possible_targets(target, virtual_call) {
            class = class.max(
                self.table[t.index()]
                    .get(idx)
                    .copied()
                    .unwrap_or(EscapeClass::GlobalEscape),
            );
        }
        class
    }
}

impl ProgramSummaries {
    /// Computes summaries for every method of a (verified) program by
    /// worklist fixpoint: parameter verdicts start optimistically at
    /// `NoEscape` and are monotonically raised as the per-method flow is
    /// re-run with its callees' current verdicts; when a method's verdicts
    /// change, its callers are re-queued. Terminates because the lattice
    /// has height two per parameter.
    pub fn compute(program: &Program) -> ProgramSummaries {
        let graph = CallGraph::build(program);
        let n = program.methods.len();
        let mut table: Vec<Vec<EscapeClass>> = program
            .methods
            .iter()
            .map(|m| vec![EscapeClass::NoEscape; m.param_count as usize])
            .collect();
        let mut queue: VecDeque<usize> = (0..n).collect();
        let mut queued = vec![true; n];
        let mut iterations = 0usize;
        while let Some(mi) = queue.pop_front() {
            queued[mi] = false;
            iterations += 1;
            let oracle = TableOracle {
                graph: &graph,
                table: &table,
            };
            let summary = analyze_method_with(program, MethodId::from_index(mi), Some(&oracle));
            if summary.param_escape != table[mi] {
                table[mi] = summary.param_escape;
                for caller in graph.callers(MethodId::from_index(mi)) {
                    if !queued[caller.index()] {
                        queued[caller.index()] = true;
                        queue.push_back(caller.index());
                    }
                }
            }
        }
        let publishes = compute_immediate_publishes(program);
        let may_throw = compute_may_throw(program, &graph);
        let oracle = TableOracle {
            graph: &graph,
            table: &table,
        };
        let methods = (0..n)
            .map(|mi| {
                let id = MethodId::from_index(mi);
                let s = analyze_method_with(program, id, Some(&oracle));
                let flow = analyze_method_flow(program, id, &s, may_throw[mi], Some(&publishes));
                MethodSummary {
                    method: id,
                    param_escape: s.param_escape,
                    publishes_immediately: publishes[mi].clone(),
                    returns_fresh: s.returns_fresh,
                    may_throw: may_throw[mi],
                    throws_fresh: s.throws_fresh,
                    sites: s.sites,
                    flow,
                }
            })
            .collect();
        ProgramSummaries {
            call_graph: graph,
            methods,
            iterations,
        }
    }

    /// The summary of one method.
    pub fn summary(&self, method: MethodId) -> &MethodSummary {
        &self.methods[method.index()]
    }

    /// All summaries, in method order.
    pub fn all(&self) -> &[MethodSummary] {
        &self.methods
    }

    /// Escape class a call to `target` imposes on its argument at
    /// parameter `idx` (virtual calls join over possible receivers).
    pub fn call_arg_class(&self, target: MethodId, virtual_call: bool, idx: usize) -> EscapeClass {
        let mut class = EscapeClass::NoEscape;
        for t in self.call_graph.possible_targets(target, virtual_call) {
            class = class.max(
                self.methods[t.index()]
                    .param_escape
                    .get(idx)
                    .copied()
                    .unwrap_or(EscapeClass::GlobalEscape),
            );
        }
        class
    }

    /// Bcis of `method`'s allocation sites that are safe to exclude from
    /// PEA in *any* inlining context: the immediately-published sites
    /// (`new; putstatic`), plus sites whose fresh reference is the
    /// immediately following static call's last argument where the callee
    /// [`MethodSummary::publishes_immediately`] — the object is globally
    /// published before anything else can happen to it, so flow-sensitive
    /// PEA would only virtualize and instantly rematerialize it. Always a
    /// superset of [`immediate_global_sites`].
    pub fn excluded_sites(&self, program: &Program, method: MethodId) -> Vec<u32> {
        let m = program.method(method);
        let mut out = immediate_global_sites(m);
        for (bci, _) in alloc_sites(m) {
            if let Some(Insn::InvokeStatic(t)) = m.code.get(bci as usize + 1) {
                let callee = &self.methods[t.index()];
                let last = program.method(*t).param_count as usize;
                if last >= 1 && callee.publishes_immediately[last - 1] {
                    out.push(bci);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The branch-aware widening of [`excluded_sites`](Self::excluded_sites)
    /// for the `pea-pre-flow` level: additionally excludes every
    /// *certain-escape* site — one that escapes globally on **all** paths
    /// from its allocation with nothing observable or faulting in between
    /// (see [`crate::flow::FlowSite::certain_global`]). For such a site
    /// PEA's only possible move is to defer the allocation to the
    /// materialization point, which no execution can distinguish, so
    /// pre-filtering it preserves results and allocation counts exactly.
    /// Sites that publish only on exception or cold paths are deliberately
    /// *kept*: those are exactly where flow-sensitive PEA wins. Always a
    /// superset of `excluded_sites`.
    pub fn excluded_sites_flow(&self, program: &Program, method: MethodId) -> Vec<u32> {
        let mut out = self.excluded_sites(program, method);
        for site in &self.methods[method.index()].flow.sites {
            if site.certain_global {
                out.push(site.bci);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Transitive closure of "contains an `athrow`" over the call graph:
/// callers of a may-throw method may themselves surface an exception.
/// Propagated caller-ward from the syntactic seeds; cycles converge because
/// the property only ever flips `false → true`.
fn compute_may_throw(program: &Program, graph: &CallGraph) -> Vec<bool> {
    let mut may_throw: Vec<bool> = program.methods.iter().map(|m| m.has_athrow()).collect();
    let mut queue: VecDeque<usize> = (0..may_throw.len()).filter(|&i| may_throw[i]).collect();
    while let Some(mi) = queue.pop_front() {
        for caller in graph.callers(MethodId::from_index(mi)) {
            if !may_throw[caller.index()] {
                may_throw[caller.index()] = true;
                queue.push_back(caller.index());
            }
        }
    }
    may_throw
}

/// Least fixpoint of the syntactic "publishes parameter `p` before any
/// other effect" predicate: the method body starts with `load p` followed
/// by either `putstatic` or a unary static call whose callee publishes
/// *its* parameter immediately. Cycles stay `false` (no base case ever
/// justifies them).
fn compute_immediate_publishes(program: &Program) -> Vec<Vec<bool>> {
    let mut publishes: Vec<Vec<bool>> = program
        .methods
        .iter()
        .map(|m| vec![false; m.param_count as usize])
        .collect();
    loop {
        let mut changed = false;
        for (mi, method) in program.methods.iter().enumerate() {
            let Some(Insn::Load(p)) = method.code.first() else {
                continue;
            };
            let p = *p as usize;
            if p >= publishes[mi].len() || publishes[mi][p] {
                continue;
            }
            let justified = match method.code.get(1) {
                Some(Insn::PutStatic(_)) => true,
                Some(Insn::InvokeStatic(t)) => {
                    program.method(*t).param_count == 1 && publishes[t.index()][0]
                }
                _ => false,
            };
            if justified {
                publishes[mi][p] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    publishes
}

#[cfg(test)]
mod tests {
    use super::*;
    use pea_bytecode::asm::parse_program;

    fn summaries(src: &str) -> (Program, ProgramSummaries) {
        let program = parse_program(src).unwrap();
        pea_bytecode::verify_program(&program).unwrap();
        let s = ProgramSummaries::compute(&program);
        (program, s)
    }

    fn method(program: &Program, name: &str) -> MethodId {
        program.static_method_by_name(name).unwrap()
    }

    #[test]
    fn call_graph_static_and_virtual_edges() {
        let (program, s) = summaries(
            "class A { }
             class B extends A { }
             method virtual A.f 1 returns { const 1 retv }
             method virtual B.f 1 returns { const 2 retv }
             method leaf 0 { ret }
             method m 1 returns {
                load 0 checkcast A invokevirtual A.f
                invokestatic leaf
                const 0 retv
             }",
        );
        let m = method(&program, "m");
        let af = program.methods.iter().position(|x| x.name == "f").unwrap();
        let callees = s.call_graph.callees(m);
        // leaf, A.f and B.f are all possible callees of m.
        assert_eq!(callees.len(), 3);
        assert!(
            s.call_graph
                .possible_targets(MethodId::from_index(af), true)
                .len()
                == 2
        );
        assert!(s.call_graph.callers(method(&program, "leaf")).contains(&m));
        assert!(s.call_graph.edge_count() >= 3);
    }

    #[test]
    fn publishing_callee_raises_caller_param_to_global() {
        let (program, s) = summaries(
            "class Box { field v int }
             static g ref
             method publish 1 { load 0 putstatic g ret }
             method wrap 1 { load 0 invokestatic publish ret }
             method keep 1 { ret }",
        );
        let publish = s.summary(method(&program, "publish"));
        assert_eq!(publish.param_escape, vec![EscapeClass::GlobalEscape]);
        assert_eq!(publish.publishes_immediately, vec![true]);
        // `wrap` transitively publishes through `publish`.
        let wrap = s.summary(method(&program, "wrap"));
        assert_eq!(wrap.param_escape, vec![EscapeClass::GlobalEscape]);
        assert_eq!(wrap.publishes_immediately, vec![true]);
        // `keep` never touches its parameter.
        let keep = s.summary(method(&program, "keep"));
        assert_eq!(keep.param_escape, vec![EscapeClass::NoEscape]);
        assert_eq!(keep.publishes_immediately, vec![false]);
    }

    #[test]
    fn excluded_sites_widen_immediate_global_through_calls() {
        let (program, s) = summaries(
            "class Box { field v int }
             static g ref
             static h ref
             method publish 1 { load 0 putstatic g ret }
             method wrap 1 { load 0 invokestatic publish ret }
             method keep 1 { ret }
             method m 0 {
                new Box putstatic h
                new Box invokestatic publish
                new Box invokestatic wrap
                new Box invokestatic keep
                new Box store 0
                ret
             }",
        );
        let mid = method(&program, "m");
        let m = program.method(mid);
        let immediate = immediate_global_sites(m);
        let excluded = s.excluded_sites(&program, mid);
        // Superset of the intraprocedural exclusion...
        for bci in &immediate {
            assert!(excluded.contains(bci));
        }
        // ...that additionally catches the direct and transitive publish
        // helpers, but not the non-retaining callee or the local store.
        assert_eq!(immediate.len(), 1);
        assert_eq!(excluded.len(), 3);
        // Every excluded site is GlobalEscape in the refined summary.
        let sm = s.summary(mid);
        for bci in &excluded {
            assert_eq!(
                sm.sites.iter().find(|x| x.bci == *bci).unwrap().escape,
                EscapeClass::GlobalEscape
            );
        }
        // The site passed to `keep` stays ArgEscape even refined.
        assert_eq!(sm.sites[3].escape, EscapeClass::ArgEscape);
    }

    #[test]
    fn excluded_sites_flow_adds_certain_guarded_publication() {
        // Publication via a local behind a branch: invisible to the
        // syntactic `excluded_sites` pre-filter (not an immediate
        // `putstatic` nor a publishing call), but the flow tier proves the
        // site escapes on every path from its allocation with nothing
        // observable in between, so `pea-pre-flow` may exclude it.
        let (program, s) = summaries(
            "class Box { field v int }
             static g ref
             method m 1 {
                load 0 const 7 ifcmp ne Lskip
                new Box store 1
                load 1 putstatic g
             Lskip: ret
             }",
        );
        let mid = method(&program, "m");
        assert!(s.excluded_sites(&program, mid).is_empty());
        assert_eq!(s.excluded_sites_flow(&program, mid), vec![3]);
        let fs = &s.summary(mid).flow;
        assert!(fs.site_at(3).unwrap().certain_global);
    }

    #[test]
    fn excluded_sites_flow_is_superset_of_ipa() {
        let (program, s) = summaries(
            "class Box { field v int }
             static g ref
             static h ref
             method publish 1 { load 0 putstatic g ret }
             method m 0 {
                new Box putstatic h
                new Box invokestatic publish
                new Box store 0
                ret
             }",
        );
        let mid = method(&program, "m");
        let ipa = s.excluded_sites(&program, mid);
        let flow = s.excluded_sites_flow(&program, mid);
        for bci in &ipa {
            assert!(flow.contains(bci));
        }
    }

    #[test]
    fn recursive_publish_chain_stays_unjustified() {
        // a forwards to b forwards to a: no base case, so neither
        // "publishes immediately" — exclusion must not fire.
        let (program, s) = summaries(
            "class Box { }
             method a 1 { load 0 invokestatic b ret }
             method b 1 { load 0 invokestatic a ret }
             method m 0 { new Box invokestatic a ret }",
        );
        let a = s.summary(method(&program, "a"));
        assert_eq!(a.publishes_immediately, vec![false]);
        assert!(s.excluded_sites(&program, method(&program, "m")).is_empty());
    }

    #[test]
    fn conditional_publish_is_not_immediate() {
        // The callee publishes only on one branch: the parameter is
        // GlobalEscape (may be published) but not an immediate publish —
        // flow-sensitive PEA can still win on the other path, so the site
        // must not be excluded.
        let (program, s) = summaries(
            "class Box { field v int }
             static g ref
             method maybe 2 {
                load 0 const 0 ifcmp eq Ldone
                load 1 putstatic g
             Ldone: ret
             }
             method m 1 { load 0 new Box invokestatic maybe ret }",
        );
        let maybe = s.summary(method(&program, "maybe"));
        assert_eq!(maybe.param_escape[1], EscapeClass::GlobalEscape);
        assert_eq!(maybe.publishes_immediately, vec![false, false]);
        // The fresh Box is the call's last argument and the callee *may*
        // publish it — the refined site verdict is GlobalEscape — but the
        // publish is conditional, so the site is not excludable.
        let sm = s.summary(method(&program, "m"));
        assert_eq!(sm.sites[0].escape, EscapeClass::GlobalEscape);
        assert!(s.excluded_sites(&program, method(&program, "m")).is_empty());
    }

    #[test]
    fn virtual_call_joins_over_implementations() {
        // One implementation publishes, the other does not: the join must
        // be GlobalEscape for the argument.
        let (program, s) = summaries(
            "class A { }
             class B extends A { }
             static g ref
             method virtual A.sink 2 { ret }
             method virtual B.sink 2 { load 1 putstatic g ret }
             method m 1 returns {
                load 0 checkcast A store 1
                new A load 1 swap invokevirtual A.sink
                const 0 retv
             }",
        );
        let mid = method(&program, "m");
        let sm = s.summary(mid);
        // The fresh A is passed as the last argument of a virtual call
        // that *may* dispatch to the publishing B.sink.
        assert_eq!(sm.sites[0].escape, EscapeClass::GlobalEscape);
        // But publication is conditional on dispatch: not excludable.
        assert!(s.excluded_sites(&program, mid).is_empty());
    }

    #[test]
    fn returns_fresh_detected() {
        let (program, s) = summaries(
            "class Box { field v int }
             method mk 1 returns {
                new Box store 1
                load 1 load 0 putfield Box.v
                load 1 retv
             }
             method id 1 returns { load 0 retv }",
        );
        assert!(s.summary(method(&program, "mk")).returns_fresh);
        assert!(!s.summary(method(&program, "id")).returns_fresh);
    }

    #[test]
    fn may_throw_propagates_caller_ward() {
        let (program, s) = summaries(
            "class Err { field code int }
             method boom 1 {
                load 0 const 0 ifcmp eq Ldone
                new Err athrow
             Ldone: ret
             }
             method wraps 1 { load 0 invokestatic boom ret }
             method outer 1 { load 0 invokestatic wraps ret }
             method calm 1 { ret }",
        );
        let boom = s.summary(method(&program, "boom"));
        assert!(boom.may_throw);
        assert!(boom.throws_fresh, "throws its own fresh Err");
        // Callers inherit may-throw transitively but not throws_fresh
        // (they throw nothing of their own).
        let wraps = s.summary(method(&program, "wraps"));
        let outer = s.summary(method(&program, "outer"));
        assert!(wraps.may_throw && !wraps.throws_fresh);
        assert!(outer.may_throw && !outer.throws_fresh);
        let calm = s.summary(method(&program, "calm"));
        assert!(!calm.may_throw && !calm.throws_fresh);
    }

    #[test]
    fn throws_fresh_implies_may_throw_everywhere() {
        // The invariant pealint re-checks over CALLGRAPH.json: a fresh
        // throw requires a direct athrow, which is a may-throw seed.
        let (_, s) = summaries(
            "class Err { }
             method rethrow 1 { load 0 athrow }
             method fresh 0 { new Err athrow }
             method caller 0 { invokestatic fresh ret }",
        );
        for m in s.all() {
            assert!(!m.throws_fresh || m.may_throw, "method {:?}", m.method);
        }
    }

    #[test]
    fn fixpoint_is_stable() {
        // Recomputing with the final table as oracle changes nothing —
        // the pealint consistency check relies on this.
        let (program, s) = summaries(
            "class Box { }
             static g ref
             method publish 1 { load 0 putstatic g ret }
             method wrap 1 { load 0 invokestatic publish ret }
             method m 0 { new Box invokestatic wrap ret }",
        );
        let again = ProgramSummaries::compute(&program);
        for (a, b) in s.all().iter().zip(again.all()) {
            assert_eq!(a.param_escape, b.param_escape);
            assert_eq!(a.publishes_immediately, b.publishes_immediately);
        }
    }
}
