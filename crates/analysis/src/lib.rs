//! Conservative static analyses over `pea-bytecode`, independent of the
//! speculative partial escape analysis in `pea-core`.
//!
//! The crate has two roles:
//!
//! 1. **Pre-analysis** — a classic flow-insensitive escape analysis in the
//!    tradition of whole-method abstract-interpretation escape analyses
//!    (Hill & Spoto) and cheap pre-filters for precise analyses (SkipFlow).
//!    Every allocation site is classified on the three-point lattice
//!    `NoEscape < ArgEscape < GlobalEscape`. The compiler pipeline uses the
//!    syntactic subset of `GlobalEscape` sites (allocation immediately
//!    published to a static) to skip PEA work that provably cannot pay off.
//!
//! 2. **Sanitizer** — an independent oracle for the speculative PEA: every
//!    `Virtualized`/`LockElided` trace event and every post-PEA frame state
//!    is cross-checked against the conservative verdicts. Because the static
//!    analysis over-approximates (it never wrongly claims `NoEscape`), any
//!    PEA decision that contradicts it is a compiler bug, reported loudly.
//!
//! Both are built on a small reusable worklist dataflow framework
//! ([`dataflow`]) with forward and backward solvers over method bytecode.
//!
//! | module | contents |
//! |---|---|
//! | [`dataflow`] | worklist solvers, join-semilattice trait, bit sets |
//! | [`escape`] | NoEscape/ArgEscape/GlobalEscape classification per site |
//! | [`flow`] | branch-aware (predicate-edge) path qualification of the escape verdicts |
//! | [`lockbalance`] | monitorenter/monitorexit pairing depth per site |
//! | [`nullness`] | definite assignment + null-ness findings |
//! | [`sanitize`] | PEA decision sanitizer over trace events + frame states |
//! | [`summary`] | call graph + interprocedural per-method escape summaries |

pub mod dataflow;
pub mod escape;
pub mod flow;
pub mod lockbalance;
pub mod nullness;
pub mod sanitize;
pub mod summary;

pub use dataflow::{BackwardAnalysis, BitSet, EdgeKind, ForwardAnalysis};
pub use escape::{
    analyze_method, immediate_global_sites, AllocKind, AllocSite, CalleeOracle, EscapeClass,
    EscapeSummary,
};
pub use flow::{analyze_method_flow, FlowSite, FlowSummary, PathEscape, ThrowGuard, ThrowPath};
pub use lockbalance::{analyze_locks, LockFinding, LockFindingKind, LockSummary};
pub use nullness::{analyze_nullness, NullFinding, NullFindingKind, NullnessSummary};
pub use sanitize::{check_compilation, Inconsistency, SiteVerdict, StaticVerdicts};
pub use summary::{CallGraph, MethodSummary, ProgramSummaries};
