//! Explicit per-compilation state ([`CompilationUnit`]) and phase
//! sequencing ([`PhaseManager`]).
//!
//! Each compilation owns a `CompilationUnit` that carries everything the
//! phases produce — the graph under construction, inline decisions,
//! resolved interprocedural summaries, the effective PEA configuration,
//! per-phase wall-clock times — and a `PhaseManager` drives an explicit
//! list of [`PhaseKind`]s over it. This replaces the former ad-hoc
//! statement sequencing inside `compile_impl`: the phase list is data, so
//! tests and tools can inspect exactly which phases a configuration runs,
//! and every phase reads and writes the unit through one named interface.
//!
//! Phases are an enum rather than trait objects because they emit through
//! the lifetime-bound [`Tracer`], which a `dyn Phase` could not carry
//! without infecting every signature with the sink lifetime.

use crate::builder::{build_graph_with, Bailout, InlineDecisionRec, InlinePolicy};
use crate::canon::canonicalize;
use crate::pipeline::{CompilerOptions, OptLevel, PhaseTimes};
use pea_analysis::ProgramSummaries;
use pea_bytecode::{MethodId, Program};
use pea_core::{run_ees, run_pea, run_pea_traced, PeaOptions, PeaResult};
use pea_ir::cfg::Cfg;
use pea_ir::dom::DomTree;
use pea_ir::schedule::Schedule;
use pea_ir::{Graph, NodeKind};
use pea_runtime::profile::ProfileStore;
use pea_trace::{TraceEvent, Tracer};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// One compilation phase. The order a [`PhaseManager`] runs them in is the
/// pipeline; each phase reads its inputs from and writes its outputs to
/// the [`CompilationUnit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhaseKind {
    /// Resolve interprocedural summaries: reuse the set injected through
    /// [`CompilerOptions::summaries`] or compute them from the program
    /// (emitting [`TraceEvent::SummaryComputed`] per reachable method).
    /// Scheduled only when the configuration consumes summaries.
    Summaries,
    /// Bytecode → graph construction, inlining included; records one
    /// [`InlineDecisionRec`] per call site and emits it as a
    /// [`TraceEvent::InlineDecision`].
    Build,
    /// Constant folding, GVN, phi simplification, dead-node pruning.
    Canonicalize,
    /// Compute the allocation-site exclusion set for the `pea-pre` /
    /// `pea-pre-ipa` levels and freeze the effective [`PeaOptions`].
    Prefilter,
    /// The escape-analysis rounds (`ea_iterations`, each followed by a
    /// canonicalization pass).
    EscapeAnalysis,
    /// Final IR verification; a failure degrades into a [`Bailout`] so the
    /// VM keeps interpreting rather than executing a corrupt graph.
    VerifyIr,
    /// CFG construction, dominators, scheduling.
    Schedule,
    /// Lowering of the scheduled graph to the dense register-machine form
    /// (`crate::linear`). A lowering bailout leaves the artifact without a
    /// linear form; the VM falls back to graph-walking evaluation.
    Lower,
}

/// Everything one compilation accumulates while its phases run.
pub struct CompilationUnit<'a> {
    pub program: &'a Program,
    pub method: MethodId,
    pub profiles: Option<&'a ProfileStore>,
    pub options: &'a CompilerOptions,
    /// Interprocedural summaries, once the [`PhaseKind::Summaries`] phase
    /// resolved them (shared when the VM injected its cache, owned when
    /// computed on demand).
    pub summaries: Option<Arc<ProgramSummaries>>,
    /// The graph under construction (present after [`PhaseKind::Build`]).
    pub graph: Option<Graph>,
    /// Every inline decision the builder made, in call-site order.
    pub inline_decisions: Vec<InlineDecisionRec>,
    /// The PEA configuration the escape-analysis phase runs with (the
    /// user's [`PeaOptions`] until [`PhaseKind::Prefilter`] narrows it).
    pub effective_pea: PeaOptions,
    /// Allocation sites the pre-filter excluded up front.
    pub prefiltered_allocs: usize,
    /// Escape-analysis counters, summed across every round.
    pub pea_result: PeaResult,
    /// Wall-clock per-phase times.
    pub times: PhaseTimes,
    /// Scheduling artifacts (present after [`PhaseKind::Schedule`]).
    pub artifact: Option<Artifact>,
}

/// The back-end products of a compilation: the schedule the evaluator
/// executes plus its CFG, size and (when lowering succeeded) the linear
/// register-machine form.
pub struct Artifact {
    pub cfg: Cfg,
    pub schedule: Schedule,
    pub code_size: u64,
    pub linear: Option<crate::linear::LinearArtifact>,
}

impl<'a> CompilationUnit<'a> {
    pub fn new(
        program: &'a Program,
        method: MethodId,
        profiles: Option<&'a ProfileStore>,
        options: &'a CompilerOptions,
    ) -> CompilationUnit<'a> {
        CompilationUnit {
            program,
            method,
            profiles,
            options,
            summaries: None,
            graph: None,
            inline_decisions: Vec::new(),
            effective_pea: options.pea.clone(),
            prefiltered_allocs: 0,
            pea_result: PeaResult::default(),
            times: PhaseTimes::default(),
            artifact: None,
        }
    }

    fn graph_mut(&mut self) -> &mut Graph {
        self.graph.as_mut().expect("build phase ran")
    }

    fn qualified_name(&self, method: MethodId) -> String {
        self.program.method(method).qualified_name(self.program)
    }
}

/// An explicit, inspectable phase sequence over a [`CompilationUnit`].
#[derive(Clone, Debug)]
pub struct PhaseManager {
    phases: Vec<PhaseKind>,
}

impl PhaseManager {
    /// The standard pipeline for `options`: summaries are resolved only
    /// when the inline policy or the opt level consumes them, and the
    /// prefilter phase only runs at the `pea-pre` levels.
    pub fn standard(options: &CompilerOptions) -> PhaseManager {
        let mut phases = Vec::new();
        if options.needs_summaries() {
            phases.push(PhaseKind::Summaries);
        }
        phases.push(PhaseKind::Build);
        phases.push(PhaseKind::Canonicalize);
        if matches!(
            options.opt_level,
            OptLevel::PeaPre | OptLevel::PeaPreIpa | OptLevel::PeaPreFlow
        ) {
            phases.push(PhaseKind::Prefilter);
        }
        phases.push(PhaseKind::EscapeAnalysis);
        phases.push(PhaseKind::VerifyIr);
        phases.push(PhaseKind::Schedule);
        phases.push(PhaseKind::Lower);
        PhaseManager { phases }
    }

    /// The phases this manager will run, in order.
    pub fn phases(&self) -> &[PhaseKind] {
        &self.phases
    }

    /// Runs every phase in order over `unit`.
    ///
    /// # Errors
    ///
    /// The first phase [`Bailout`] aborts the sequence.
    pub fn run(
        &self,
        unit: &mut CompilationUnit<'_>,
        tracer: &mut Tracer<'_>,
    ) -> Result<(), Bailout> {
        for &phase in &self.phases {
            run_phase(phase, unit, tracer)?;
        }
        Ok(())
    }
}

fn run_phase(
    phase: PhaseKind,
    unit: &mut CompilationUnit<'_>,
    tracer: &mut Tracer<'_>,
) -> Result<(), Bailout> {
    match phase {
        PhaseKind::Summaries => {
            if let Some(shared) = &unit.options.summaries {
                unit.summaries = Some(shared.clone());
                return Ok(());
            }
            let t = Instant::now();
            let summaries = ProgramSummaries::compute(unit.program);
            // Summary computation is interprocedural front-end work;
            // account it to the build bucket.
            unit.times.build += t.elapsed();
            if tracer.enabled() {
                for s in summaries.all() {
                    let method = unit.qualified_name(s.method);
                    tracer.emit(&TraceEvent::SummaryComputed {
                        method,
                        params: s
                            .param_escape
                            .iter()
                            .map(|c| c.as_str().to_string())
                            .collect(),
                        returns_fresh: s.returns_fresh,
                    });
                }
            }
            unit.summaries = Some(Arc::new(summaries));
            Ok(())
        }
        PhaseKind::Build => {
            let t = Instant::now();
            let (graph, decisions, guards) = build_graph_with(
                unit.program,
                unit.method,
                unit.profiles,
                &unit.options.build,
                unit.summaries.as_deref(),
            )?;
            unit.times.build += t.elapsed();
            for d in &decisions {
                tracer.emit_with(|| TraceEvent::InlineDecision {
                    method: unit.program.method(d.caller).qualified_name(unit.program),
                    bci: d.bci,
                    callee: unit.program.method(d.callee).qualified_name(unit.program),
                    policy: d.policy.as_str().to_string(),
                    inlined: d.inlined,
                    reason: d.reason.to_string(),
                });
            }
            for g in &guards {
                tracer.emit_with(|| TraceEvent::DevirtGuard {
                    method: unit.program.method(g.caller).qualified_name(unit.program),
                    bci: g.bci,
                    callee: unit.program.method(g.callee).qualified_name(unit.program),
                    classes: g
                        .classes
                        .iter()
                        .map(|c| unit.program.classes[c.index()].name.clone())
                        .collect(),
                });
            }
            unit.inline_decisions = decisions;
            debug_assert_verify(&graph, "after build");
            unit.graph = Some(graph);
            Ok(())
        }
        PhaseKind::Canonicalize => {
            let t = Instant::now();
            let graph = unit.graph_mut();
            canonicalize(graph);
            graph.prune_dead();
            unit.times.canonicalize += t.elapsed();
            debug_assert_verify(unit.graph_mut(), "after canonicalize");
            Ok(())
        }
        PhaseKind::Prefilter => {
            // The exclusion set is computed once, up front: allocation
            // nodes only appear during graph building (inlining included),
            // never during canonicalization, so later EA rounds see the
            // same sites.
            let mut excluded = 0usize;
            let mut allowed = prefilter_allowed(
                unit.program,
                unit.graph.as_ref().expect("build phase ran"),
                unit.options.opt_level,
                unit.summaries.as_deref(),
                &mut excluded,
            );
            if let Some(user) = &unit.options.pea.allowed {
                allowed.retain(|n| user.contains(n));
            }
            unit.prefiltered_allocs = excluded;
            unit.effective_pea = PeaOptions {
                allowed: Some(allowed),
                ..unit.options.pea.clone()
            };
            Ok(())
        }
        PhaseKind::EscapeAnalysis => {
            for _ in 0..unit.options.ea_iterations.max(1) {
                let t = Instant::now();
                let graph = unit.graph.as_mut().expect("build phase ran");
                let r = match unit.options.opt_level {
                    OptLevel::None => PeaResult::default(),
                    OptLevel::Ees => run_ees(graph, unit.program, &unit.effective_pea),
                    OptLevel::Pea
                    | OptLevel::PeaPre
                    | OptLevel::PeaPreIpa
                    | OptLevel::PeaPreFlow => match tracer.sink() {
                        Some(sink) => {
                            run_pea_traced(graph, unit.program, &unit.effective_pea, sink)
                        }
                        None => run_pea(graph, unit.program, &unit.effective_pea),
                    },
                };
                unit.times.escape_analysis += t.elapsed();
                debug_assert_verify(unit.graph_mut(), "after escape analysis");
                let t = Instant::now();
                let graph = unit.graph_mut();
                canonicalize(graph);
                graph.prune_dead();
                unit.times.canonicalize += t.elapsed();
                // Every round's counters are real graph changes: report
                // the sum, not just the first round's.
                unit.pea_result.absorb(&r);
                if !r.changed() {
                    break;
                }
            }
            unit.pea_result.prefiltered_allocs = unit.prefiltered_allocs;
            Ok(())
        }
        PhaseKind::VerifyIr => {
            let graph = unit.graph.as_ref().expect("build phase ran");
            if let Err(e) = pea_ir::verify::verify(graph) {
                debug_assert!(false, "post-compilation verification failed: {e}");
                return Err(Bailout::Unsupported(format!("verification failed: {e}")));
            }
            Ok(())
        }
        PhaseKind::Schedule => {
            let t = Instant::now();
            let graph = unit.graph.as_ref().expect("build phase ran");
            let cfg = Cfg::build(graph);
            let dom = DomTree::build(&cfg);
            let schedule = Schedule::build(graph, &cfg, &dom);
            unit.times.schedule += t.elapsed();
            let code_size = schedule.code_size();
            unit.artifact = Some(Artifact {
                cfg,
                schedule,
                code_size,
                linear: None,
            });
            Ok(())
        }
        PhaseKind::Lower => {
            let t = Instant::now();
            let graph = unit.graph.as_ref().expect("build phase ran");
            let artifact = unit.artifact.as_mut().expect("schedule phase ran");
            // A lowering bailout is not a compile bailout: the scheduled
            // graph is a complete artifact and the VM simply executes it
            // on the graph-walking tier.
            artifact.linear =
                crate::linear::lower(unit.program, graph, &artifact.cfg, &artifact.schedule).ok();
            unit.times.lower += t.elapsed();
            Ok(())
        }
    }
}

/// Computes the allocation nodes PEA may virtualize at the `pea-pre`
/// levels: every live `New`/`NewArray` except those the static
/// pre-analysis proves globally escaping up front.
///
/// At [`OptLevel::PeaPre`] only the immediately-stored-to-a-static pattern
/// qualifies. At [`OptLevel::PeaPreIpa`] the interprocedural summaries
/// widen the set with sites whose fresh reference is immediately passed to
/// a callee that publishes its parameter on every path
/// ([`ProgramSummaries::excluded_sites`]) — a superset of the immediate
/// sites by construction. At [`OptLevel::PeaPreFlow`] the branch-aware
/// flow tier further adds *certain-escape* sites
/// ([`ProgramSummaries::excluded_sites_flow`]): allocations proven to
/// escape globally on every path with nothing observable in between, even
/// through locals or non-immediate publication. All verdicts stay correct
/// no matter where the bytecode was inlined, so the filter can never
/// change the results or allocation counts PEA produces, only skip work
/// (at the flow level the allocation simply stays at its original `new`
/// instead of sinking to an indistinguishable materialization point).
/// `excluded` receives the number of sites filtered out.
fn prefilter_allowed(
    program: &Program,
    graph: &Graph,
    opt_level: OptLevel,
    summaries: Option<&ProgramSummaries>,
    excluded: &mut usize,
) -> HashSet<pea_ir::NodeId> {
    let mut global_sites: HashMap<MethodId, Vec<u32>> = HashMap::new();
    let mut allowed = HashSet::new();
    for id in graph.live_nodes() {
        if !matches!(
            graph.kind(id),
            NodeKind::New { .. } | NodeKind::NewArray { .. }
        ) {
            continue;
        }
        let escapes = graph.provenance(id).is_some_and(|(m, bci)| {
            global_sites
                .entry(m)
                .or_insert_with(|| match (opt_level, summaries) {
                    (OptLevel::PeaPreIpa, Some(s)) => s.excluded_sites(program, m),
                    (OptLevel::PeaPreFlow, Some(s)) => s.excluded_sites_flow(program, m),
                    _ => pea_analysis::escape::immediate_global_sites(program.method(m)),
                })
                .contains(&bci)
        });
        if escapes {
            *excluded += 1;
        } else {
            allowed.insert(id);
        }
    }
    allowed
}

fn debug_assert_verify(graph: &Graph, stage: &str) {
    if cfg!(debug_assertions) {
        if let Err(e) = pea_ir::verify::verify(graph) {
            panic!("{stage}: {e}\n{}", pea_ir::dump::dump(graph));
        }
    }
}

impl CompilerOptions {
    /// Whether this configuration consumes interprocedural summaries (and
    /// the [`PhaseKind::Summaries`] phase must run).
    pub fn needs_summaries(&self) -> bool {
        matches!(self.opt_level, OptLevel::PeaPreIpa | OptLevel::PeaPreFlow)
            || self.build.inline_policy == InlinePolicy::Summary
    }
}
