//! The compiled-code evaluator: executes a scheduled IR graph against the
//! managed heap under the virtual cycle cost model, standing in for
//! machine code. Implements full deoptimization (paper §2/§5.5): on a
//! failed guard it walks the frame-state chain, **rematerializes** virtual
//! objects (allocating them, filling their fields and re-entering their
//! monitors) and hands reconstructed interpreter frames back to the VM.

use crate::pipeline::CompiledMethod;
use pea_bytecode::{MethodId, Program};
use pea_ir::cfg::BlockId;
use pea_ir::{ArithOp, DeoptReason, NodeId, NodeKind};
use pea_runtime::cost;
use pea_runtime::{Heap, ObjRef, Statics, Value, VmError};
use std::collections::HashMap;

/// Host services for compiled code (the VM implements this; tests use a
/// trivial implementation).
pub trait EvalEnv {
    /// The managed heap.
    fn heap(&mut self) -> &mut Heap;
    /// Static variable storage.
    fn statics(&mut self) -> &mut Statics;
    /// Charges virtual cycles.
    ///
    /// # Errors
    ///
    /// [`VmError::OutOfFuel`] when the budget is exhausted.
    fn charge(&mut self, cycles: u64) -> Result<(), VmError>;
    /// Performs an out-of-line call (tier chosen by the host).
    ///
    /// # Errors
    ///
    /// Whatever the callee raises.
    fn invoke(&mut self, method: MethodId, args: Vec<Value>) -> Result<Option<Value>, VmError>;
    /// Safepoint poll, issued at every compiled loop back-edge. The VM
    /// installs finished background compilations here — without this,
    /// a long compiled-only loop (hot caller with every callee inlined or
    /// itself compiled) would never reach an interpreter safepoint and
    /// background installs would starve. With several mutator threads on
    /// one VM the poll also advances this thread's rendezvous slot, so a
    /// mutator parked inside a compiled-only loop can never starve the
    /// reclamation of code-store variants another thread evicted. The
    /// default is a no-op for hosts without tiering.
    fn safepoint(&mut self) {}
    /// Whether [`EvalEnv::charge`] enforces a fuel budget. When it does
    /// not (the default), executors may batch charges locally and flush
    /// the sum on exit — the cycle total is identical because only the
    /// fuel check ever observes intermediate values. The VM overrides
    /// this when `--fuel` is set so out-of-fuel positions stay exact.
    fn has_fuel_limit(&self) -> bool {
        false
    }
    /// The host's cycle-attribution profiler; compiled tiers count heap
    /// allocations (including commit-group and deopt rematerializations)
    /// through it. Defaults to the disabled recorder: one branch per
    /// allocation site, nothing recorded.
    fn profiler(&self) -> &pea_metrics::profile::ProfileRecorder {
        pea_metrics::profile::ProfileRecorder::disabled_ref()
    }
}

/// One interpreter frame reconstructed by deoptimization, outermost first
/// in [`EvalOutcome::Deopt`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeoptFrame {
    /// Frame method.
    pub method: MethodId,
    /// Bytecode index to resume at (outer frames: their invoke bci).
    pub bci: u32,
    /// Local variable values.
    pub locals: Vec<Value>,
    /// Operand stack values.
    pub stack: Vec<Value>,
    /// Held monitors: `(object, from_synchronized_method)`.
    pub locked: Vec<(ObjRef, bool)>,
}

/// Result of running compiled code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalOutcome {
    /// Normal return.
    Return(Option<Value>),
    /// Deoptimization: the VM must resume the interpreter with `frames`.
    Deopt {
        /// Why the speculation failed.
        reason: DeoptReason,
        /// Reconstructed frames, outermost first.
        frames: Vec<DeoptFrame>,
        /// Shapes of the virtual objects rematerialized while rebuilding
        /// the frames (§5.5), in allocation order — the deopt's
        /// rematerialization inventory for tracing and invariant checks.
        rematerialized: Vec<String>,
    },
    /// An exception thrown by an out-of-line callee is propagating
    /// through this compiled frame: the VM must dispatch it over the
    /// rematerialized `frames` (innermost frame last, positioned at the
    /// faulting call's bci) with the interpreter's unwinder.
    Unwind {
        /// The in-flight exception object.
        exception: ObjRef,
        /// Reconstructed frames, outermost first.
        frames: Vec<DeoptFrame>,
        /// Rematerialization inventory, as for [`EvalOutcome::Deopt`].
        rematerialized: Vec<String>,
    },
}

/// Executes `code` with `args`.
///
/// # Errors
///
/// Runtime errors ([`VmError`]) exactly as the interpreter would raise
/// them for the same program state — the differential test suite depends
/// on this equivalence.
pub fn evaluate(
    program: &Program,
    env: &mut dyn EvalEnv,
    code: &CompiledMethod,
    args: &[Value],
) -> Result<EvalOutcome, VmError> {
    env.charge(cost::CALL_OVERHEAD + cost::icache_cost(code.code_size))?;
    // Dense value table: one slot per node id (compiled graphs are
    // compact after pruning; O(1) access dominates the evaluator). The
    // backing vector is pooled per thread so the per-call cost is a
    // clear-and-refill, not an allocation — keeping the graph oracle's
    // wall-clock comparison against the linear tier about dispatch, not
    // malloc. The pop/push bracket is reentrancy-safe: recursive calls
    // through `env.invoke` pop their own buffer.
    let mut values = VALUES_POOL
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_default();
    values.clear();
    values.resize(code.graph.len(), None);
    let result = evaluate_inner(program, env, code, args, &mut values);
    VALUES_POOL.with(|p| p.borrow_mut().push(values));
    result
}

thread_local! {
    /// Value-table pool for [`evaluate`] (one entry per in-flight nesting
    /// depth, reused across calls).
    static VALUES_POOL: std::cell::RefCell<Vec<Vec<Option<Value>>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

fn evaluate_inner(
    program: &Program,
    env: &mut dyn EvalEnv,
    code: &CompiledMethod,
    args: &[Value],
    values: &mut [Option<Value>],
) -> Result<EvalOutcome, VmError> {
    let graph = &code.graph;
    // Commit results are keyed by commit node; the map allocates nothing
    // until a method actually materializes a group.
    let mut commit_results: HashMap<NodeId, Vec<ObjRef>> = HashMap::new();
    let mut block: BlockId = code.cfg.entry();
    let mut came_from_end: Option<NodeId> = None;
    // Phi-update scratch, hoisted out of the block loop.
    let mut updates: Vec<(NodeId, Value)> = Vec::new();

    'blocks: loop {
        let first = code.cfg.block(block).first();
        // Phi updates on entry to merge-like blocks (parallel assignment).
        if let NodeKind::Merge { ends } | NodeKind::LoopBegin { ends } = graph.kind(first) {
            let end = came_from_end.expect("merge entered without an end");
            let idx = ends
                .iter()
                .position(|&e| e == end)
                .expect("end not registered on merge");
            updates.clear();
            for phi in graph.phis_of(first) {
                let input = graph.node(phi).inputs()[idx];
                let v = values[input.index()]
                    .ok_or_else(|| VmError::Internal(format!("phi input {input} not computed")))?;
                updates.push((phi, v));
            }
            for &(phi, v) in &updates {
                set(values, phi, v);
            }
        }
        came_from_end = None;

        let order = &code.schedule.per_block[block.index()];
        for &n in order {
            let node = graph.node(n);
            let inputs = node.inputs();
            let val = |values: &[Option<Value>], id: NodeId| -> Result<Value, VmError> {
                values[id.index()]
                    .ok_or_else(|| VmError::Internal(format!("value {id} not computed")))
            };
            match graph.kind(n) {
                NodeKind::Start
                | NodeKind::Begin
                | NodeKind::LoopExit { .. }
                | NodeKind::Merge { .. }
                | NodeKind::LoopBegin { .. } => {}
                NodeKind::Param { index } => {
                    set(values, n, args[*index as usize]);
                }
                NodeKind::ConstInt { value } => {
                    set(values, n, Value::Int(*value));
                }
                NodeKind::ConstNull => {
                    set(values, n, Value::Null);
                }
                NodeKind::Arith { op } | NodeKind::FixedArith { op } => {
                    env.charge(cost::ALU_OP)?;
                    let a = val(values, inputs[0])?.as_int()?;
                    let r = if *op == ArithOp::Neg {
                        a.wrapping_neg()
                    } else {
                        let b = val(values, inputs[1])?.as_int()?;
                        apply_arith(*op, a, b)?
                    };
                    set(values, n, Value::Int(r));
                }
                NodeKind::Compare { op } => {
                    env.charge(cost::ALU_OP)?;
                    let a = val(values, inputs[0])?.as_int()?;
                    let b = val(values, inputs[1])?.as_int()?;
                    set(values, n, Value::from_bool(op.apply(a, b)));
                }
                NodeKind::Phi { .. } => {
                    unreachable!("phis are not scheduled")
                }
                NodeKind::New { class } => {
                    let bytes = program.object_size(*class);
                    env.charge(cost::alloc_cost(bytes))?;
                    env.profiler().record_alloc();
                    let r = env.heap().alloc_instance(program, *class);
                    set(values, n, Value::Ref(r));
                }
                NodeKind::NewArray { kind } => {
                    let len = val(values, inputs[0])?.as_int()?;
                    env.charge(cost::alloc_cost(Program::array_size(len.max(0) as u64)))?;
                    env.profiler().record_alloc();
                    let r = env.heap().alloc_array(*kind, len)?;
                    set(values, n, Value::Ref(r));
                }
                NodeKind::LoadField { field } => {
                    env.charge(cost::MEMORY_OP)?;
                    let obj = val(values, inputs[0])?.as_ref()?;
                    let v = env.heap().get_field(program, obj, *field)?;
                    set(values, n, v);
                }
                NodeKind::StoreField { field } => {
                    env.charge(cost::MEMORY_OP)?;
                    let obj = val(values, inputs[0])?.as_ref()?;
                    let v = val(values, inputs[1])?;
                    env.heap().put_field(program, obj, *field, v)?;
                }
                NodeKind::LoadIndexed => {
                    env.charge(cost::MEMORY_OP)?;
                    let arr = val(values, inputs[0])?.as_ref()?;
                    let idx = val(values, inputs[1])?.as_int()?;
                    let v = env.heap().array_get(arr, idx)?;
                    set(values, n, v);
                }
                NodeKind::StoreIndexed => {
                    env.charge(cost::MEMORY_OP)?;
                    let arr = val(values, inputs[0])?.as_ref()?;
                    let idx = val(values, inputs[1])?.as_int()?;
                    let v = val(values, inputs[2])?;
                    env.heap().array_set(arr, idx, v)?;
                }
                NodeKind::ArrayLen => {
                    env.charge(cost::MEMORY_OP)?;
                    let arr = val(values, inputs[0])?.as_ref()?;
                    let len = env.heap().array_length(arr)?;
                    set(values, n, Value::Int(len));
                }
                NodeKind::MonitorEnter => {
                    env.charge(cost::MONITOR_OP)?;
                    let obj = val(values, inputs[0])?.as_ref()?;
                    env.heap().monitor_enter(obj);
                }
                NodeKind::MonitorExit => {
                    env.charge(cost::MONITOR_OP)?;
                    let obj = val(values, inputs[0])?.as_ref()?;
                    env.heap().monitor_exit(obj)?;
                }
                NodeKind::GetStatic { id } => {
                    env.charge(cost::MEMORY_OP)?;
                    let v = env.statics().get(*id);
                    set(values, n, v);
                }
                NodeKind::PutStatic { id } => {
                    env.charge(cost::MEMORY_OP)?;
                    let v = val(values, inputs[0])?;
                    env.statics().set(*id, v);
                }
                NodeKind::RefEq => {
                    env.charge(cost::ALU_OP)?;
                    let a = val(values, inputs[0])?.as_ref_or_null()?;
                    let b = val(values, inputs[1])?.as_ref_or_null()?;
                    set(values, n, Value::from_bool(a == b));
                }
                NodeKind::IsNull => {
                    env.charge(cost::ALU_OP)?;
                    let v = val(values, inputs[0])?.as_ref_or_null()?;
                    set(values, n, Value::from_bool(v.is_none()));
                }
                NodeKind::InstanceOf { class, exact } => {
                    env.charge(cost::ALU_OP)?;
                    let v = val(values, inputs[0])?.as_ref_or_null()?;
                    let is = match v {
                        Some(r) => {
                            let dynamic = env.heap().class_of(r)?;
                            if *exact {
                                dynamic == *class
                            } else {
                                program.is_subclass_of(dynamic, *class)
                            }
                        }
                        None => false,
                    };
                    set(values, n, Value::from_bool(is));
                }
                NodeKind::CheckCast { class } => {
                    env.charge(cost::ALU_OP)?;
                    let v = val(values, inputs[0])?;
                    if let Some(r) = v.as_ref_or_null()? {
                        let dynamic = env.heap().class_of(r)?;
                        if !program.is_subclass_of(dynamic, *class) {
                            return Err(VmError::ClassCast {
                                expected: program.class(*class).name.clone(),
                                found: program.class(dynamic).name.clone(),
                            });
                        }
                    }
                    set(values, n, v);
                }
                NodeKind::Invoke {
                    target,
                    virtual_call,
                } => {
                    let mut call_args = Vec::with_capacity(inputs.len());
                    for &i in inputs {
                        call_args.push(val(values, i)?);
                    }
                    let resolved = if *virtual_call {
                        let recv = call_args[0].as_ref()?;
                        let dynamic = env.heap().class_of(recv)?;
                        program
                            .resolve_virtual(dynamic, *target)
                            .map_err(|e| VmError::NoSuchMethod(e.to_string()))?
                    } else {
                        *target
                    };
                    let result = match env.invoke(resolved, call_args) {
                        Ok(r) => r,
                        Err(VmError::Thrown(exc)) => {
                            // The callee threw a catchable exception:
                            // deoptimize at the call site and let the
                            // interpreter unwind the rematerialized
                            // frames (handler dispatch happens there).
                            let fs = node.state_after.expect("invoke without frame state");
                            env.charge(cost::DEOPT_PENALTY)?;
                            // The after-state sits past the call with the
                            // (never produced) result on the stack: stand
                            // in a null so frame reconstruction resolves,
                            // then drop the slot and step the innermost
                            // frame back onto the invoke itself so the
                            // unwinder consults the right handler ranges.
                            let returns = program.method(resolved).returns_value;
                            if returns {
                                set(values, n, Value::Null);
                            }
                            let (mut frames, rematerialized) =
                                build_deopt_frames(program, env, graph, values, fs)?;
                            let inner = frames.last_mut().expect("invoke state has a frame");
                            if returns {
                                inner.stack.pop();
                            }
                            inner.bci = inner.bci.saturating_sub(1);
                            return Ok(EvalOutcome::Unwind {
                                exception: exc,
                                frames,
                                rematerialized,
                            });
                        }
                        Err(e) => return Err(e),
                    };
                    if let Some(v) = result {
                        set(values, n, v);
                    }
                }
                NodeKind::Commit { objects } => {
                    // Group materialization: allocate all objects first so
                    // cyclic field references resolve, then fill fields and
                    // re-enter monitors (paper §4 "materialization").
                    let mut refs = Vec::with_capacity(objects.len());
                    for obj in objects {
                        let r = match obj.shape {
                            pea_ir::AllocShape::Instance { class } => {
                                env.charge(cost::alloc_cost(program.object_size(class)))?;
                                env.heap().alloc_instance(program, class)
                            }
                            pea_ir::AllocShape::Array { kind, length } => {
                                env.charge(cost::alloc_cost(Program::array_size(u64::from(
                                    length,
                                ))))?;
                                env.heap().alloc_array(kind, i64::from(length))?
                            }
                        };
                        env.profiler().record_alloc();
                        refs.push(r);
                    }
                    let mut input_pos = 0usize;
                    for (oi, obj) in objects.iter().enumerate() {
                        let field_ids: Vec<Option<pea_bytecode::FieldId>> = match obj.shape {
                            pea_ir::AllocShape::Instance { class } => program
                                .instance_fields(class)
                                .into_iter()
                                .map(Some)
                                .collect(),
                            pea_ir::AllocShape::Array { length, .. } => {
                                (0..length).map(|_| None).collect()
                            }
                        };
                        for (fi, field) in field_ids.into_iter().enumerate() {
                            let input = inputs[input_pos];
                            input_pos += 1;
                            let v = match graph.kind(input) {
                                NodeKind::AllocatedObject { index }
                                    if graph.node(input).inputs()[0] == n =>
                                {
                                    Value::Ref(refs[*index])
                                }
                                _ => val(values, input)?,
                            };
                            match field {
                                Some(f) => {
                                    env.heap().put_field(program, refs[oi], f, v)?;
                                }
                                None => {
                                    env.heap().array_set(refs[oi], fi as i64, v)?;
                                }
                            }
                        }
                        for _ in 0..obj.lock_count {
                            env.charge(cost::MONITOR_OP)?;
                            env.heap().monitor_enter(refs[oi]);
                        }
                    }
                    commit_results.insert(n, refs);
                }
                NodeKind::AllocatedObject { index } => {
                    let commit = inputs[0];
                    let refs = commit_results.get(&commit).ok_or_else(|| {
                        VmError::Internal("allocated object before commit".into())
                    })?;
                    set(values, n, Value::Ref(refs[*index]));
                }
                NodeKind::Guard { reason, negated } => {
                    env.charge(cost::BRANCH_OP)?;
                    let cond = val(values, inputs[0])?.as_bool()?;
                    if cond == *negated {
                        let fs = node.state_after.expect("guard without frame state");
                        env.charge(cost::DEOPT_PENALTY)?;
                        let (frames, rematerialized) =
                            build_deopt_frames(program, env, graph, values, fs)?;
                        return Ok(EvalOutcome::Deopt {
                            reason: *reason,
                            frames,
                            rematerialized,
                        });
                    }
                }
                NodeKind::Deopt { reason } => {
                    let fs = node.state_after.expect("deopt without frame state");
                    env.charge(cost::DEOPT_PENALTY)?;
                    let (frames, rematerialized) =
                        build_deopt_frames(program, env, graph, values, fs)?;
                    return Ok(EvalOutcome::Deopt {
                        reason: *reason,
                        frames,
                        rematerialized,
                    });
                }
                NodeKind::If => {
                    env.charge(cost::BRANCH_OP)?;
                    let cond = val(values, inputs[0])?.as_bool()?;
                    let succ = node.successors()[usize::from(!cond)];
                    block = code.cfg.block_of(succ);
                    continue 'blocks;
                }
                NodeKind::End | NodeKind::LoopEnd => {
                    env.charge(cost::BRANCH_OP)?;
                    if matches!(node.kind, NodeKind::LoopEnd) {
                        // Compiled-code safepoint at the loop back-edge.
                        env.safepoint();
                    }
                    came_from_end = Some(n);
                    let succ = code.cfg.block(block).succs[0];
                    block = succ;
                    continue 'blocks;
                }
                NodeKind::Return => {
                    let v = match inputs.first() {
                        Some(&i) => Some(val(values, i)?),
                        None => None,
                    };
                    return Ok(EvalOutcome::Return(v));
                }
                NodeKind::Throw => {
                    let code_v = val(values, inputs[0])?.as_int()?;
                    return Err(VmError::UserException(code_v));
                }
                NodeKind::Unwind => {
                    // Frame monitors were already released by the explicit
                    // MonitorExit nodes the builder emits before the sink.
                    let exc = val(values, inputs[0])?.as_ref()?;
                    return Err(VmError::Thrown(exc));
                }
                NodeKind::FrameState(_) | NodeKind::VirtualObjectMapping { .. } => {
                    unreachable!("metadata scheduled for execution")
                }
            }
        }
        // A block's last node is always a terminator handled above.
        return Err(VmError::Internal(format!(
            "block {block} fell through without terminator"
        )));
    }
}

#[inline]
fn set(values: &mut [Option<Value>], id: NodeId, v: Value) {
    values[id.index()] = Some(v);
}

fn apply_arith(op: ArithOp, a: i64, b: i64) -> Result<i64, VmError> {
    Ok(match op {
        ArithOp::Add => a.wrapping_add(b),
        ArithOp::Sub => a.wrapping_sub(b),
        ArithOp::Mul => a.wrapping_mul(b),
        ArithOp::Div => {
            if b == 0 {
                return Err(VmError::DivisionByZero);
            }
            a.wrapping_div(b)
        }
        ArithOp::Rem => {
            if b == 0 {
                return Err(VmError::DivisionByZero);
            }
            a.wrapping_rem(b)
        }
        ArithOp::And => a & b,
        ArithOp::Or => a | b,
        ArithOp::Xor => a ^ b,
        ArithOp::Shl => a.wrapping_shl((b & 63) as u32),
        ArithOp::Shr => a.wrapping_shr((b & 63) as u32),
        ArithOp::Neg => unreachable!("unary handled by caller"),
    })
}

/// Reconstructs the interpreter frame chain from a frame state,
/// rematerializing virtual objects (paper §5.5). Returns the frames plus
/// the shapes of the objects rematerialized, in allocation order.
fn build_deopt_frames(
    program: &Program,
    env: &mut dyn EvalEnv,
    graph: &pea_ir::Graph,
    values: &[Option<Value>],
    innermost: NodeId,
) -> Result<(Vec<DeoptFrame>, Vec<String>), VmError> {
    // Collect the chain innermost → outermost, then reverse.
    let mut chain = vec![innermost];
    let mut cur = innermost;
    while let Some(outer_idx) = graph.frame_state_data(cur).outer_index() {
        cur = graph.node(cur).inputs()[outer_idx];
        chain.push(cur);
    }
    chain.reverse();

    let mut remat: HashMap<NodeId, ObjRef> = HashMap::new();
    let mut inventory: Vec<String> = Vec::new();
    let mut frames = Vec::with_capacity(chain.len());
    for fs in chain {
        let data = graph.frame_state_data(fs).clone();
        let inputs = graph.node(fs).inputs().to_vec();
        let mut resolve = |env: &mut dyn EvalEnv, id: NodeId| -> Result<Value, VmError> {
            resolve_slot(program, env, graph, values, &mut remat, &mut inventory, id)
        };
        let mut locals = Vec::with_capacity(data.n_locals as usize);
        for i in data.locals_range() {
            locals.push(resolve(env, inputs[i])?);
        }
        let mut stack = Vec::with_capacity(data.n_stack as usize);
        for i in data.stack_range() {
            stack.push(resolve(env, inputs[i])?);
        }
        let mut locked = Vec::with_capacity(data.n_locks as usize);
        for (k, i) in data.locks_range().enumerate() {
            let obj = resolve(env, inputs[i])?.as_ref()?;
            locked.push((obj, data.lock_from_sync[k]));
        }
        frames.push(DeoptFrame {
            method: data.method,
            bci: data.bci,
            locals,
            stack,
            locked,
        });
    }
    Ok((frames, inventory))
}

/// Resolves one frame-state slot: plain values come from the value table,
/// virtual-object mappings are rematerialized (cycle-safe two-phase
/// construction, locks re-entered).
fn resolve_slot(
    program: &Program,
    env: &mut dyn EvalEnv,
    graph: &pea_ir::Graph,
    values: &[Option<Value>],
    remat: &mut HashMap<NodeId, ObjRef>,
    inventory: &mut Vec<String>,
    id: NodeId,
) -> Result<Value, VmError> {
    if let NodeKind::VirtualObjectMapping { shape, lock_count } = graph.kind(id) {
        if let Some(&r) = remat.get(&id) {
            return Ok(Value::Ref(r));
        }
        let r = match shape {
            pea_ir::AllocShape::Instance { class } => env.heap().alloc_instance(program, *class),
            pea_ir::AllocShape::Array { kind, length } => {
                env.heap().alloc_array(*kind, i64::from(*length))?
            }
        };
        env.heap().stats.rematerialized += 1;
        env.profiler().record_alloc();
        inventory.push(match shape {
            pea_ir::AllocShape::Instance { class } => program.class(*class).name.clone(),
            other => other.to_string(),
        });
        remat.insert(id, r);
        let field_inputs = graph.node(id).inputs().to_vec();
        match shape {
            pea_ir::AllocShape::Instance { class } => {
                let fields = program.instance_fields(*class);
                for (fi, &input) in field_inputs.iter().enumerate() {
                    let v = resolve_slot(program, env, graph, values, remat, inventory, input)?;
                    env.heap().put_field(program, r, fields[fi], v)?;
                }
            }
            pea_ir::AllocShape::Array { .. } => {
                for (fi, &input) in field_inputs.iter().enumerate() {
                    let v = resolve_slot(program, env, graph, values, remat, inventory, input)?;
                    env.heap().array_set(r, fi as i64, v)?;
                }
            }
        }
        for _ in 0..*lock_count {
            env.heap().monitor_enter(r);
        }
        return Ok(Value::Ref(r));
    }
    values[id.index()]
        .ok_or_else(|| VmError::Internal(format!("frame-state slot {id} not computed")))
}
