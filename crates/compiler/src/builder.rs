//! Bytecode → Graal-IR-style graph construction, with method inlining,
//! frame-state bookkeeping and profile-guided speculation.
//!
//! The builder abstract-interprets the bytecode per basic block, mapping
//! locals and operand-stack slots to SSA value nodes. Control-flow joins
//! become `Merge` nodes with phis; loop headers become `LoopBegin` nodes
//! with eagerly created phis for every slot (redundant ones are cleaned by
//! canonicalization). Frame states are captured after every side effect
//! and at every merge, exactly as §2 of the paper describes, and inlined
//! callees chain their states to the caller's state at the call site.

use pea_analysis::{EscapeClass, ProgramSummaries, ThrowPath};
use pea_bytecode::{ClassId, CmpOp, ExceptionEntry, Insn, MethodId, Program};
use pea_ir::{ArithOp, DeoptReason, FrameStateData, Graph, NodeId, NodeKind};
use pea_runtime::profile::ProfileStore;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// Hard cap on the active inline chain (root + transitively inlined
/// callees), independent of the configurable depth limit. A policy bug or
/// an absurd `inline_max_depth` cannot push parsing into unbounded
/// inlining: crossing this cap is a compile bailout, not a skipped
/// candidate.
pub const MAX_INLINE_CHAIN: usize = 32;

/// Why a method cannot be compiled (the VM falls back to interpretation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Bailout {
    /// The bytecode control flow is irreducible.
    Irreducible,
    /// `monitorexit` does not match the innermost tracked lock, or lock
    /// stacks disagree at a control-flow merge.
    UnstructuredLocking,
    /// The graph exceeded the node budget.
    TooLarge,
    /// The active inline chain exceeded [`MAX_INLINE_CHAIN`].
    RecursionLimit,
    /// Anything else.
    Unsupported(String),
}

impl fmt::Display for Bailout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bailout::Irreducible => f.write_str("irreducible control flow"),
            Bailout::UnstructuredLocking => f.write_str("unstructured locking"),
            Bailout::TooLarge => f.write_str("graph too large"),
            Bailout::RecursionLimit => f.write_str("inline recursion limit exceeded"),
            Bailout::Unsupported(s) => write!(f, "unsupported: {s}"),
        }
    }
}

impl Error for Bailout {}

/// Which first-class policy decides inline candidacy at each call site.
///
/// Both policies share the hard gates (inlining enabled, devirtualized
/// target, depth limit, no recursion); they differ in what makes an
/// eligible candidate worth inlining.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum InlinePolicy {
    /// The classic cutoff: inline iff the callee bytecode fits the size
    /// budget (`inline_max_callee_code`).
    #[default]
    Size,
    /// Driven by interprocedural escape summaries plus profile call
    /// counts: inline beyond the size budget where a fresh allocation
    /// flows into a callee that keeps it unpublished (scalar replacement
    /// can then see the whole object lifetime), refuse — regardless of
    /// size — where the callee globally publishes every allocation passed
    /// to it and allocates nothing itself, and fall back to the size rule
    /// otherwise. Without summaries it degrades to the size rule.
    Summary,
}

impl InlinePolicy {
    /// Kebab-case tag for flags, traces and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            InlinePolicy::Size => "size",
            InlinePolicy::Summary => "summary",
        }
    }
}

impl fmt::Display for InlinePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for InlinePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "size" => Ok(InlinePolicy::Size),
            "summary" => Ok(InlinePolicy::Summary),
            other => Err(format!("unknown inline policy `{other}` (size|summary)")),
        }
    }
}

/// How a `may_throw` callee cleared the inline gate (see
/// [`GraphBuilder::cold_throw_clearance`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ThrowClearance {
    /// Every `athrow` in the callee body sits behind a branch whose throw
    /// side the profile proves was never taken: branch speculation guards
    /// those sides away, so the inlined body contains no throw at all.
    Cold,
    /// The callee has no `athrow` of its own — only its residual calls can
    /// throw, and those deoptimize/unwind identically at any inline depth.
    Transparent,
}

/// One recorded inline decision: every resolved call site parsed during
/// graph construction gets exactly one, accepted or not. The pipeline
/// turns these into `InlineDecision` trace events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InlineDecisionRec {
    /// Method whose bytecode contains the call site (the root method or
    /// an already-inlined callee).
    pub caller: MethodId,
    /// Call-site bytecode index within `caller`.
    pub bci: u32,
    /// The resolved (devirtualized if possible) call target.
    pub callee: MethodId,
    /// Policy that made the decision.
    pub policy: InlinePolicy,
    /// Whether the callee was inlined.
    pub inlined: bool,
    /// Kebab-case decision reason.
    pub reason: &'static str,
}

/// One receiver-type speculation planted at a virtual call site: a
/// monomorphic type guard (one class) or a polymorphic inline cache
/// (2..=[`MAX_PIC_CLASSES`] classes, hottest first). The pipeline turns
/// these into `DevirtGuard` trace events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DevirtGuardRec {
    /// Method whose bytecode contains the call site.
    pub caller: MethodId,
    /// Call-site bytecode index within `caller`.
    pub bci: u32,
    /// The declared (virtual) call target.
    pub callee: MethodId,
    /// Speculated receiver classes, hottest first.
    pub classes: Vec<ClassId>,
}

/// Graph-construction options.
#[derive(Clone, Debug)]
pub struct BuildOptions {
    /// Replace never-taken branches with deoptimizing guards.
    pub speculate_branches: bool,
    /// Minimum branch executions before a zero count is trusted.
    pub branch_threshold: u64,
    /// Inline eligible callees during parsing.
    pub inline: bool,
    /// Maximum inline nesting depth.
    pub inline_max_depth: usize,
    /// Maximum callee bytecode length considered for inlining.
    pub inline_max_callee_code: usize,
    /// Minimum observed dispatches before devirtualizing a monomorphic
    /// virtual call with a type guard.
    pub devirtualize_threshold: u64,
    /// Speculate on polymorphic receiver profiles: compile virtual call
    /// sites with 2–[`MAX_PIC_CLASSES`] observed receiver classes as a
    /// chain of exact-type checks with direct calls (a polymorphic inline
    /// cache) whose final arm deoptimizes on an unprofiled receiver.
    pub speculate_dispatch: bool,
    /// Node budget; exceeding it bails out.
    pub max_graph_nodes: usize,
    /// Which policy decides inline candidacy (see [`InlinePolicy`]).
    pub inline_policy: InlinePolicy,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            speculate_branches: true,
            branch_threshold: 20,
            inline: true,
            inline_max_depth: 4,
            inline_max_callee_code: 64,
            devirtualize_threshold: 20,
            speculate_dispatch: true,
            max_graph_nodes: 20_000,
            inline_policy: InlinePolicy::Size,
        }
    }
}

/// Most receiver classes a polymorphic inline cache will speculate on;
/// sites with more observed classes stay genuinely virtual.
pub const MAX_PIC_CLASSES: usize = 4;

/// The classic size cutoff, shared by both policies (the summary policy
/// falls back to it when summaries say nothing interesting).
fn size_rule(callee_len: usize, budget: usize) -> (bool, &'static str) {
    if callee_len <= budget {
        (true, "within-size-budget")
    } else {
        (false, "over-size-budget")
    }
}

/// One tracked monitor.
#[derive(Clone, Debug, PartialEq, Eq)]
struct LockEntry {
    object: NodeId,
    from_sync: bool,
}

/// The abstract frame during parsing.
#[derive(Clone, Debug)]
struct FlowState {
    locals: Vec<NodeId>,
    stack: Vec<NodeId>,
    locks: Vec<LockEntry>,
    /// Frame state guards/deopts refer to (last side effect or merge).
    deopt_state: NodeId,
}

/// Bytecode-level basic block.
#[derive(Clone, Debug)]
struct BcBlock {
    start: u32,
    /// Index of the final instruction (inclusive).
    last: u32,
    succs: Vec<u32>,
}

/// Per-method bytecode CFG.
struct BcCfg {
    blocks: BTreeMap<u32, BcBlock>,
    headers: HashSet<u32>,
    rpo: Vec<u32>,
}

/// Checks reducibility: every DFS back edge must target a block that
/// dominates its source (a natural loop). Irreducible regions (a cycle
/// entered other than through its header) cannot be expressed with
/// `LoopBegin`/`LoopEnd` and force an interpreter fallback — the same
/// policy as structured-IR JITs.
fn check_reducible(cfg: &BcCfg) -> Result<(), Bailout> {
    // Iterative dominators over the bytecode CFG (blocks keyed by leader).
    let rpo = &cfg.rpo;
    let pos: HashMap<u32, usize> = rpo.iter().enumerate().map(|(i, &b)| (b, i)).collect();
    let mut preds: HashMap<u32, Vec<u32>> = HashMap::new();
    for (&b, block) in &cfg.blocks {
        for &s in &block.succs {
            preds.entry(s).or_default().push(b);
        }
    }
    let mut idom: HashMap<u32, u32> = HashMap::new();
    idom.insert(rpo[0], rpo[0]);
    let intersect = |idom: &HashMap<u32, u32>, mut a: u32, mut b: u32| -> u32 {
        while a != b {
            while pos[&a] > pos[&b] {
                a = idom[&a];
            }
            while pos[&b] > pos[&a] {
                b = idom[&b];
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new: Option<u32> = None;
            for &p in preds.get(&b).into_iter().flatten() {
                if !idom.contains_key(&p) || !pos.contains_key(&p) {
                    continue;
                }
                new = Some(match new {
                    None => p,
                    Some(cur) => intersect(&idom, cur, p),
                });
            }
            if let Some(n) = new {
                if idom.get(&b) != Some(&n) {
                    idom.insert(b, n);
                    changed = true;
                }
            }
        }
    }
    let dominates = |a: u32, mut b: u32| -> bool {
        loop {
            if a == b {
                return true;
            }
            match idom.get(&b) {
                Some(&i) if i != b => b = i,
                _ => return false,
            }
        }
    };
    for (&b, block) in &cfg.blocks {
        if !pos.contains_key(&b) {
            continue; // unreachable
        }
        for &s in &block.succs {
            if cfg.headers.contains(&s) && pos[&s] <= pos[&b] && !dominates(s, b) {
                return Err(Bailout::Irreducible);
            }
        }
    }
    Ok(())
}

fn analyze_bytecode(code: &[Insn], exception_table: &[ExceptionEntry]) -> BcCfg {
    let mut leaders: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    leaders.insert(0);
    for (i, insn) in code.iter().enumerate() {
        if let Some(t) = insn.branch_target() {
            leaders.insert(t);
            leaders.insert(i as u32 + 1);
        }
        if insn.is_terminator() && i + 1 < code.len() {
            leaders.insert(i as u32 + 1);
        }
    }
    // Exception handlers are entered abruptly: each handler starts a block.
    for e in exception_table {
        leaders.insert(e.handler);
    }
    let leader_list: Vec<u32> = leaders
        .iter()
        .copied()
        .filter(|&l| (l as usize) < code.len())
        .collect();
    let mut blocks = BTreeMap::new();
    for (k, &start) in leader_list.iter().enumerate() {
        let next_leader = leader_list.get(k + 1).copied().unwrap_or(code.len() as u32);
        // The block ends at the first branch/terminator, or just before
        // the next leader.
        let mut last = start;
        for i in start..next_leader {
            last = i;
            let insn = code[i as usize];
            if insn.branch_target().is_some() || insn.is_terminator() {
                break;
            }
        }
        let insn = code[last as usize];
        let mut succs = Vec::new();
        if insn == Insn::Athrow {
            // Exception edges: every covering handler is a potential
            // successor, in table (dispatch) order. A catch-all always
            // matches, so later entries are unreachable from here.
            for e in exception_table.iter().filter(|e| e.covers(last)) {
                succs.push(e.handler);
                if e.catch_class.is_none() {
                    break;
                }
            }
            succs.sort_unstable();
            succs.dedup();
        } else if !insn.is_terminator() {
            match insn {
                Insn::Goto(t) => succs.push(t),
                _ => {
                    if let Some(t) = insn.branch_target() {
                        succs.push(t);
                    }
                    succs.push(last + 1);
                }
            }
        }
        blocks.insert(start, BcBlock { start, last, succs });
    }

    // DFS for RPO and back-edge (loop header) discovery.
    let mut headers = HashSet::new();
    let mut color: HashMap<u32, u8> = HashMap::new(); // 1 = on stack, 2 = done
    let mut rpo_rev = Vec::new();
    let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
    color.insert(0, 1);
    while let Some((b, child)) = stack.last_mut() {
        let block = &blocks[b];
        if *child < block.succs.len() {
            let s = block.succs[*child];
            *child += 1;
            match color.get(&s).copied().unwrap_or(0) {
                0 => {
                    color.insert(s, 1);
                    stack.push((s, 0));
                }
                1 => {
                    headers.insert(s);
                }
                _ => {}
            }
        } else {
            color.insert(*b, 2);
            rpo_rev.push(*b);
            stack.pop();
        }
    }
    rpo_rev.reverse();
    BcCfg {
        blocks,
        headers,
        rpo: rpo_rev,
    }
}

struct LoopCtx {
    loop_begin: NodeId,
    /// One phi per local slot then per stack slot.
    phis: Vec<NodeId>,
    template: FlowState,
}

/// Per-bci live-local sets (backward dataflow: `Load` uses, `Store`
/// defines). HotSpot's interpreter frames clear dead locals and Graal's
/// frame states inherit that; we reproduce it so that values (and in
/// particular allocations) dead across a loop back edge or merge are not
/// artificially kept alive by frame states.
///
/// Exception-table entries add edges from every covered bci to the
/// handler: a local read only by the handler must stay live throughout the
/// protected range, because a deopt anywhere inside it can be followed by
/// interpreter-side unwinding into that handler — clearing the slot to
/// null in the deopt state would hand the handler a corrupted frame.
fn local_liveness(code: &[Insn], max_locals: u16, handlers: &[ExceptionEntry]) -> Vec<Vec<bool>> {
    let n = code.len();
    let mut live: Vec<Vec<bool>> = vec![vec![false; max_locals as usize]; n];
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..n).rev() {
            let insn = code[i];
            let mut out = vec![false; max_locals as usize];
            if let Some(t) = insn.branch_target() {
                for (k, &b) in live[t as usize].iter().enumerate() {
                    out[k] = out[k] || b;
                }
            }
            if insn.falls_through() && i + 1 < n {
                for (k, &b) in live[i + 1].iter().enumerate() {
                    out[k] = out[k] || b;
                }
            }
            for e in handlers {
                if e.covers(i as u32) && (e.handler as usize) < n {
                    for (k, &b) in live[e.handler as usize].iter().enumerate() {
                        out[k] = out[k] || b;
                    }
                }
            }
            match insn {
                Insn::Load(k) => out[k as usize] = true,
                Insn::Store(k) => out[k as usize] = false,
                _ => {}
            }
            if out != live[i] {
                live[i] = out;
                changed = true;
            }
        }
    }
    live
}

/// Per-(possibly inlined) method parsing context.
struct MethodCtx {
    method: MethodId,
    depth: usize,
    cfg: BcCfg,
    incoming: HashMap<u32, Vec<(NodeId, FlowState)>>,
    loops: HashMap<u32, LoopCtx>,
    processed: HashSet<u32>,
    /// (attach point, return value) per reachable return.
    exits: Vec<(NodeId, Option<NodeId>)>,
}

/// The graph builder.
pub struct GraphBuilder<'a> {
    program: &'a Program,
    profiles: Option<&'a ProfileStore>,
    options: &'a BuildOptions,
    /// Interprocedural summaries for the summary inline policy (absent →
    /// the policy degrades to the size rule).
    summaries: Option<&'a ProgramSummaries>,
    graph: Graph,
    /// Methods on the active inline chain (root included) — a set, so the
    /// per-call-site recursion check is O(1) instead of O(depth).
    inline_active: HashSet<MethodId>,
    /// Inline decisions in parse order, one per resolved call site.
    decisions: Vec<InlineDecisionRec>,
    /// Receiver-type speculations in parse order (mono guards and PICs).
    guards: Vec<DevirtGuardRec>,
    /// Frame state of the innermost enclosing caller while building an
    /// inlined callee (becomes the `outer` of the callee's frame states).
    current_outer: Option<NodeId>,
    /// Per-method local-liveness tables (lazily computed).
    liveness: HashMap<MethodId, Vec<Vec<bool>>>,
    /// Per-method transitive may-throw facts (indexed by method id):
    /// whether calling the method can raise a catchable `athrow`
    /// exception. Such callees are never inlined — compiled frames then
    /// contain no cross-frame exception edges, and a throwing out-of-line
    /// callee is handled by deoptimizing at the call site.
    may_throw: Vec<bool>,
}

/// Transitive may-throw fixpoint over the closed program: a method may
/// throw if its own bytecode contains `athrow` or it calls (through any
/// virtual implementation) a method that may.
fn compute_may_throw(program: &Program) -> Vec<bool> {
    let n = program.methods.len();
    let mut may: Vec<bool> = program.methods.iter().map(|m| m.has_athrow()).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            if may[i] {
                continue;
            }
            let calls_throwing = program.methods[i].code.iter().any(|insn| match insn {
                Insn::InvokeStatic(t) => may[t.index()],
                Insn::InvokeVirtual(t) => (0..program.classes.len()).any(|c| {
                    program
                        .resolve_virtual(ClassId::from_index(c), *t)
                        .is_ok_and(|m| may[m.index()])
                }),
                _ => false,
            });
            if calls_throwing {
                may[i] = true;
                changed = true;
            }
        }
    }
    may
}

/// Builds the IR graph of `method`, inlining per `options` and speculating
/// from `profiles`.
///
/// # Errors
///
/// Returns a [`Bailout`] when the method cannot be represented (the VM
/// then keeps interpreting it).
pub fn build_graph(
    program: &Program,
    method: MethodId,
    profiles: Option<&ProfileStore>,
    options: &BuildOptions,
) -> Result<Graph, Bailout> {
    build_graph_with(program, method, profiles, options, None).map(|(graph, _, _)| graph)
}

/// [`build_graph`] with interprocedural summaries for the summary inline
/// policy, also returning the per-call-site inline decisions and the
/// receiver-type speculations planted.
///
/// # Errors
///
/// Returns a [`Bailout`] when the method cannot be represented.
pub fn build_graph_with(
    program: &Program,
    method: MethodId,
    profiles: Option<&ProfileStore>,
    options: &BuildOptions,
    summaries: Option<&ProgramSummaries>,
) -> Result<(Graph, Vec<InlineDecisionRec>, Vec<DevirtGuardRec>), Bailout> {
    let mut builder = GraphBuilder {
        program,
        profiles,
        options,
        summaries,
        graph: Graph::new(),
        inline_active: HashSet::from([method]),
        decisions: Vec::new(),
        guards: Vec::new(),
        current_outer: None,
        liveness: HashMap::new(),
        may_throw: compute_may_throw(program),
    };
    let m = program.method(method);
    let mut args = Vec::new();
    for i in 0..m.param_count {
        args.push(builder.graph.add(NodeKind::Param { index: i }, vec![]));
    }
    let start = builder.graph.start;
    let exits = builder.build_method(method, args, None, 0, start)?;
    for (attach, value) in exits {
        let ret = builder.graph.add(
            NodeKind::Return,
            match value {
                Some(v) => vec![v],
                None => vec![],
            },
        );
        builder.graph.set_next(attach, ret);
    }
    builder.demote_empty_loops();
    Ok((builder.graph, builder.decisions, builder.guards))
}

impl<'a> GraphBuilder<'a> {
    fn check_budget(&self) -> Result<(), Bailout> {
        if self.graph.len() > self.options.max_graph_nodes {
            return Err(Bailout::TooLarge);
        }
        Ok(())
    }

    fn make_state(&mut self, method: MethodId, bci: u32, st: &FlowState) -> NodeId {
        self.make_state_with(method, bci, &st.locals, &st.stack, &st.locks)
    }

    fn make_state_with(
        &mut self,
        method: MethodId,
        bci: u32,
        locals: &[NodeId],
        stack: &[NodeId],
        locks: &[LockEntry],
    ) -> NodeId {
        let outer = self.current_outer;
        // Dead locals are cleared (stored as null), as in HotSpot frames:
        // this keeps dead values — especially allocations — from being
        // pinned by deoptimization metadata.
        if !self.liveness.contains_key(&method) {
            let m = self.program.method(method);
            let table = local_liveness(&m.code, m.max_locals, &m.exception_table);
            self.liveness.insert(method, table);
        }
        let live_here = self.liveness[&method].get(bci as usize).cloned();
        let mut inputs: Vec<NodeId> = locals.to_vec();
        if let Some(live_here) = live_here {
            let null = self.graph.const_null();
            for (slot, v) in inputs.iter_mut().enumerate() {
                if !live_here.get(slot).copied().unwrap_or(false) {
                    *v = null;
                }
            }
        }
        inputs.extend_from_slice(stack);
        inputs.extend(locks.iter().map(|l| l.object));
        if let Some(o) = outer {
            inputs.push(o);
        }
        let mut data = FrameStateData::new(
            method,
            bci,
            locals.len() as u32,
            stack.len() as u32,
            locks.len() as u32,
            outer.is_some(),
        );
        data.lock_from_sync = locks.iter().map(|l| l.from_sync).collect();
        self.graph.add_frame_state(data, inputs)
    }

    /// Parses `method` into the graph starting at `attach`; returns the
    /// open exit edges (attach point + return value).
    fn build_method(
        &mut self,
        method: MethodId,
        args: Vec<NodeId>,
        outer_state: Option<NodeId>,
        depth: usize,
        attach: NodeId,
    ) -> Result<Vec<(NodeId, Option<NodeId>)>, Bailout> {
        let m = self.program.method(method).clone();
        let cfg = analyze_bytecode(&m.code, &m.exception_table);
        check_reducible(&cfg)?;
        let mut ctx = MethodCtx {
            method,
            depth,
            cfg,
            incoming: HashMap::new(),
            loops: HashMap::new(),
            processed: HashSet::new(),
            exits: Vec::new(),
        };

        // Entry state: parameters in the first locals.
        let mut locals = args.clone();
        let null = self.graph.const_null();
        locals.resize(m.max_locals as usize, null);
        let saved_outer = self.current_outer;
        self.current_outer = outer_state;
        let entry_fs = self.make_state_with(method, 0, &locals, &[], &[]);
        let mut state = FlowState {
            locals,
            stack: Vec::new(),
            locks: Vec::new(),
            deopt_state: entry_fs,
        };

        let mut tail = attach;
        if m.is_synchronized {
            let recv = state.locals[0];
            let me = self.graph.add(NodeKind::MonitorEnter, vec![recv]);
            self.graph.set_next(tail, me);
            tail = me;
            state.locks.push(LockEntry {
                object: recv,
                from_sync: true,
            });
            let fs = self.make_state(method, 0, &state);
            self.graph.set_state_after(me, Some(fs));
            state.deopt_state = fs;
        }
        ctx.incoming.entry(0).or_default().push((tail, state));

        let rpo = ctx.cfg.rpo.clone();
        for leader in rpo {
            self.check_budget()?;
            self.process_bc_block(&mut ctx, leader)?;
        }
        self.current_outer = saved_outer;
        Ok(ctx.exits)
    }

    fn process_bc_block(&mut self, ctx: &mut MethodCtx, leader: u32) -> Result<(), Bailout> {
        let edges = ctx.incoming.remove(&leader).unwrap_or_default();
        if edges.is_empty() {
            return Ok(()); // unreachable (e.g. a speculated-away branch)
        }
        ctx.processed.insert(leader);
        let is_header = ctx.cfg.headers.contains(&leader);
        let (mut tail, mut state) = if is_header {
            self.enter_loop_header(ctx, leader, edges)?
        } else if edges.len() == 1 {
            let (t, s) = edges.into_iter().next().unwrap();
            (t, s)
        } else {
            self.merge_edges(ctx, leader, edges)?
        };

        let block = ctx.cfg.blocks[&leader].clone();
        let mut bci = block.start;
        loop {
            self.check_budget()?;
            let insn = self.program.method(ctx.method).code[bci as usize];
            let done = self.interpret_insn(ctx, insn, bci, &mut tail, &mut state)?;
            if done || bci == block.last {
                break;
            }
            bci += 1;
        }
        // Fall-through edge (block ended without a branch/terminator).
        let last_insn = self.program.method(ctx.method).code[block.last as usize];
        if !last_insn.is_terminator() && last_insn.branch_target().is_none() {
            self.emit_edge(ctx, block.last + 1, tail, state)?;
        }
        Ok(())
    }

    fn merge_edges(
        &mut self,
        ctx: &mut MethodCtx,
        leader: u32,
        edges: Vec<(NodeId, FlowState)>,
    ) -> Result<(NodeId, FlowState), Bailout> {
        // Lock stacks must agree structurally.
        for (_, s) in &edges {
            if s.locks != edges[0].1.locks {
                return Err(Bailout::UnstructuredLocking);
            }
        }
        let mut ends = Vec::new();
        for (attach, _) in &edges {
            let end = self.graph.add(NodeKind::End, vec![]);
            self.graph.set_next(*attach, end);
            ends.push(end);
        }
        let merge = self.graph.add(NodeKind::Merge { ends }, vec![]);
        let n_locals = edges[0].1.locals.len();
        let n_stack = edges[0].1.stack.len();
        debug_assert!(edges.iter().all(|(_, s)| s.stack.len() == n_stack));
        let mut merged = edges[0].1.clone();
        for slot in 0..n_locals + n_stack {
            let get = |s: &FlowState| {
                if slot < n_locals {
                    s.locals[slot]
                } else {
                    s.stack[slot - n_locals]
                }
            };
            let first = get(&edges[0].1);
            if edges.iter().all(|(_, s)| get(s) == first) {
                continue;
            }
            let inputs: Vec<NodeId> = edges.iter().map(|(_, s)| get(s)).collect();
            let phi = self.graph.add(NodeKind::Phi { merge }, inputs);
            if slot < n_locals {
                merged.locals[slot] = phi;
            } else {
                merged.stack[slot - n_locals] = phi;
            }
        }
        let fs = self.make_state(ctx.method, leader, &merged);
        self.graph.set_state_after(merge, Some(fs));
        merged.deopt_state = fs;
        Ok((merge, merged))
    }

    fn enter_loop_header(
        &mut self,
        ctx: &mut MethodCtx,
        leader: u32,
        edges: Vec<(NodeId, FlowState)>,
    ) -> Result<(NodeId, FlowState), Bailout> {
        // Pre-merge multiple forward entries so the LoopBegin has exactly
        // one forward end.
        let (attach, entry_state) = if edges.len() == 1 {
            let (t, s) = edges.into_iter().next().unwrap();
            (t, s)
        } else {
            self.merge_edges(ctx, leader, edges)?
        };
        let end = self.graph.add(NodeKind::End, vec![]);
        self.graph.set_next(attach, end);
        let loop_begin = self
            .graph
            .add(NodeKind::LoopBegin { ends: vec![end] }, vec![]);
        let mut template = entry_state.clone();
        let mut phis = Vec::new();
        for slot in 0..template.locals.len() + template.stack.len() {
            let n_locals = template.locals.len();
            let value = if slot < n_locals {
                template.locals[slot]
            } else {
                template.stack[slot - n_locals]
            };
            let phi = self
                .graph
                .add(NodeKind::Phi { merge: loop_begin }, vec![value]);
            phis.push(phi);
            if slot < n_locals {
                template.locals[slot] = phi;
            } else {
                template.stack[slot - n_locals] = phi;
            }
        }
        let fs = self.make_state(ctx.method, leader, &template);
        self.graph.set_state_after(loop_begin, Some(fs));
        template.deopt_state = fs;
        ctx.loops.insert(
            leader,
            LoopCtx {
                loop_begin,
                phis,
                template: template.clone(),
            },
        );
        Ok((loop_begin, template))
    }

    fn emit_edge(
        &mut self,
        ctx: &mut MethodCtx,
        target: u32,
        attach: NodeId,
        state: FlowState,
    ) -> Result<(), Bailout> {
        if let Some(loop_ctx) = ctx.loops.get(&target) {
            // Back edge.
            if state.locks != loop_ctx.template.locks {
                return Err(Bailout::UnstructuredLocking);
            }
            let loop_begin = loop_ctx.loop_begin;
            let phis = loop_ctx.phis.clone();
            let n_locals = state.locals.len();
            let le = self.graph.add(NodeKind::LoopEnd, vec![]);
            self.graph.set_next(attach, le);
            self.graph.add_merge_end(loop_begin, le);
            for (slot, phi) in phis.iter().enumerate() {
                let value = if slot < n_locals {
                    state.locals[slot]
                } else {
                    state.stack[slot - n_locals]
                };
                self.graph.push_input(*phi, value);
            }
            return Ok(());
        }
        if ctx.processed.contains(&target) {
            return Err(Bailout::Irreducible);
        }
        ctx.incoming
            .entry(target)
            .or_default()
            .push((attach, state));
        Ok(())
    }

    fn append(&mut self, tail: &mut NodeId, node: NodeId) {
        self.graph.set_next(*tail, node);
        *tail = node;
    }

    fn branch_profile(&self, method: MethodId, bci: u32) -> Option<(u64, u64)> {
        self.profiles
            .and_then(|p| p.branch(method, bci))
            .map(|b| (b.taken, b.not_taken))
    }

    /// Translates one conditional branch: emits either a speculation guard
    /// (when the profile says one side never happens) or an `If`.
    #[allow(clippy::too_many_arguments)]
    fn branch(
        &mut self,
        ctx: &mut MethodCtx,
        cond: NodeId,
        taken: u32,
        fall: u32,
        bci: u32,
        tail: &mut NodeId,
        state: &mut FlowState,
    ) -> Result<(), Bailout> {
        if self.options.speculate_branches {
            if let Some((t, nt)) = self.branch_profile(ctx.method, bci) {
                let total = t + nt;
                if total >= self.options.branch_threshold {
                    if t == 0 {
                        // Deopt if the condition is true.
                        let guard = self.graph.add(
                            NodeKind::Guard {
                                reason: DeoptReason::UntakenBranch,
                                negated: true,
                            },
                            vec![cond],
                        );
                        self.graph.set_state_after(guard, Some(state.deopt_state));
                        self.append(tail, guard);
                        return self.emit_edge(ctx, fall, *tail, state.clone());
                    }
                    if nt == 0 {
                        let guard = self.graph.add(
                            NodeKind::Guard {
                                reason: DeoptReason::UntakenBranch,
                                negated: false,
                            },
                            vec![cond],
                        );
                        self.graph.set_state_after(guard, Some(state.deopt_state));
                        self.append(tail, guard);
                        return self.emit_edge(ctx, taken, *tail, state.clone());
                    }
                }
            }
        }
        let iff = self.graph.add(NodeKind::If, vec![cond]);
        self.graph.set_next(*tail, iff);
        let bt = self.graph.add(NodeKind::Begin, vec![]);
        let bf = self.graph.add(NodeKind::Begin, vec![]);
        self.graph.set_if_targets(iff, bt, bf);
        self.emit_edge(ctx, taken, bt, state.clone())?;
        self.emit_edge(ctx, fall, bf, state.clone())?;
        Ok(())
    }

    /// Lowers `athrow` control flow: wires exception edges to covering
    /// handlers — statically when the thrown value's dynamic class is
    /// known exactly (a direct allocation), otherwise through an
    /// `InstanceOf` dispatch cascade in table order — and funnels the
    /// uncaught remainder into an [`NodeKind::Unwind`] sink after
    /// releasing every monitor the frame holds. The throw is a hard
    /// escape: `pea-core` materializes the exception (and anything
    /// reachable from it) at each handler entry and at the sink.
    fn lower_throw(
        &mut self,
        ctx: &mut MethodCtx,
        exc: NodeId,
        bci: u32,
        attach: NodeId,
        state: FlowState,
    ) -> Result<(), Bailout> {
        let mut tail = attach;
        let static_class = match self.graph.kind(exc) {
            NodeKind::New { class } => Some(*class),
            _ => None,
        };
        let entries: Vec<ExceptionEntry> = self
            .program
            .method(ctx.method)
            .handlers_at(bci)
            .cloned()
            .collect();
        for e in &entries {
            match (e.catch_class, static_class) {
                (None, _) => {
                    // A catch-all always matches: dispatch ends here.
                    return self.emit_handler_edge(ctx, e.handler, tail, &state, exc);
                }
                (Some(c), Some(k)) => {
                    if self.program.is_subclass_of(k, c) {
                        return self.emit_handler_edge(ctx, e.handler, tail, &state, exc);
                    }
                    // Statically known not to match: skip the entry.
                }
                (Some(c), None) => {
                    let cond = self.graph.add(
                        NodeKind::InstanceOf {
                            class: c,
                            exact: false,
                        },
                        vec![exc],
                    );
                    self.append(&mut tail, cond);
                    let iff = self.graph.add(NodeKind::If, vec![cond]);
                    self.graph.set_next(tail, iff);
                    let bt = self.graph.add(NodeKind::Begin, vec![]);
                    let bf = self.graph.add(NodeKind::Begin, vec![]);
                    self.graph.set_if_targets(iff, bt, bf);
                    self.emit_handler_edge(ctx, e.handler, bt, &state, exc)?;
                    tail = bf;
                }
            }
        }
        // No (remaining) handler covers the throw: the exception leaves
        // the frame. Release held monitors innermost-first — exactly what
        // the interpreter does when unwinding past a frame — then sink.
        let mut st = state;
        while let Some(entry) = st.locks.pop() {
            let mx = self.graph.add(NodeKind::MonitorExit, vec![entry.object]);
            self.append(&mut tail, mx);
            let fs = self.make_state_with(ctx.method, bci, &st.locals, &[exc], &st.locks);
            self.graph.set_state_after(mx, Some(fs));
            st.deopt_state = fs;
        }
        let uw = self.graph.add(NodeKind::Unwind, vec![exc]);
        self.graph.set_next(tail, uw);
        Ok(())
    }

    /// Emits one exception edge into `handler`: the handler block starts
    /// with the frame's locals and locks intact and an operand stack
    /// holding exactly the exception object.
    fn emit_handler_edge(
        &mut self,
        ctx: &mut MethodCtx,
        handler: u32,
        attach: NodeId,
        state: &FlowState,
        exc: NodeId,
    ) -> Result<(), Bailout> {
        let mut hstate = state.clone();
        hstate.stack.clear();
        hstate.stack.push(exc);
        let fs = self.make_state(ctx.method, handler, &hstate);
        hstate.deopt_state = fs;
        self.emit_edge(ctx, handler, attach, hstate)
    }

    /// Interprets one instruction. Returns `true` when the block's control
    /// flow is complete (branch, return, throw).
    #[allow(clippy::too_many_lines)]
    fn interpret_insn(
        &mut self,
        ctx: &mut MethodCtx,
        insn: Insn,
        bci: u32,
        tail: &mut NodeId,
        state: &mut FlowState,
    ) -> Result<bool, Bailout> {
        let g = &mut self.graph;
        match insn {
            Insn::Const(v) => {
                let c = g.const_int(v);
                state.stack.push(c);
            }
            Insn::ConstNull => {
                let c = g.const_null();
                state.stack.push(c);
            }
            Insn::Load(n) => state.stack.push(state.locals[n as usize]),
            Insn::Store(n) => {
                let v = state.stack.pop().expect("verified stack");
                state.locals[n as usize] = v;
            }
            Insn::Add
            | Insn::Sub
            | Insn::Mul
            | Insn::And
            | Insn::Or
            | Insn::Xor
            | Insn::Shl
            | Insn::Shr => {
                let b = state.stack.pop().expect("stack");
                let a = state.stack.pop().expect("stack");
                let op = match insn {
                    Insn::Add => ArithOp::Add,
                    Insn::Sub => ArithOp::Sub,
                    Insn::Mul => ArithOp::Mul,
                    Insn::And => ArithOp::And,
                    Insn::Or => ArithOp::Or,
                    Insn::Xor => ArithOp::Xor,
                    Insn::Shl => ArithOp::Shl,
                    _ => ArithOp::Shr,
                };
                let r = g.add(NodeKind::Arith { op }, vec![a, b]);
                state.stack.push(r);
            }
            Insn::Div | Insn::Rem => {
                let b = state.stack.pop().expect("stack");
                let a = state.stack.pop().expect("stack");
                let op = if insn == Insn::Div {
                    ArithOp::Div
                } else {
                    ArithOp::Rem
                };
                let r = g.add(NodeKind::FixedArith { op }, vec![a, b]);
                self.append(tail, r);
                state.stack.push(r);
            }
            Insn::Neg => {
                let a = state.stack.pop().expect("stack");
                let r = g.add(NodeKind::Arith { op: ArithOp::Neg }, vec![a]);
                state.stack.push(r);
            }
            Insn::Pop => {
                state.stack.pop().expect("stack");
            }
            Insn::Dup => {
                let v = *state.stack.last().expect("stack");
                state.stack.push(v);
            }
            Insn::Swap => {
                let len = state.stack.len();
                state.stack.swap(len - 1, len - 2);
            }
            Insn::Goto(t) => {
                let s = state.clone();
                let at = *tail;
                self.emit_edge(ctx, t, at, s)?;
                return Ok(true);
            }
            Insn::IfCmp(op, t) => {
                let b = state.stack.pop().expect("stack");
                let a = state.stack.pop().expect("stack");
                let cond = self.graph.add(NodeKind::Compare { op }, vec![a, b]);
                self.branch(ctx, cond, t, bci + 1, bci, tail, state)?;
                return Ok(true);
            }
            Insn::IfNull(t) | Insn::IfNonNull(t) => {
                let v = state.stack.pop().expect("stack");
                let mut cond = self.graph.add(NodeKind::IsNull, vec![v]);
                self.append(tail, cond);
                if matches!(insn, Insn::IfNonNull(_)) {
                    let zero = self.graph.const_int(0);
                    cond = self
                        .graph
                        .add(NodeKind::Compare { op: CmpOp::Eq }, vec![cond, zero]);
                }
                self.branch(ctx, cond, t, bci + 1, bci, tail, state)?;
                return Ok(true);
            }
            Insn::IfRefEq(t) | Insn::IfRefNe(t) => {
                let b = state.stack.pop().expect("stack");
                let a = state.stack.pop().expect("stack");
                let mut cond = self.graph.add(NodeKind::RefEq, vec![a, b]);
                self.append(tail, cond);
                if matches!(insn, Insn::IfRefNe(_)) {
                    let zero = self.graph.const_int(0);
                    cond = self
                        .graph
                        .add(NodeKind::Compare { op: CmpOp::Eq }, vec![cond, zero]);
                }
                self.branch(ctx, cond, t, bci + 1, bci, tail, state)?;
                return Ok(true);
            }
            Insn::New(class) => {
                let n = self.graph.add(NodeKind::New { class }, vec![]);
                self.graph.set_provenance(n, ctx.method, bci);
                self.append(tail, n);
                state.stack.push(n);
            }
            Insn::NewArray(kind) => {
                let len = state.stack.pop().expect("stack");
                let n = self.graph.add(NodeKind::NewArray { kind }, vec![len]);
                self.graph.set_provenance(n, ctx.method, bci);
                self.append(tail, n);
                state.stack.push(n);
            }
            Insn::GetField(field) => {
                let obj = state.stack.pop().expect("stack");
                let n = self.graph.add(NodeKind::LoadField { field }, vec![obj]);
                self.append(tail, n);
                state.stack.push(n);
            }
            Insn::PutField(field) => {
                let value = state.stack.pop().expect("stack");
                let obj = state.stack.pop().expect("stack");
                let n = self
                    .graph
                    .add(NodeKind::StoreField { field }, vec![obj, value]);
                self.append(tail, n);
                let fs = self.make_state(ctx.method, bci + 1, state);
                self.graph.set_state_after(n, Some(fs));
                state.deopt_state = fs;
            }
            Insn::GetStatic(id) => {
                let n = self.graph.add(NodeKind::GetStatic { id }, vec![]);
                self.append(tail, n);
                state.stack.push(n);
            }
            Insn::PutStatic(id) => {
                let value = state.stack.pop().expect("stack");
                let n = self.graph.add(NodeKind::PutStatic { id }, vec![value]);
                self.append(tail, n);
                let fs = self.make_state(ctx.method, bci + 1, state);
                self.graph.set_state_after(n, Some(fs));
                state.deopt_state = fs;
            }
            Insn::ArrayLoad => {
                let idx = state.stack.pop().expect("stack");
                let arr = state.stack.pop().expect("stack");
                let n = self.graph.add(NodeKind::LoadIndexed, vec![arr, idx]);
                self.append(tail, n);
                state.stack.push(n);
            }
            Insn::ArrayStore => {
                let value = state.stack.pop().expect("stack");
                let idx = state.stack.pop().expect("stack");
                let arr = state.stack.pop().expect("stack");
                let n = self
                    .graph
                    .add(NodeKind::StoreIndexed, vec![arr, idx, value]);
                self.append(tail, n);
                let fs = self.make_state(ctx.method, bci + 1, state);
                self.graph.set_state_after(n, Some(fs));
                state.deopt_state = fs;
            }
            Insn::ArrayLength => {
                let arr = state.stack.pop().expect("stack");
                let n = self.graph.add(NodeKind::ArrayLen, vec![arr]);
                self.append(tail, n);
                state.stack.push(n);
            }
            Insn::InstanceOf(class) => {
                let v = state.stack.pop().expect("stack");
                let n = self.graph.add(
                    NodeKind::InstanceOf {
                        class,
                        exact: false,
                    },
                    vec![v],
                );
                self.append(tail, n);
                state.stack.push(n);
            }
            Insn::CheckCast(class) => {
                let v = state.stack.pop().expect("stack");
                let n = self.graph.add(NodeKind::CheckCast { class }, vec![v]);
                self.append(tail, n);
                state.stack.push(n);
            }
            Insn::MonitorEnter => {
                let obj = state.stack.pop().expect("stack");
                let n = self.graph.add(NodeKind::MonitorEnter, vec![obj]);
                self.append(tail, n);
                state.locks.push(LockEntry {
                    object: obj,
                    from_sync: false,
                });
                let fs = self.make_state(ctx.method, bci + 1, state);
                self.graph.set_state_after(n, Some(fs));
                state.deopt_state = fs;
            }
            Insn::MonitorExit => {
                let obj = state.stack.pop().expect("stack");
                match state.locks.last() {
                    Some(entry) if entry.object == obj && !entry.from_sync => {
                        state.locks.pop();
                    }
                    _ => return Err(Bailout::UnstructuredLocking),
                }
                let n = self.graph.add(NodeKind::MonitorExit, vec![obj]);
                self.append(tail, n);
                let fs = self.make_state(ctx.method, bci + 1, state);
                self.graph.set_state_after(n, Some(fs));
                state.deopt_state = fs;
            }
            Insn::InvokeStatic(target) => {
                self.do_invoke(ctx, target, false, bci, tail, state)?;
            }
            Insn::InvokeVirtual(target) => {
                self.do_invoke(ctx, target, true, bci, tail, state)?;
            }
            Insn::Return | Insn::ReturnValue => {
                let value = if insn == Insn::ReturnValue {
                    Some(state.stack.pop().expect("stack"))
                } else {
                    None
                };
                // Release the synchronized-method monitor, if any.
                if let Some(entry) = state.locks.last().cloned() {
                    if entry.from_sync {
                        state.locks.pop();
                        let mx = self.graph.add(NodeKind::MonitorExit, vec![entry.object]);
                        self.append(tail, mx);
                        let mut st = state.clone();
                        if let Some(v) = value {
                            st.stack.push(v);
                        }
                        let fs = self.make_state(ctx.method, bci, &st);
                        self.graph.set_state_after(mx, Some(fs));
                        state.deopt_state = fs;
                    }
                }
                if !state.locks.is_empty() {
                    return Err(Bailout::UnstructuredLocking);
                }
                ctx.exits.push((*tail, value));
                return Ok(true);
            }
            Insn::Throw => {
                let code = state.stack.pop().expect("stack");
                let t = self.graph.add(NodeKind::Throw, vec![code]);
                self.graph.set_next(*tail, t);
                return Ok(true);
            }
            Insn::Athrow => {
                if ctx.depth > 0 {
                    // Safety net: an inlined `athrow` must never be parsed.
                    // Cold-throw clearance only admits callees whose throw
                    // blocks are guarded away by branch speculation (the
                    // blocks are then unreachable and never built), so
                    // reaching this point means the clearance reasoning and
                    // the parser disagree — bail out rather than wire a
                    // frame-local `Unwind` that would skip caller handlers.
                    return Err(Bailout::Unsupported(
                        "athrow reachable in inlined callee".to_string(),
                    ));
                }
                let exc = state.stack.pop().expect("stack");
                // Throwing null raises an (uncatchable) NullPointer
                // runtime error: guard and let the interpreter re-execute
                // the athrow and raise it.
                let test = self.graph.add(NodeKind::IsNull, vec![exc]);
                self.append(tail, test);
                let guard = self.graph.add(
                    NodeKind::Guard {
                        reason: DeoptReason::NullCheck,
                        negated: true,
                    },
                    vec![test],
                );
                self.graph.set_state_after(guard, Some(state.deopt_state));
                self.append(tail, guard);
                let at = *tail;
                let st = state.clone();
                self.lower_throw(ctx, exc, bci, at, st)?;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// The summary inline policy (see [`InlinePolicy::Summary`]): decides
    /// from the callee's interprocedural escape summary and its profile
    /// call count whether the eligible candidate is worth inlining.
    fn summary_decision(
        &self,
        resolved: MethodId,
        args: &[NodeId],
        callee_len: usize,
    ) -> (bool, &'static str) {
        let Some(summaries) = self.summaries else {
            return size_rule(callee_len, self.options.inline_max_callee_code);
        };
        let callee = summaries.summary(resolved);
        // Classify the fresh allocations among the arguments: does the
        // callee keep any of them unpublished (scalar replacement can win
        // across the call), or does it globally publish everything we
        // would hand it?
        let mut alloc_flows_in = false;
        let mut published_alloc_arg = false;
        for (i, &arg) in args.iter().enumerate() {
            if matches!(
                self.graph.kind(arg),
                NodeKind::New { .. } | NodeKind::NewArray { .. }
            ) {
                let class = callee
                    .param_escape
                    .get(i)
                    .copied()
                    .unwrap_or(EscapeClass::GlobalEscape);
                if class == EscapeClass::GlobalEscape {
                    published_alloc_arg = true;
                } else {
                    alloc_flows_in = true;
                }
            }
        }
        if published_alloc_arg && !alloc_flows_in && callee.sites.is_empty() {
            // Every allocation we pass is globally published by the
            // callee and the callee allocates nothing itself: inlining
            // cannot save an allocation, however small the body.
            return (false, "publishes-argument");
        }
        if alloc_flows_in {
            // A virtualizable allocation flows into the callee: spend a
            // bigger budget, doubled again for profile-hot callees.
            let hot = self.profiles.is_some_and(|p| {
                p.invocation_count(resolved) >= self.options.devirtualize_threshold
            });
            let budget = self.options.inline_max_callee_code * if hot { 4 } else { 2 };
            return if callee_len <= budget {
                (true, "allocation-flows-in")
            } else {
                (false, "over-summary-budget")
            };
        }
        if callee.returns_fresh && callee_len <= self.options.inline_max_callee_code * 2 {
            // The callee hands back a fresh allocation; inlining exposes
            // it to the caller's PEA.
            return (true, "returns-fresh-allocation");
        }
        size_rule(callee_len, self.options.inline_max_callee_code)
    }

    /// Decides whether a `may_throw` callee is still safe to inline under
    /// the summary policy, from its path-qualified throw summary:
    ///
    /// * [`ThrowPath::CalleesOnly`] — the callee has no `athrow` of its
    ///   own; exceptions can only surface from its *residual* calls, which
    ///   deoptimize and unwind through rematerialized interpreter frames
    ///   at any inline depth. Transparent: inline freely.
    /// * [`ThrowPath::Guarded`] — every `athrow` sits behind one
    ///   conditional guard. If the branch profile proves each throw side
    ///   was never taken (and is warm enough to speculate on), branch
    ///   speculation will guard those sides away during parsing and the
    ///   `athrow` blocks are never built. Cold: inline speculatively.
    /// * [`ThrowPath::Never`] cannot co-occur with `may_throw` unless the
    ///   throw comes from callees (then the summary says `CalleesOnly`);
    ///   treat it as transparent for robustness.
    /// * [`ThrowPath::Always`]/[`ThrowPath::Sometimes`] — unguarded own
    ///   throws: keep the callee out-of-line, as before.
    fn cold_throw_clearance(&self, callee: MethodId) -> Result<ThrowClearance, &'static str> {
        if self.options.inline_policy != InlinePolicy::Summary {
            return Err("may-throw");
        }
        let Some(summaries) = self.summaries else {
            return Err("may-throw");
        };
        match &summaries.summary(callee).flow.throw_path {
            ThrowPath::Never | ThrowPath::CalleesOnly => Ok(ThrowClearance::Transparent),
            ThrowPath::Guarded(guards) => {
                if !self.options.speculate_branches {
                    return Err("may-throw");
                }
                for g in guards {
                    let Some((taken, not_taken)) = self.branch_profile(callee, g.bci) else {
                        return Err("no-throw-profile");
                    };
                    if taken + not_taken < self.options.branch_threshold {
                        return Err("no-throw-profile");
                    }
                    let throw_side = if g.throw_on_taken { taken } else { not_taken };
                    if throw_side != 0 {
                        return Err("throw-path-hot");
                    }
                }
                Ok(ThrowClearance::Cold)
            }
            ThrowPath::Always | ThrowPath::Sometimes => Err("may-throw"),
        }
    }

    /// Emits (or inlines) a call.
    fn do_invoke(
        &mut self,
        ctx: &mut MethodCtx,
        target: MethodId,
        virtual_call: bool,
        bci: u32,
        tail: &mut NodeId,
        state: &mut FlowState,
    ) -> Result<(), Bailout> {
        let callee_meta = self.program.method(target).clone();
        let argc = callee_meta.param_count as usize;
        let args: Vec<NodeId> = state.stack.split_off(state.stack.len() - argc);

        // Resolve the inline target.
        let mut resolved = target;
        let mut needs_type_guard = None;
        let mut devirtualized = !virtual_call;
        let mut pic_classes: Vec<ClassId> = Vec::new();
        if virtual_call {
            let mono = self
                .profiles
                .and_then(|p| p.receiver(ctx.method, bci))
                .and_then(|r| {
                    (r.total() >= self.options.devirtualize_threshold)
                        .then(|| r.monomorphic_class())
                        .flatten()
                });
            match mono {
                Some(class) => {
                    resolved = self
                        .program
                        .resolve_virtual(class, target)
                        .map_err(|e| Bailout::Unsupported(e.to_string()))?;
                    needs_type_guard = Some(class);
                    devirtualized = true;
                    self.guards.push(DevirtGuardRec {
                        caller: ctx.method,
                        bci,
                        callee: target,
                        classes: vec![class],
                    });
                }
                None => {
                    // Class-hierarchy fallback: if only one implementation
                    // exists among all loaded classes, call it directly
                    // (no guard needed in our closed world).
                    let mut impls = HashSet::new();
                    for c in 0..self.program.classes.len() {
                        let cid = pea_bytecode::ClassId::from_index(c);
                        if let Ok(m) = self.program.resolve_virtual(cid, target) {
                            impls.insert(m);
                        }
                    }
                    if impls.len() == 1 {
                        // Dispatch can only reach this one implementation
                        // in our closed world (class-hierarchy analysis).
                        resolved = impls.into_iter().next().unwrap();
                        devirtualized = true;
                    } else if self.options.speculate_dispatch {
                        // Polymorphic but shallow receiver profile: build
                        // an inline cache over the observed classes.
                        if let Some(r) = self.profiles.and_then(|p| p.receiver(ctx.method, bci)) {
                            if r.total() >= self.options.devirtualize_threshold
                                && (2..=MAX_PIC_CLASSES).contains(&r.classes().len())
                            {
                                // Hottest receiver first; class id breaks
                                // ties so the cascade is deterministic.
                                let mut cs = r.classes().to_vec();
                                cs.sort_by_key(|&(c, n)| (std::cmp::Reverse(n), c.index()));
                                pic_classes = cs.into_iter().map(|(c, _)| c).collect();
                            }
                        }
                    }
                }
            }
        }
        if !pic_classes.is_empty() {
            self.decisions.push(InlineDecisionRec {
                caller: ctx.method,
                bci,
                callee: target,
                policy: self.options.inline_policy,
                inlined: false,
                reason: "polymorphic-inline-cache",
            });
            self.guards.push(DevirtGuardRec {
                caller: ctx.method,
                bci,
                callee: target,
                classes: pic_classes.clone(),
            });
            return self.emit_pic(ctx, target, &pic_classes, args, bci, tail, state);
        }

        // Policy decision. Hard gates first (shared by every policy),
        // then the policy's own judgement; every resolved site records
        // exactly one decision for the trace.
        let callee_len = self.program.method(resolved).code.len();
        let (can_inline, reason) = if !self.options.inline {
            (false, "inlining-disabled")
        } else if !devirtualized {
            (false, "megamorphic")
        } else if self.inline_active.contains(&resolved) {
            (false, "recursive")
        } else if ctx.depth >= self.options.inline_max_depth {
            (false, "depth-limit")
        } else if self.may_throw[resolved.index()] {
            // A callee that can raise a catchable exception normally stays
            // out-of-line: compiled frames then never contain cross-frame
            // exception edges, and a throwing callee is handled by
            // deoptimizing at the call site and unwinding rematerialized
            // interpreter frames. The summary policy lifts this blanket
            // rule through the path-qualified throw summary (see
            // [`GraphBuilder::cold_throw_clearance`]): callee-only throw paths
            // are transparent to inlining, and provably cold own-throw
            // guards are speculated away during parsing.
            match self.cold_throw_clearance(resolved) {
                Err(why) => (false, why),
                Ok(clearance) => {
                    let (ok, why) = self.summary_decision(resolved, &args, callee_len);
                    if ok && clearance == ThrowClearance::Cold {
                        (true, "cold-throw-speculated")
                    } else {
                        (ok, why)
                    }
                }
            }
        } else {
            match self.options.inline_policy {
                InlinePolicy::Size => size_rule(callee_len, self.options.inline_max_callee_code),
                InlinePolicy::Summary => self.summary_decision(resolved, &args, callee_len),
            }
        };
        self.decisions.push(InlineDecisionRec {
            caller: ctx.method,
            bci,
            callee: resolved,
            policy: self.options.inline_policy,
            inlined: can_inline,
            reason,
        });

        if can_inline {
            if self.inline_active.len() >= MAX_INLINE_CHAIN {
                return Err(Bailout::RecursionLimit);
            }
            if virtual_call && needs_type_guard.is_none() {
                // CHA devirtualization has no type guard; a null receiver
                // must still raise, so guard on it (deopt → interpreter →
                // NullPointer).
                let recv = args[0];
                let test = self.graph.add(NodeKind::IsNull, vec![recv]);
                self.append(tail, test);
                let guard = self.graph.add(
                    NodeKind::Guard {
                        reason: DeoptReason::NullCheck,
                        negated: true,
                    },
                    vec![test],
                );
                self.graph.set_state_after(guard, Some(state.deopt_state));
                self.append(tail, guard);
            }
            if let Some(class) = needs_type_guard {
                let recv = args[0];
                let test = self
                    .graph
                    .add(NodeKind::InstanceOf { class, exact: true }, vec![recv]);
                self.append(tail, test);
                let guard = self.graph.add(
                    NodeKind::Guard {
                        reason: DeoptReason::TypeCheck,
                        negated: false,
                    },
                    vec![test],
                );
                self.graph.set_state_after(guard, Some(state.deopt_state));
                self.append(tail, guard);
            }
            // Caller state at the call site (arguments already popped);
            // the interpreter's resume pushes the return value and
            // continues after the invoke.
            let caller_state = self.make_state(ctx.method, bci, state);
            self.inline_active.insert(resolved);
            let exits =
                self.build_method(resolved, args, Some(caller_state), ctx.depth + 1, *tail)?;
            self.inline_active.remove(&resolved);
            if exits.is_empty() {
                // The callee never returns (always throws); compiling the
                // continuation is pointless — bail and keep interpreting.
                return Err(Bailout::Unsupported("inlined callee never returns".into()));
            }
            let (cont_tail, ret_val) = if exits.len() == 1 {
                exits.into_iter().next().unwrap()
            } else {
                let returns_value = callee_meta.returns_value;
                let mut ends = Vec::new();
                let mut values = Vec::new();
                for (attach, v) in &exits {
                    let end = self.graph.add(NodeKind::End, vec![]);
                    self.graph.set_next(*attach, end);
                    ends.push(end);
                    if returns_value {
                        values.push(v.expect("value-returning callee"));
                    }
                }
                let merge = self.graph.add(NodeKind::Merge { ends }, vec![]);
                let v = if returns_value {
                    if values.windows(2).all(|w| w[0] == w[1]) {
                        Some(values[0])
                    } else {
                        Some(self.graph.add(NodeKind::Phi { merge }, values))
                    }
                } else {
                    None
                };
                (merge, v)
            };
            *tail = cont_tail;
            if let Some(v) = ret_val {
                state.stack.push(v);
            }
            // Continuation state: resume after the invoke with the result
            // on the stack.
            let fs = self.make_state(ctx.method, bci + 1, state);
            if matches!(self.graph.kind(*tail), NodeKind::Merge { .. }) {
                self.graph.set_state_after(*tail, Some(fs));
            }
            state.deopt_state = fs;
            return Ok(());
        }

        // Out-of-line call.
        let invoke = self.graph.add(
            NodeKind::Invoke {
                target: resolved,
                virtual_call: virtual_call && resolved == target,
            },
            args,
        );
        self.append(tail, invoke);
        if callee_meta.returns_value {
            state.stack.push(invoke);
        }
        let fs = self.make_state(ctx.method, bci + 1, state);
        self.graph.set_state_after(invoke, Some(fs));
        state.deopt_state = fs;
        Ok(())
    }

    /// Compiles a polymorphic virtual call as an inline cache: a chain of
    /// exact receiver-type tests, one direct (still out-of-line) call per
    /// profiled class, and a deoptimizing final arm for receivers the
    /// profile never saw (`Deopt[type-check]` — the interpreter
    /// re-executes the dispatch and extends the profile).
    #[allow(clippy::too_many_arguments)]
    fn emit_pic(
        &mut self,
        ctx: &mut MethodCtx,
        target: MethodId,
        classes: &[ClassId],
        args: Vec<NodeId>,
        bci: u32,
        tail: &mut NodeId,
        state: &mut FlowState,
    ) -> Result<(), Bailout> {
        let returns_value = self.program.method(target).returns_value;
        let recv = args[0];
        let mut cur = *tail;
        let mut ends = Vec::with_capacity(classes.len());
        let mut vals = Vec::with_capacity(classes.len());
        for &class in classes {
            let m = self
                .program
                .resolve_virtual(class, target)
                .map_err(|e| Bailout::Unsupported(e.to_string()))?;
            let test = self
                .graph
                .add(NodeKind::InstanceOf { class, exact: true }, vec![recv]);
            self.graph.set_next(cur, test);
            let iff = self.graph.add(NodeKind::If, vec![test]);
            self.graph.set_next(test, iff);
            let bt = self.graph.add(NodeKind::Begin, vec![]);
            let bf = self.graph.add(NodeKind::Begin, vec![]);
            self.graph.set_if_targets(iff, bt, bf);
            let inv = self.graph.add(
                NodeKind::Invoke {
                    target: m,
                    virtual_call: false,
                },
                args.clone(),
            );
            self.graph.set_next(bt, inv);
            let mut st = state.clone();
            if returns_value {
                st.stack.push(inv);
            }
            let fs = self.make_state(ctx.method, bci + 1, &st);
            self.graph.set_state_after(inv, Some(fs));
            let end = self.graph.add(NodeKind::End, vec![]);
            self.graph.set_next(inv, end);
            ends.push(end);
            vals.push(inv);
            cur = bf;
        }
        // Unprofiled receiver (or null): transfer to the interpreter,
        // which re-dispatches (raising NullPointer for null receivers)
        // and extends the profile.
        let deopt = self.graph.add(
            NodeKind::Deopt {
                reason: DeoptReason::TypeCheck,
            },
            vec![],
        );
        self.graph.set_next(cur, deopt);
        self.graph.set_state_after(deopt, Some(state.deopt_state));
        let merge = self.graph.add(NodeKind::Merge { ends }, vec![]);
        *tail = merge;
        if returns_value {
            let phi = self.graph.add(NodeKind::Phi { merge }, vals);
            state.stack.push(phi);
        }
        let fs = self.make_state(ctx.method, bci + 1, state);
        self.graph.set_state_after(merge, Some(fs));
        state.deopt_state = fs;
        Ok(())
    }

    /// LoopBegins whose back edges were all speculated away degrade to
    /// plain merges (a LoopBegin needs at least one back edge).
    fn demote_empty_loops(&mut self) {
        let loops: Vec<NodeId> = self
            .graph
            .live_nodes()
            .filter(|&n| matches!(self.graph.kind(n), NodeKind::LoopBegin { .. }))
            .collect();
        for lb in loops {
            let ends = self.graph.merge_ends(lb).to_vec();
            if ends.len() == 1 {
                *self.graph.kind_mut(lb) = NodeKind::Merge { ends };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pea_bytecode::asm::parse_program;
    use pea_ir::verify::verify;

    fn build(src: &str, entry: &str) -> Graph {
        let program = parse_program(src).unwrap();
        pea_bytecode::verify_program(&program).unwrap();
        let method = program.static_method_by_name(entry).unwrap();
        let g = build_graph(&program, method, None, &BuildOptions::default()).unwrap();
        verify(&g)
            .unwrap_or_else(|e| panic!("graph does not verify: {e}\n{}", pea_ir::dump::dump(&g)));
        g
    }

    fn count(g: &Graph, pred: impl Fn(&NodeKind) -> bool) -> usize {
        g.live_nodes().filter(|&n| pred(g.kind(n))).count()
    }

    #[test]
    fn straight_line_arithmetic() {
        let g = build(
            "method f 2 returns { load 0 load 1 add const 2 mul retv }",
            "f",
        );
        assert_eq!(count(&g, |k| matches!(k, NodeKind::Return)), 1);
        assert_eq!(count(&g, |k| matches!(k, NodeKind::Arith { .. })), 2);
    }

    #[test]
    fn diamond_produces_merge_and_phi() {
        let g = build(
            "method f 1 returns {
                load 0 const 0 ifcmp lt Lneg
                const 1 goto Lend
            Lneg:
                const -1
            Lend:
                retv
            }",
            "f",
        );
        assert_eq!(count(&g, |k| matches!(k, NodeKind::Merge { .. })), 1);
        assert_eq!(count(&g, |k| matches!(k, NodeKind::Phi { .. })), 1);
        assert_eq!(count(&g, |k| matches!(k, NodeKind::If)), 1);
    }

    #[test]
    fn loop_produces_loop_begin_with_phis() {
        let g = build(
            "method f 1 returns {
                const 0 store 1
            Lhead:
                load 1 load 0 ifcmp ge Ldone
                load 1 const 1 add store 1
                goto Lhead
            Ldone:
                load 1 retv
            }",
            "f",
        );
        assert_eq!(count(&g, |k| matches!(k, NodeKind::LoopBegin { .. })), 1);
        assert!(count(&g, |k| matches!(k, NodeKind::Phi { .. })) >= 1);
    }

    #[test]
    fn objects_and_frame_states() {
        let g = build(
            "class Box { field v int }
             method f 1 returns {
                new Box store 1
                load 1 load 0 putfield Box.v
                load 1 getfield Box.v
                retv
             }",
            "f",
        );
        assert_eq!(count(&g, |k| matches!(k, NodeKind::New { .. })), 1);
        let store = g
            .live_nodes()
            .find(|&n| matches!(g.kind(n), NodeKind::StoreField { .. }))
            .unwrap();
        assert!(g.node(store).state_after.is_some());
    }

    #[test]
    fn static_call_inlined() {
        let g = build(
            "method g 2 returns { load 0 load 1 add retv }
             method f 0 returns { const 1 const 2 invokestatic g retv }",
            "f",
        );
        // Inlined: no Invoke node remains.
        assert_eq!(count(&g, |k| matches!(k, NodeKind::Invoke { .. })), 0);
        assert_eq!(count(&g, |k| matches!(k, NodeKind::Arith { .. })), 1);
    }

    #[test]
    fn recursive_call_not_inlined() {
        let g = build(
            "method f 1 returns {
                load 0 const 0 ifcmp le Lbase
                load 0 const 1 sub invokestatic f retv
            Lbase:
                const 0 retv
            }",
            "f",
        );
        assert_eq!(count(&g, |k| matches!(k, NodeKind::Invoke { .. })), 1);
    }

    #[test]
    fn recursion_is_rejected_with_a_dedicated_reason() {
        let program = parse_program(
            "method f 1 returns {
                load 0 const 0 ifcmp le Lbase
                load 0 const 1 sub invokestatic f retv
            Lbase:
                const 0 retv
            }",
        )
        .unwrap();
        pea_bytecode::verify_program(&program).unwrap();
        let method = program.static_method_by_name("f").unwrap();
        let (_, decisions, _) =
            build_graph_with(&program, method, None, &BuildOptions::default(), None).unwrap();
        assert_eq!(decisions.len(), 1);
        assert!(!decisions[0].inlined);
        assert_eq!(decisions[0].reason, "recursive");
        assert_eq!(decisions[0].callee, method);
    }

    #[test]
    fn absurd_depth_limit_hits_the_recursion_backstop() {
        // A non-recursive chain deeper than MAX_INLINE_CHAIN with the
        // configurable depth limit opened wide: the hard backstop must
        // turn the compilation into a RecursionLimit bailout rather than
        // letting parsing inline without bound.
        let mut src = String::new();
        let chain = MAX_INLINE_CHAIN + 4;
        for i in 0..chain {
            if i + 1 < chain {
                src.push_str(&format!(
                    "method m{i} 1 returns {{ load 0 invokestatic m{} retv }}\n",
                    i + 1
                ));
            } else {
                src.push_str(&format!("method m{i} 1 returns {{ load 0 retv }}\n"));
            }
        }
        let program = parse_program(&src).unwrap();
        pea_bytecode::verify_program(&program).unwrap();
        let method = program.static_method_by_name("m0").unwrap();
        let options = BuildOptions {
            inline_max_depth: chain + 8,
            ..BuildOptions::default()
        };
        let result = build_graph(&program, method, None, &options);
        assert!(matches!(result, Err(Bailout::RecursionLimit)), "{result:?}");
    }

    #[test]
    fn summary_policy_refuses_publishing_callee_and_inlines_flow_in() {
        let src = "class Box { field v int }
             static g ref
             method publish 1 { load 0 putstatic g ret }
             method fill 1 returns {
                load 0 const 1 putfield Box.v
                load 0 getfield Box.v retv
             }
             method f 0 returns {
                new Box invokestatic publish
                new Box invokestatic fill retv
             }";
        let program = parse_program(src).unwrap();
        pea_bytecode::verify_program(&program).unwrap();
        let summaries = ProgramSummaries::compute(&program);
        let method = program.static_method_by_name("f").unwrap();
        let options = BuildOptions {
            inline_policy: InlinePolicy::Summary,
            ..BuildOptions::default()
        };
        let (_, decisions, _) =
            build_graph_with(&program, method, None, &options, Some(&summaries)).unwrap();
        assert_eq!(decisions.len(), 2);
        let publish = &decisions[0];
        assert!(!publish.inlined);
        assert_eq!(publish.reason, "publishes-argument");
        let fill = &decisions[1];
        assert!(fill.inlined);
        assert_eq!(fill.reason, "allocation-flows-in");
        // The size policy inlines both (both bodies are tiny).
        let (_, size_decisions, _) = build_graph_with(
            &program,
            method,
            None,
            &BuildOptions::default(),
            Some(&summaries),
        )
        .unwrap();
        assert!(size_decisions.iter().all(|d| d.inlined));
    }

    #[test]
    fn synchronized_callee_gets_monitors() {
        let g = build(
            "class C { field v int }
             method virtual C.get 1 returns synchronized { load 0 getfield C.v retv }
             method f 0 returns { new C invokevirtual C.get retv }",
            "f",
        );
        // Monomorphic in a closed world: inlined with monitors.
        assert_eq!(count(&g, |k| matches!(k, NodeKind::Invoke { .. })), 0);
        assert_eq!(count(&g, |k| matches!(k, NodeKind::MonitorEnter)), 1);
        assert_eq!(count(&g, |k| matches!(k, NodeKind::MonitorExit)), 1);
        // Inner frame states chain to the caller.
        let has_outer = g
            .live_nodes()
            .any(|n| matches!(g.kind(n), NodeKind::FrameState(d) if d.has_outer));
        assert!(has_outer, "inlined frame states must chain to the caller");
    }

    #[test]
    fn never_taken_branch_becomes_guard_with_profile() {
        let src = "method f 1 returns {
            load 0 const 100 ifcmp gt Lrare
            load 0 const 1 add retv
        Lrare:
            const -1 retv
        }";
        let program = parse_program(src).unwrap();
        let f = program.static_method_by_name("f").unwrap();
        let mut profiles = ProfileStore::new();
        for _ in 0..50 {
            profiles.record_branch(f, 2, false);
        }
        let g = build_graph(&program, f, Some(&profiles), &BuildOptions::default()).unwrap();
        verify(&g).unwrap();
        assert_eq!(count(&g, |k| matches!(k, NodeKind::Guard { .. })), 1);
        assert_eq!(count(&g, |k| matches!(k, NodeKind::If)), 0);
        // The rare branch's return disappeared.
        assert_eq!(count(&g, |k| matches!(k, NodeKind::Return)), 1);
    }

    #[test]
    fn unbalanced_monitor_bails() {
        let program = parse_program(
            "class C { }
             method f 0 returns { new C monitorenter const 1 retv }",
        )
        .unwrap();
        let f = program.static_method_by_name("f").unwrap();
        let err = build_graph(&program, f, None, &BuildOptions::default()).unwrap_err();
        assert_eq!(err, Bailout::UnstructuredLocking);
    }

    #[test]
    fn loop_with_two_back_edges() {
        let g = build(
            "method f 2 returns {
                const 0 store 2
            Lhead:
                load 2 load 0 ifcmp ge Ldone
                load 1 const 1 ifcmp eq Lplus2
                load 2 const 1 add store 2
                goto Lhead
            Lplus2:
                load 2 const 2 add store 2
                goto Lhead
            Ldone:
                load 2 retv
            }",
            "f",
        );
        let lb = g
            .live_nodes()
            .find(|&n| matches!(g.kind(n), NodeKind::LoopBegin { .. }))
            .unwrap();
        assert_eq!(g.merge_ends(lb).len(), 3, "entry + two back edges");
    }
}
