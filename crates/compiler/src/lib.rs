//! The JIT compiler: bytecode → SSA graph construction (with inlining and
//! profile-guided speculation), canonicalization, the Partial Escape
//! Analysis phase (from `pea-core`), scheduling, and a compiled-code
//! evaluator with full deoptimization support.
//!
//! The pieces correspond to the Graal infrastructure of the paper's §2:
//!
//! * [`builder`] — the bytecode parser producing Graal-IR-style graphs,
//!   including `FrameState` bookkeeping at side effects and merges, and
//!   speculative branch pruning (never-taken branches become guards that
//!   deoptimize, which is what lets PEA remove allocations whose only
//!   escape is a cold path);
//! * inlining happens *during* graph building (callee graphs are built
//!   directly into the caller, frame states chained to the caller's state
//!   at the call site, synchronized callees bracketed with monitor
//!   operations — producing exactly the paper's Listing 2 shape);
//! * [`canon`] — constant folding, global value numbering, phi
//!   simplification;
//! * [`pipeline`] — phase orchestration per [`OptLevel`]:
//!   no escape analysis / the flow-insensitive EES baseline / PEA;
//! * [`eval`] — executes compiled graphs against the managed heap with a
//!   cycle cost model ("machine code" stand-in); on a guard failure it
//!   reconstructs interpreter frames from the frame state chain,
//!   **rematerializing virtual objects** (including lock depths) per
//!   §5.5.

pub mod builder;
pub mod canon;
pub mod eval;
pub mod linear;
pub mod phases;
pub mod pipeline;

pub use builder::{
    build_graph, build_graph_with, Bailout, BuildOptions, DevirtGuardRec, InlineDecisionRec,
    InlinePolicy,
};
pub use eval::{evaluate, DeoptFrame, EvalEnv, EvalOutcome};
pub use linear::{LinearArtifact, LowerError};
pub use phases::{CompilationUnit, PhaseKind, PhaseManager};
pub use pipeline::{
    compile, compile_traced, CompiledMethod, CompilerOptions, OptLevel, PhaseTimes,
};
