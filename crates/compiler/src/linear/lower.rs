//! Lowering: scheduled graph → [`LinearArtifact`].
//!
//! The instruction stream is emitted block by block in the CFG's reverse
//! post order (entry first), with every scheduled node translated in its
//! exact schedule position so the per-instruction cycle charges replay in
//! the same order graph evaluation performs them. Phi updates are lowered
//! onto the predecessor edges as parallel-move sequences (a merge block's
//! predecessor order follows its `ends` list, which is phi-input order),
//! and frame states are compiled into self-contained [`DeoptPoint`]
//! tables so execution never touches the graph.

use super::{
    arith_code, class_code, cmp_code, kind_code, op, reason_code, CommitFieldSrc, DeoptPoint,
    LinearArtifact, LinearCommit, LinearCommitObj, LinearFrame, LinearVObj, SlotSrc, NO_REG,
};
use pea_bytecode::{FieldId, Program};
use pea_ir::cfg::{BlockId, Cfg};
use pea_ir::schedule::Schedule;
use pea_ir::{AllocShape, ArithOp, Graph, NodeId, NodeKind};
use pea_runtime::cost;
use std::collections::HashMap;

/// Why a graph could not be lowered (the method then stays on the
/// graph-walking tier; execution is unaffected).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LowerError(pub String);

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lowering bailout: {}", self.0)
    }
}

impl std::error::Error for LowerError {}

/// Lowers a scheduled graph into a [`LinearArtifact`].
///
/// # Errors
///
/// [`LowerError`] when the encoding cannot represent the method (register
/// or code-stream overflow) — practically unreachable for real programs.
pub fn lower(
    program: &Program,
    graph: &Graph,
    cfg: &Cfg,
    schedule: &Schedule,
) -> Result<LinearArtifact, LowerError> {
    Lowerer {
        program,
        graph,
        cfg,
        schedule,
        code: Vec::new(),
        pool: Vec::new(),
        pool_map: HashMap::new(),
        regs: vec![NO_REG; graph.len()],
        next_reg: 0,
        temp_reg: NO_REG,
        block_pc: vec![u32::MAX; cfg.blocks.len()],
        fixups: Vec::new(),
        deopts: Vec::new(),
        deopt_map: HashMap::new(),
        commits: Vec::new(),
        commit_map: HashMap::new(),
        alloc_dsts: HashMap::new(),
        alloc_primary: HashMap::new(),
    }
    .run()
}

struct Lowerer<'a> {
    program: &'a Program,
    graph: &'a Graph,
    cfg: &'a Cfg,
    schedule: &'a Schedule,
    code: Vec<u32>,
    pool: Vec<i64>,
    pool_map: HashMap<i64, u32>,
    regs: Vec<u32>,
    next_reg: u32,
    temp_reg: u32,
    block_pc: Vec<u32>,
    /// `(code index, target block)` pairs patched after layout.
    fixups: Vec<(usize, BlockId)>,
    deopts: Vec<DeoptPoint>,
    deopt_map: HashMap<NodeId, u32>,
    commits: Vec<LinearCommit>,
    commit_map: HashMap<NodeId, u32>,
    /// `(commit, object index)` → register of the designated
    /// `AllocatedObject` node (written directly by the commit).
    alloc_dsts: HashMap<(NodeId, usize), u32>,
    /// The designated `AllocatedObject` node per `(commit, object index)`;
    /// other nodes for the same slot become register moves.
    alloc_primary: HashMap<(NodeId, usize), NodeId>,
}

impl Lowerer<'_> {
    fn run(mut self) -> Result<LinearArtifact, LowerError> {
        // Pre-pass: designate one AllocatedObject node per commit slot so
        // the commit template can write its register directly.
        for b in &self.cfg.rpo {
            for &n in &self.schedule.per_block[b.index()] {
                if let NodeKind::AllocatedObject { index } = self.graph.kind(n) {
                    let commit = self.graph.node(n).inputs()[0];
                    let key = (commit, *index);
                    if let std::collections::hash_map::Entry::Vacant(e) =
                        self.alloc_primary.entry(key)
                    {
                        e.insert(n);
                        let reg = self.reg_of(n);
                        self.alloc_dsts.insert(key, reg);
                    }
                }
            }
        }

        debug_assert_eq!(
            self.cfg.rpo[0],
            self.cfg.entry(),
            "entry block lays out first"
        );
        for bi in 0..self.cfg.rpo.len() {
            let b = self.cfg.rpo[bi];
            self.block_pc[b.index()] = self.pc()?;
            let order = self.schedule.per_block[b.index()].clone();
            for n in order {
                self.emit_node(b, n)?;
            }
        }
        for (idx, blk) in std::mem::take(&mut self.fixups) {
            let pc = self.block_pc[blk.index()];
            debug_assert_ne!(pc, u32::MAX, "jump into un-laid-out block");
            self.code[idx] = pc;
        }
        Ok(LinearArtifact {
            code: self.code,
            pool: self.pool,
            num_regs: self.next_reg,
            deopts: self.deopts,
            commits: self.commits,
        })
    }

    fn pc(&self) -> Result<u32, LowerError> {
        u32::try_from(self.code.len()).map_err(|_| LowerError("code stream exceeds u32".into()))
    }

    fn reg_of(&mut self, n: NodeId) -> u32 {
        let slot = &mut self.regs[n.index()];
        if *slot == NO_REG {
            *slot = self.next_reg;
            self.next_reg += 1;
        }
        *slot
    }

    fn temp(&mut self) -> u32 {
        if self.temp_reg == NO_REG {
            self.temp_reg = self.next_reg;
            self.next_reg += 1;
        }
        self.temp_reg
    }

    fn pool_idx(&mut self, v: i64) -> u32 {
        if let Some(&i) = self.pool_map.get(&v) {
            return i;
        }
        let i = u32::try_from(self.pool.len()).expect("constant pool exceeds u32");
        self.pool.push(v);
        self.pool_map.insert(v, i);
        i
    }

    fn emit(&mut self, words: &[u32]) {
        self.code.extend_from_slice(words);
    }

    /// Emits a jump-target operand, recording a fixup for `target`.
    fn emit_target(&mut self, target: BlockId) {
        self.fixups.push((self.code.len(), target));
        self.code.push(u32::MAX);
    }

    fn charge_u32(&self, cycles: u64, what: &str) -> Result<u32, LowerError> {
        u32::try_from(cycles).map_err(|_| LowerError(format!("{what} charge exceeds u32")))
    }

    fn emit_node(&mut self, block: BlockId, n: NodeId) -> Result<(), LowerError> {
        let node = self.graph.node(n);
        let inputs: Vec<NodeId> = node.inputs().to_vec();
        match self.graph.kind(n).clone() {
            NodeKind::Start
            | NodeKind::Begin
            | NodeKind::LoopExit { .. }
            | NodeKind::Merge { .. }
            | NodeKind::LoopBegin { .. } => {}
            NodeKind::Param { index } => {
                let dst = self.reg_of(n);
                self.emit(&[op::LOAD_PARAM, dst, u32::from(index)]);
            }
            NodeKind::ConstInt { value } => {
                let dst = self.reg_of(n);
                let idx = self.pool_idx(value);
                self.emit(&[op::CONST_INT, dst, idx]);
            }
            NodeKind::ConstNull => {
                let dst = self.reg_of(n);
                self.emit(&[op::CONST_NULL, dst]);
            }
            NodeKind::Arith { op: aop } | NodeKind::FixedArith { op: aop } => {
                let a = self.reg_of(inputs[0]);
                let dst = self.reg_of(n);
                if aop == ArithOp::Neg {
                    self.emit(&[op::NEG, dst, a]);
                } else {
                    let b = self.reg_of(inputs[1]);
                    self.emit(&[op::ARITH, arith_code(aop), dst, a, b]);
                }
            }
            NodeKind::Compare { op: cop } => {
                let a = self.reg_of(inputs[0]);
                let b = self.reg_of(inputs[1]);
                let dst = self.reg_of(n);
                self.emit(&[op::COMPARE, cmp_code(cop), dst, a, b]);
            }
            NodeKind::Phi { .. } => unreachable!("phis are not scheduled"),
            NodeKind::New { class } => {
                let cost =
                    self.charge_u32(cost::alloc_cost(self.program.object_size(class)), "alloc")?;
                let dst = self.reg_of(n);
                self.emit(&[op::NEW, dst, class_code(class), cost]);
            }
            NodeKind::NewArray { kind } => {
                let len = self.reg_of(inputs[0]);
                let dst = self.reg_of(n);
                self.emit(&[op::NEW_ARRAY, dst, len, kind_code(kind)]);
            }
            NodeKind::LoadField { field } => {
                let obj = self.reg_of(inputs[0]);
                let dst = self.reg_of(n);
                let (declaring, slot) = self.field_offset(field)?;
                self.emit(&[op::LOAD_FIELD, dst, obj, declaring, slot, field.0]);
            }
            NodeKind::StoreField { field } => {
                let obj = self.reg_of(inputs[0]);
                let val = self.reg_of(inputs[1]);
                let (declaring, slot) = self.field_offset(field)?;
                self.emit(&[op::STORE_FIELD, obj, val, declaring, slot, field.0]);
            }
            NodeKind::LoadIndexed => {
                let arr = self.reg_of(inputs[0]);
                let idx = self.reg_of(inputs[1]);
                let dst = self.reg_of(n);
                self.emit(&[op::LOAD_INDEXED, dst, arr, idx]);
            }
            NodeKind::StoreIndexed => {
                let arr = self.reg_of(inputs[0]);
                let idx = self.reg_of(inputs[1]);
                let val = self.reg_of(inputs[2]);
                self.emit(&[op::STORE_INDEXED, arr, idx, val]);
            }
            NodeKind::ArrayLen => {
                let arr = self.reg_of(inputs[0]);
                let dst = self.reg_of(n);
                self.emit(&[op::ARRAY_LEN, dst, arr]);
            }
            NodeKind::MonitorEnter => {
                let obj = self.reg_of(inputs[0]);
                self.emit(&[op::MONITOR_ENTER, obj]);
            }
            NodeKind::MonitorExit => {
                let obj = self.reg_of(inputs[0]);
                self.emit(&[op::MONITOR_EXIT, obj]);
            }
            NodeKind::GetStatic { id } => {
                let dst = self.reg_of(n);
                self.emit(&[op::GET_STATIC, dst, id.0]);
            }
            NodeKind::PutStatic { id } => {
                let val = self.reg_of(inputs[0]);
                self.emit(&[op::PUT_STATIC, val, id.0]);
            }
            NodeKind::RefEq => {
                let a = self.reg_of(inputs[0]);
                let b = self.reg_of(inputs[1]);
                let dst = self.reg_of(n);
                self.emit(&[op::REF_EQ, dst, a, b]);
            }
            NodeKind::IsNull => {
                let a = self.reg_of(inputs[0]);
                let dst = self.reg_of(n);
                self.emit(&[op::IS_NULL, dst, a]);
            }
            NodeKind::InstanceOf { class, exact } => {
                let a = self.reg_of(inputs[0]);
                let dst = self.reg_of(n);
                self.emit(&[op::INSTANCE_OF, dst, a, class_code(class), u32::from(exact)]);
            }
            NodeKind::CheckCast { class } => {
                let a = self.reg_of(inputs[0]);
                let dst = self.reg_of(n);
                self.emit(&[op::CHECK_CAST, dst, a, class_code(class)]);
            }
            NodeKind::Invoke {
                target,
                virtual_call,
            } => {
                let fs = node
                    .state_after
                    .ok_or_else(|| LowerError("invoke without frame state".into()))?;
                // Allocate the result register before compiling the deopt
                // metadata: the after-state references the call's result.
                let dst = self.reg_of(n);
                let arg_regs: Vec<u32> = inputs.iter().map(|&i| self.reg_of(i)).collect();
                let deopt = self.deopt_point(fs)?;
                let argc = u32::try_from(arg_regs.len())
                    .map_err(|_| LowerError("too many call arguments".into()))?;
                self.emit(&[
                    op::INVOKE,
                    target.0,
                    u32::from(virtual_call),
                    dst,
                    deopt,
                    argc,
                ]);
                self.code.extend_from_slice(&arg_regs);
            }
            NodeKind::Commit { objects } => {
                let mut template = Vec::with_capacity(objects.len());
                let mut input_pos = 0usize;
                for (oi, obj) in objects.iter().enumerate() {
                    let (alloc_cycles, field_ids): (u64, Vec<Option<FieldId>>) = match obj.shape {
                        AllocShape::Instance { class } => (
                            cost::alloc_cost(self.program.object_size(class)),
                            self.program
                                .instance_fields(class)
                                .into_iter()
                                .map(Some)
                                .collect(),
                        ),
                        AllocShape::Array { length, .. } => (
                            cost::alloc_cost(Program::array_size(u64::from(length))),
                            (0..length).map(|_| None).collect(),
                        ),
                    };
                    let mut fields = Vec::with_capacity(field_ids.len());
                    for _ in 0..field_ids.len() {
                        let input = inputs[input_pos];
                        input_pos += 1;
                        let src = match self.graph.kind(input) {
                            NodeKind::AllocatedObject { index }
                                if self.graph.node(input).inputs()[0] == n =>
                            {
                                CommitFieldSrc::SameCommit(*index as u32)
                            }
                            _ => CommitFieldSrc::Reg(self.reg_of(input)),
                        };
                        fields.push(src);
                    }
                    let dst = self.alloc_dsts.get(&(n, oi)).copied().unwrap_or(NO_REG);
                    template.push(LinearCommitObj {
                        shape: obj.shape,
                        lock_count: obj.lock_count,
                        alloc_cycles,
                        dst,
                        field_ids,
                        fields,
                    });
                }
                let idx = u32::try_from(self.commits.len())
                    .map_err(|_| LowerError("commit table exceeds u32".into()))?;
                self.commits.push(LinearCommit { objects: template });
                self.commit_map.insert(n, idx);
                self.emit(&[op::COMMIT, idx]);
            }
            NodeKind::AllocatedObject { index } => {
                let commit = inputs[0];
                let key = (commit, index);
                let primary = self.alloc_primary.get(&key).copied();
                if primary == Some(n) {
                    // Register written directly by the commit instruction.
                } else {
                    let src = *self
                        .alloc_dsts
                        .get(&key)
                        .ok_or_else(|| LowerError("allocated object before commit".into()))?;
                    let dst = self.reg_of(n);
                    self.emit(&[op::MOVE, dst, src]);
                }
            }
            NodeKind::Guard { reason, negated } => {
                let cond = self.reg_of(inputs[0]);
                let fs = node
                    .state_after
                    .ok_or_else(|| LowerError("guard without frame state".into()))?;
                let deopt = self.deopt_point(fs)?;
                self.emit(&[
                    op::GUARD,
                    cond,
                    u32::from(negated),
                    reason_code(reason),
                    deopt,
                ]);
            }
            NodeKind::Deopt { reason } => {
                let fs = node
                    .state_after
                    .ok_or_else(|| LowerError("deopt without frame state".into()))?;
                let deopt = self.deopt_point(fs)?;
                self.emit(&[op::DEOPT, reason_code(reason), deopt]);
            }
            NodeKind::If => {
                let cond = self.reg_of(inputs[0]);
                let t = self.cfg.block_of(node.successors()[0]);
                let f = self.cfg.block_of(node.successors()[1]);
                self.emit(&[op::IF, cond]);
                self.emit_target(t);
                self.emit_target(f);
            }
            NodeKind::End | NodeKind::LoopEnd => {
                let is_loop = matches!(self.graph.kind(n), NodeKind::LoopEnd);
                self.emit(&[if is_loop {
                    op::EDGE_LOOP_END
                } else {
                    op::EDGE_END
                }]);
                let succ = self.cfg.block(block).succs[0];
                self.emit_phi_moves(succ, n)?;
                self.emit(&[op::JUMP]);
                self.emit_target(succ);
            }
            NodeKind::Return => {
                let src = match inputs.first() {
                    Some(&i) => self.reg_of(i),
                    None => NO_REG,
                };
                self.emit(&[op::RETURN, src]);
            }
            NodeKind::Throw => {
                let src = self.reg_of(inputs[0]);
                self.emit(&[op::THROW, src]);
            }
            NodeKind::Unwind => {
                let src = self.reg_of(inputs[0]);
                self.emit(&[op::UNWIND, src]);
            }
            NodeKind::FrameState(_) | NodeKind::VirtualObjectMapping { .. } => {
                unreachable!("metadata scheduled for execution")
            }
        }
        Ok(())
    }

    /// Emits the phi parallel assignment for the edge `end → succ` as a
    /// sequence of moves (cycles broken through the dedicated temp
    /// register). Free of cycle charges, like graph evaluation's phi
    /// update.
    fn emit_phi_moves(&mut self, succ: BlockId, end: NodeId) -> Result<(), LowerError> {
        let first = self.cfg.block(succ).first();
        let ends: Vec<NodeId> = match self.graph.kind(first) {
            NodeKind::Merge { ends } | NodeKind::LoopBegin { ends } => ends.clone(),
            _ => return Ok(()),
        };
        let idx = ends
            .iter()
            .position(|&e| e == end)
            .ok_or_else(|| LowerError("end not registered on merge".into()))?;
        let mut moves: Vec<(u32, u32)> = Vec::new();
        for phi in self.graph.phis_of(first) {
            let input = self.graph.node(phi).inputs()[idx];
            let dst = self.reg_of(phi);
            let src = self.reg_of(input);
            if dst != src {
                moves.push((dst, src));
            }
        }
        // Sequentialize the parallel assignment: emit moves whose
        // destination no pending move still reads; break cycles by
        // parking the overwritten value in the temp register.
        while !moves.is_empty() {
            let ready = moves
                .iter()
                .position(|&(d, _)| moves.iter().all(|&(_, s)| s != d));
            match ready {
                Some(i) => {
                    let (d, s) = moves.remove(i);
                    self.emit(&[op::MOVE, d, s]);
                }
                None => {
                    let (d, s) = moves.remove(0);
                    let t = self.temp();
                    self.emit(&[op::MOVE, t, d]);
                    self.emit(&[op::MOVE, d, s]);
                    for m in &mut moves {
                        if m.1 == d {
                            m.1 = t;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Pre-resolves a field access to `(declaring class, slot)`. Object
    /// layouts are prefix-stable (superclass fields first), so the slot is
    /// valid for every subclass of the declaring class.
    fn field_offset(&self, field: FieldId) -> Result<(u32, u32), LowerError> {
        let declaring = self.program.field(field).class;
        let slot = self
            .program
            .instance_fields(declaring)
            .iter()
            .position(|&f| f == field)
            .ok_or_else(|| LowerError(format!("field {field} missing from its class")))?;
        Ok((
            class_code(declaring),
            u32::try_from(slot).map_err(|_| LowerError("field slot exceeds u32".into()))?,
        ))
    }

    /// Compiles the frame-state chain rooted at `fs` into a
    /// [`DeoptPoint`], memoized per frame-state node.
    fn deopt_point(&mut self, fs: NodeId) -> Result<u32, LowerError> {
        if let Some(&i) = self.deopt_map.get(&fs) {
            return Ok(i);
        }
        // Chain innermost → outermost, then reverse (as deoptimization
        // reconstructs frames outermost first).
        let mut chain = vec![fs];
        let mut cur = fs;
        while let Some(outer_idx) = self.graph.frame_state_data(cur).outer_index() {
            cur = self.graph.node(cur).inputs()[outer_idx];
            chain.push(cur);
        }
        chain.reverse();

        let mut vobjs: Vec<LinearVObj> = Vec::new();
        let mut vo_map: HashMap<NodeId, u32> = HashMap::new();
        let mut frames = Vec::with_capacity(chain.len());
        for fsn in chain {
            let data = self.graph.frame_state_data(fsn).clone();
            let inputs = self.graph.node(fsn).inputs().to_vec();
            let mut locals = Vec::with_capacity(data.n_locals as usize);
            for i in data.locals_range() {
                locals.push(self.slot_src(inputs[i], &mut vobjs, &mut vo_map)?);
            }
            let mut stack = Vec::with_capacity(data.n_stack as usize);
            for i in data.stack_range() {
                stack.push(self.slot_src(inputs[i], &mut vobjs, &mut vo_map)?);
            }
            let mut locks = Vec::with_capacity(data.n_locks as usize);
            for (k, i) in data.locks_range().enumerate() {
                let src = self.slot_src(inputs[i], &mut vobjs, &mut vo_map)?;
                locks.push((src, data.lock_from_sync[k]));
            }
            frames.push(LinearFrame {
                method: data.method,
                bci: data.bci,
                locals,
                stack,
                locks,
            });
        }
        let idx = u32::try_from(self.deopts.len())
            .map_err(|_| LowerError("deopt table exceeds u32".into()))?;
        self.deopts.push(DeoptPoint { frames, vobjs });
        self.deopt_map.insert(fs, idx);
        Ok(idx)
    }

    /// Compiles one frame-state slot source: virtual-object mappings are
    /// added to the point's table (cycle-safe: the index is reserved
    /// before field sources are compiled), everything else reads a
    /// register.
    fn slot_src(
        &mut self,
        id: NodeId,
        vobjs: &mut Vec<LinearVObj>,
        vo_map: &mut HashMap<NodeId, u32>,
    ) -> Result<SlotSrc, LowerError> {
        let (shape, lock_count) = match self.graph.kind(id) {
            NodeKind::VirtualObjectMapping { shape, lock_count } => (*shape, *lock_count),
            _ => return Ok(SlotSrc::Reg(self.reg_of(id))),
        };
        if let Some(&i) = vo_map.get(&id) {
            return Ok(SlotSrc::Virtual(i));
        }
        let idx = u32::try_from(vobjs.len())
            .map_err(|_| LowerError("virtual-object table exceeds u32".into()))?;
        vo_map.insert(id, idx);
        let (name, field_ids): (String, Vec<Option<FieldId>>) = match shape {
            AllocShape::Instance { class } => (
                self.program.class(class).name.clone(),
                self.program
                    .instance_fields(class)
                    .into_iter()
                    .map(Some)
                    .collect(),
            ),
            other => {
                let len = self.graph.node(id).inputs().len();
                (other.to_string(), (0..len).map(|_| None).collect())
            }
        };
        vobjs.push(LinearVObj {
            shape,
            lock_count,
            name,
            field_ids,
            fields: Vec::new(),
        });
        let field_inputs = self.graph.node(id).inputs().to_vec();
        let mut fields = Vec::with_capacity(field_inputs.len());
        for input in field_inputs {
            fields.push(self.slot_src(input, vobjs, vo_map)?);
        }
        vobjs[idx as usize].fields = fields;
        Ok(SlotSrc::Virtual(idx))
    }
}
