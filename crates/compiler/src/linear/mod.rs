//! The linear register-machine tier: scheduled sea-of-nodes graphs are
//! lowered ([`lower`]) into a dense `Vec<u32>` instruction stream — the
//! [`LinearArtifact`] — and executed by a direct-threaded dispatch loop
//! ([`exec::execute`]) that never touches [`pea_ir::Graph`] or
//! [`pea_ir::NodeId`] on the hot path.
//!
//! The artifact pre-resolves everything graph evaluation looks up per
//! call: field offsets become `(declaring class, slot)` pairs checked
//! with one subclass test, constants live in a pool, call targets are
//! pre-bound method ids, and deoptimization metadata (frame-state chains
//! plus virtual-object rematerialization info, paper §5.5) is compiled
//! into self-contained side tables keyed by deopt-point index so
//! `--checked` rematerialization and the VM's existing deopt machinery
//! work unchanged.
//!
//! Virtual-cycle accounting is preserved as a parallel channel: every
//! instruction charges exactly the constants graph evaluation charges, in
//! the same order, so cycle counts, golden traces and Table-1 numbers are
//! byte-identical between `--exec-mode linear` and `--exec-mode graph`.

pub mod exec;
pub mod lower;

pub use exec::execute;
pub use lower::{lower, LowerError};

use pea_bytecode::{ClassId, FieldId, MethodId};
use pea_ir::AllocShape;

/// Sentinel register/index meaning "absent" (e.g. a call with no result).
pub const NO_REG: u32 = u32::MAX;

/// Opcodes of the linear register machine. One `u32` word each, followed
/// by a fixed (per-opcode) number of operand words; `Invoke` adds a
/// trailing variable-length argument-register list.
///
/// The dispatch loop is a dense jump table over these values (Rust has no
/// computed goto, but the compiler lowers the exhaustive `match` on a
/// dense `u32` range to the same direct-threaded table).
pub mod op {
    /// `[dst, index]` — load method argument `index`.
    pub const LOAD_PARAM: u32 = 0;
    /// `[dst, pool_idx]` — load an `i64` constant from the pool.
    pub const CONST_INT: u32 = 1;
    /// `[dst]` — load null.
    pub const CONST_NULL: u32 = 2;
    /// `[arith_op, dst, a, b]` — binary arithmetic (wrapping; Div/Rem trap).
    pub const ARITH: u32 = 3;
    /// `[dst, a]` — wrapping negation.
    pub const NEG: u32 = 4;
    /// `[cmp_op, dst, a, b]` — integer comparison producing 0/1.
    pub const COMPARE: u32 = 5;
    /// `[dst, a, b]` — reference identity producing 0/1.
    pub const REF_EQ: u32 = 6;
    /// `[dst, a]` — null test producing 0/1.
    pub const IS_NULL: u32 = 7;
    /// `[dst, a, class, exact]` — type test producing 0/1.
    pub const INSTANCE_OF: u32 = 8;
    /// `[dst, a, class]` — checked cast (passes the value through).
    pub const CHECK_CAST: u32 = 9;
    /// `[dst, class, alloc_cycles]` — allocate an instance.
    pub const NEW: u32 = 10;
    /// `[dst, len_reg, kind]` — allocate an array.
    pub const NEW_ARRAY: u32 = 11;
    /// `[dst, obj, declaring_class, slot, field]` — read an instance
    /// field at a pre-resolved offset (`field` is the slow-path id).
    pub const LOAD_FIELD: u32 = 12;
    /// `[obj, val, declaring_class, slot, field]` — write an instance
    /// field at a pre-resolved offset.
    pub const STORE_FIELD: u32 = 13;
    /// `[dst, arr, idx]` — read an array element.
    pub const LOAD_INDEXED: u32 = 14;
    /// `[arr, idx, val]` — write an array element.
    pub const STORE_INDEXED: u32 = 15;
    /// `[dst, arr]` — array length.
    pub const ARRAY_LEN: u32 = 16;
    /// `[obj]` — monitor enter.
    pub const MONITOR_ENTER: u32 = 17;
    /// `[obj]` — monitor exit.
    pub const MONITOR_EXIT: u32 = 18;
    /// `[dst, static_id]` — read a static variable.
    pub const GET_STATIC: u32 = 19;
    /// `[val, static_id]` — write a static variable.
    pub const PUT_STATIC: u32 = 20;
    /// `[target, virtual, dst, deopt_idx, argc, args...]` — out-of-line
    /// call; `dst` is [`super::NO_REG`] for void targets. A thrown callee
    /// exception deoptimizes through deopt point `deopt_idx`.
    pub const INVOKE: u32 = 21;
    /// `[commit_idx]` — materialize a virtual-object group
    /// ([`super::LinearCommit`]).
    pub const COMMIT: u32 = 22;
    /// `[cond, negated, reason, deopt_idx]` — speculation guard.
    pub const GUARD: u32 = 23;
    /// `[reason, deopt_idx]` — unconditional transfer to the interpreter.
    pub const DEOPT: u32 = 24;
    /// `[cond, true_pc, false_pc]` — two-way branch.
    pub const IF: u32 = 25;
    /// `[]` — forward edge into a merge (charges the branch cost).
    pub const EDGE_END: u32 = 26;
    /// `[]` — loop back edge: branch cost plus a safepoint poll.
    pub const EDGE_LOOP_END: u32 = 27;
    /// `[dst, src]` — register move (phi parallel-assignment step; free).
    pub const MOVE: u32 = 28;
    /// `[pc]` — unconditional jump.
    pub const JUMP: u32 = 29;
    /// `[src]` — return (`src` may be [`super::NO_REG`]).
    pub const RETURN: u32 = 30;
    /// `[src]` — user exception with error code `src`.
    pub const THROW: u32 = 31;
    /// `[src]` — propagate exception object `src` out of the frame.
    pub const UNWIND: u32 = 32;
}

/// Where a deopt-metadata or commit-template slot gets its value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotSrc {
    /// A register of the running frame.
    Reg(u32),
    /// Index into the owning [`DeoptPoint::vobjs`] table: a virtual
    /// object rematerialized on demand (paper §5.5).
    Virtual(u32),
}

/// One interpreter frame of a compiled deopt point, outermost first in
/// [`DeoptPoint::frames`]. Mirrors the graph's `FrameState` chain with
/// node ids replaced by register/virtual-object sources.
#[derive(Clone, Debug)]
pub struct LinearFrame {
    /// Frame method.
    pub method: MethodId,
    /// Bytecode index to resume at.
    pub bci: u32,
    /// Local-variable sources.
    pub locals: Vec<SlotSrc>,
    /// Operand-stack sources.
    pub stack: Vec<SlotSrc>,
    /// Held monitors: `(source, from_synchronized_method)`.
    pub locks: Vec<(SlotSrc, bool)>,
}

/// A compiled `VirtualObjectMapping`: everything rematerialization needs
/// without consulting the graph.
#[derive(Clone, Debug)]
pub struct LinearVObj {
    /// What to allocate.
    pub shape: AllocShape,
    /// Monitor depth to restore.
    pub lock_count: u32,
    /// Inventory label (class name for instances, shape for arrays) —
    /// matches graph evaluation's rematerialization inventory exactly.
    pub name: String,
    /// Pre-resolved field ids for instances (`None` per element for
    /// arrays), aligned with `fields`.
    pub field_ids: Vec<Option<FieldId>>,
    /// Field (or element) value sources, possibly cyclic through
    /// [`SlotSrc::Virtual`].
    pub fields: Vec<SlotSrc>,
}

/// Self-contained deopt metadata for one deopt point (guard, deopt or
/// call site), keyed by the `deopt_idx` instruction operand.
#[derive(Clone, Debug)]
pub struct DeoptPoint {
    /// Frames outermost first.
    pub frames: Vec<LinearFrame>,
    /// Virtual objects referenced by the frames' slots.
    pub vobjs: Vec<LinearVObj>,
}

/// A field (or element) source within a [`LinearCommit`] template.
#[derive(Clone, Copy, Debug)]
pub enum CommitFieldSrc {
    /// A register value.
    Reg(u32),
    /// A reference to object `index` of the same commit (cyclic
    /// structures).
    SameCommit(u32),
}

/// One object of a commit template.
#[derive(Clone, Debug)]
pub struct LinearCommitObj {
    /// What to allocate.
    pub shape: AllocShape,
    /// Monitor re-entry count.
    pub lock_count: u32,
    /// Pre-computed virtual-cycle allocation charge.
    pub alloc_cycles: u64,
    /// Register receiving the materialized reference ([`NO_REG`] when the
    /// object is never read after the commit).
    pub dst: u32,
    /// Pre-resolved field ids (instances) aligned with `fields`; `None`
    /// entries are array elements.
    pub field_ids: Vec<Option<FieldId>>,
    /// Field value sources in layout order.
    pub fields: Vec<CommitFieldSrc>,
}

/// A compiled `Commit` group materialization (paper §4): allocate every
/// object first so cyclic references resolve, then fill fields and
/// re-enter monitors.
#[derive(Clone, Debug)]
pub struct LinearCommit {
    /// Objects in input-layout order.
    pub objects: Vec<LinearCommitObj>,
}

/// The lowered form of a compiled method: a dense register-machine
/// program plus the side tables its instructions index into.
#[derive(Clone, Debug)]
pub struct LinearArtifact {
    /// Instruction stream (see [`op`]).
    pub code: Vec<u32>,
    /// `i64` constant pool ([`op::CONST_INT`] operands index it).
    pub pool: Vec<i64>,
    /// Number of virtual registers the frame needs.
    pub num_regs: u32,
    /// Deopt-metadata table ([`op::GUARD`]/[`op::DEOPT`]/[`op::INVOKE`]
    /// operands index it).
    pub deopts: Vec<DeoptPoint>,
    /// Commit templates ([`op::COMMIT`] operands index it).
    pub commits: Vec<LinearCommit>,
}

impl LinearArtifact {
    /// Human-readable disassembly, one instruction per line — used by the
    /// golden encoding test and `--dump-linear` style diagnostics.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let c = &self.code;
        let mut pc = 0usize;
        let reg = |r: u32| {
            if r == NO_REG {
                "_".to_string()
            } else {
                format!("r{r}")
            }
        };
        while pc < c.len() {
            let _ = write!(out, "{pc:4}: ");
            match c[pc] {
                op::LOAD_PARAM => {
                    let _ = writeln!(out, "param {} <- #{}", reg(c[pc + 1]), c[pc + 2]);
                    pc += 3;
                }
                op::CONST_INT => {
                    let _ = writeln!(
                        out,
                        "const {} <- {}",
                        reg(c[pc + 1]),
                        self.pool[c[pc + 2] as usize]
                    );
                    pc += 3;
                }
                op::CONST_NULL => {
                    let _ = writeln!(out, "null {}", reg(c[pc + 1]));
                    pc += 2;
                }
                op::ARITH => {
                    let _ = writeln!(
                        out,
                        "arith[{}] {} <- {}, {}",
                        c[pc + 1],
                        reg(c[pc + 2]),
                        reg(c[pc + 3]),
                        reg(c[pc + 4])
                    );
                    pc += 5;
                }
                op::NEG => {
                    let _ = writeln!(out, "neg {} <- {}", reg(c[pc + 1]), reg(c[pc + 2]));
                    pc += 3;
                }
                op::COMPARE => {
                    let _ = writeln!(
                        out,
                        "cmp[{}] {} <- {}, {}",
                        c[pc + 1],
                        reg(c[pc + 2]),
                        reg(c[pc + 3]),
                        reg(c[pc + 4])
                    );
                    pc += 5;
                }
                op::REF_EQ => {
                    let _ = writeln!(
                        out,
                        "refeq {} <- {}, {}",
                        reg(c[pc + 1]),
                        reg(c[pc + 2]),
                        reg(c[pc + 3])
                    );
                    pc += 4;
                }
                op::IS_NULL => {
                    let _ = writeln!(out, "isnull {} <- {}", reg(c[pc + 1]), reg(c[pc + 2]));
                    pc += 3;
                }
                op::INSTANCE_OF => {
                    let _ = writeln!(
                        out,
                        "instanceof{} {} <- {}, C{}",
                        if c[pc + 4] != 0 { "!" } else { "" },
                        reg(c[pc + 1]),
                        reg(c[pc + 2]),
                        c[pc + 3]
                    );
                    pc += 5;
                }
                op::CHECK_CAST => {
                    let _ = writeln!(
                        out,
                        "checkcast {} <- {}, C{}",
                        reg(c[pc + 1]),
                        reg(c[pc + 2]),
                        c[pc + 3]
                    );
                    pc += 4;
                }
                op::NEW => {
                    let _ = writeln!(
                        out,
                        "new {} <- C{} (cost {})",
                        reg(c[pc + 1]),
                        c[pc + 2],
                        c[pc + 3]
                    );
                    pc += 4;
                }
                op::NEW_ARRAY => {
                    let _ = writeln!(
                        out,
                        "newarray {} <- len {} kind {}",
                        reg(c[pc + 1]),
                        reg(c[pc + 2]),
                        c[pc + 3]
                    );
                    pc += 4;
                }
                op::LOAD_FIELD => {
                    let _ = writeln!(
                        out,
                        "ldfld {} <- {}.[C{}+{}] (F{})",
                        reg(c[pc + 1]),
                        reg(c[pc + 2]),
                        c[pc + 3],
                        c[pc + 4],
                        c[pc + 5]
                    );
                    pc += 6;
                }
                op::STORE_FIELD => {
                    let _ = writeln!(
                        out,
                        "stfld {}.[C{}+{}] <- {} (F{})",
                        reg(c[pc + 1]),
                        c[pc + 3],
                        c[pc + 4],
                        reg(c[pc + 2]),
                        c[pc + 5]
                    );
                    pc += 6;
                }
                op::LOAD_INDEXED => {
                    let _ = writeln!(
                        out,
                        "ldidx {} <- {}[{}]",
                        reg(c[pc + 1]),
                        reg(c[pc + 2]),
                        reg(c[pc + 3])
                    );
                    pc += 4;
                }
                op::STORE_INDEXED => {
                    let _ = writeln!(
                        out,
                        "stidx {}[{}] <- {}",
                        reg(c[pc + 1]),
                        reg(c[pc + 2]),
                        reg(c[pc + 3])
                    );
                    pc += 4;
                }
                op::ARRAY_LEN => {
                    let _ = writeln!(out, "arraylen {} <- {}", reg(c[pc + 1]), reg(c[pc + 2]));
                    pc += 3;
                }
                op::MONITOR_ENTER => {
                    let _ = writeln!(out, "monenter {}", reg(c[pc + 1]));
                    pc += 2;
                }
                op::MONITOR_EXIT => {
                    let _ = writeln!(out, "monexit {}", reg(c[pc + 1]));
                    pc += 2;
                }
                op::GET_STATIC => {
                    let _ = writeln!(out, "getstatic {} <- S{}", reg(c[pc + 1]), c[pc + 2]);
                    pc += 3;
                }
                op::PUT_STATIC => {
                    let _ = writeln!(out, "putstatic S{} <- {}", c[pc + 2], reg(c[pc + 1]));
                    pc += 3;
                }
                op::INVOKE => {
                    let argc = c[pc + 5] as usize;
                    let args: Vec<String> = (0..argc).map(|i| reg(c[pc + 6 + i])).collect();
                    let _ = writeln!(
                        out,
                        "invoke{} {} <- M{}({}) deopt {}",
                        if c[pc + 2] != 0 { "virtual" } else { "static" },
                        reg(c[pc + 3]),
                        c[pc + 1],
                        args.join(", "),
                        c[pc + 4]
                    );
                    pc += 6 + argc;
                }
                op::COMMIT => {
                    let t = &self.commits[c[pc + 1] as usize];
                    let dsts: Vec<String> = t.objects.iter().map(|o| reg(o.dst)).collect();
                    let _ = writeln!(
                        out,
                        "commit #{} x{} -> [{}]",
                        c[pc + 1],
                        t.objects.len(),
                        dsts.join(", ")
                    );
                    pc += 2;
                }
                op::GUARD => {
                    let _ = writeln!(
                        out,
                        "guard {}{} reason {} deopt {}",
                        if c[pc + 2] != 0 { "!" } else { "" },
                        reg(c[pc + 1]),
                        c[pc + 3],
                        c[pc + 4]
                    );
                    pc += 5;
                }
                op::DEOPT => {
                    let _ = writeln!(out, "deopt reason {} deopt {}", c[pc + 1], c[pc + 2]);
                    pc += 3;
                }
                op::IF => {
                    let _ = writeln!(
                        out,
                        "if {} then {} else {}",
                        reg(c[pc + 1]),
                        c[pc + 2],
                        c[pc + 3]
                    );
                    pc += 4;
                }
                op::EDGE_END => {
                    let _ = writeln!(out, "edge");
                    pc += 1;
                }
                op::EDGE_LOOP_END => {
                    let _ = writeln!(out, "backedge (safepoint)");
                    pc += 1;
                }
                op::MOVE => {
                    let _ = writeln!(out, "mov {} <- {}", reg(c[pc + 1]), reg(c[pc + 2]));
                    pc += 3;
                }
                op::JUMP => {
                    let _ = writeln!(out, "jump {}", c[pc + 1]);
                    pc += 2;
                }
                op::RETURN => {
                    let _ = writeln!(out, "ret {}", reg(c[pc + 1]));
                    pc += 2;
                }
                op::THROW => {
                    let _ = writeln!(out, "throw {}", reg(c[pc + 1]));
                    pc += 2;
                }
                op::UNWIND => {
                    let _ = writeln!(out, "unwind {}", reg(c[pc + 1]));
                    pc += 2;
                }
                other => {
                    let _ = writeln!(out, "?{other}");
                    pc += 1;
                }
            }
        }
        out
    }
}

/// Encodes an [`pea_ir::ArithOp`] as an instruction operand.
pub(crate) fn arith_code(op: pea_ir::ArithOp) -> u32 {
    use pea_ir::ArithOp::*;
    match op {
        Add => 0,
        Sub => 1,
        Mul => 2,
        Div => 3,
        Rem => 4,
        And => 5,
        Or => 6,
        Xor => 7,
        Shl => 8,
        Shr => 9,
        Neg => unreachable!("unary negation uses op::NEG"),
    }
}

/// Encodes a [`pea_bytecode::CmpOp`] as an instruction operand.
pub(crate) fn cmp_code(op: pea_bytecode::CmpOp) -> u32 {
    use pea_bytecode::CmpOp::*;
    match op {
        Eq => 0,
        Ne => 1,
        Lt => 2,
        Le => 3,
        Gt => 4,
        Ge => 5,
    }
}

/// Encodes a [`pea_ir::DeoptReason`] as an instruction operand.
pub(crate) fn reason_code(r: pea_ir::DeoptReason) -> u32 {
    use pea_ir::DeoptReason::*;
    match r {
        UntakenBranch => 0,
        TypeCheck => 1,
        Unreached => 2,
        NullCheck => 3,
    }
}

/// Decodes a [`pea_ir::DeoptReason`] instruction operand.
pub(crate) fn decode_reason(r: u32) -> pea_ir::DeoptReason {
    use pea_ir::DeoptReason::*;
    match r {
        0 => UntakenBranch,
        1 => TypeCheck,
        2 => Unreached,
        _ => NullCheck,
    }
}

/// Encodes a [`pea_bytecode::ValueKind`] as an instruction operand.
pub(crate) fn kind_code(k: pea_bytecode::ValueKind) -> u32 {
    match k {
        pea_bytecode::ValueKind::Int => 0,
        pea_bytecode::ValueKind::Ref => 1,
    }
}

/// Decodes a [`pea_bytecode::ValueKind`] instruction operand.
pub(crate) fn decode_kind(k: u32) -> pea_bytecode::ValueKind {
    if k == 0 {
        pea_bytecode::ValueKind::Int
    } else {
        pea_bytecode::ValueKind::Ref
    }
}

/// Marker for `ClassId` operands (documentation aid; ids are raw `u32`s).
pub(crate) fn class_code(c: ClassId) -> u32 {
    c.0
}
