//! The direct-threaded dispatch loop over a [`LinearArtifact`].
//!
//! Executes the dense `u32` instruction stream without touching
//! [`pea_ir::Graph`] or `NodeId` anywhere on the hot path: operands are
//! registers in a pooled per-thread frame, field offsets and call targets
//! come pre-resolved from the artifact, and deopt metadata is read from
//! the compiled side tables.
//!
//! Cycle parity with graph evaluation is bit-exact: every handler charges
//! the same `pea_runtime::cost` constants in the same order `evaluate`
//! does. When the host enforces no fuel limit
//! ([`EvalEnv::has_fuel_limit`]), charges are accumulated locally and
//! flushed once on exit — the running total is observationally equivalent
//! because only the fuel check ever reads intermediate values.

use super::{decode_kind, decode_reason, op, DeoptPoint, SlotSrc, NO_REG};
use crate::eval::{DeoptFrame, EvalEnv, EvalOutcome};
use crate::pipeline::CompiledMethod;
use pea_bytecode::{ClassId, FieldId, MethodId, Program, StaticId};
use pea_ir::AllocShape;
use pea_runtime::cost;
use pea_runtime::{ObjRef, Value, VmError};
use std::cell::RefCell;

thread_local! {
    /// Register-file pool: frames are reused across calls (and across the
    /// recursion through [`EvalEnv::invoke`]) so the hot path never
    /// allocates.
    static REG_POOL: RefCell<Vec<Vec<Value>>> = const { RefCell::new(Vec::new()) };
}

/// Executes the lowered form of `code` with `args`.
///
/// # Errors
///
/// Runtime errors ([`VmError`]) exactly as graph evaluation (and the
/// interpreter) would raise them for the same program state.
///
/// # Panics
///
/// Panics if `code` has no [`super::LinearArtifact`] — the VM dispatches
/// to the graph tier in that case.
pub fn execute(
    program: &Program,
    env: &mut dyn EvalEnv,
    code: &CompiledMethod,
    args: &[Value],
) -> Result<EvalOutcome, VmError> {
    let art = code.linear.as_ref().expect("method has no linear artifact");
    env.charge(cost::CALL_OVERHEAD + cost::icache_cost(code.code_size))?;
    let mut regs = REG_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    // Registers are written before every read (SSA dominance carries over
    // to the lowered form), so stale values from the frame's previous use
    // are never observable; only the size must fit.
    regs.resize(art.num_regs as usize, Value::Null);
    let exact = env.has_fuel_limit();
    let mut pending: u64 = 0;
    let result = run(program, env, art, args, &mut regs, &mut pending, exact);
    REG_POOL.with(|p| p.borrow_mut().push(std::mem::take(&mut regs)));
    if pending > 0 {
        // No fuel limit is in force (exact mode charges inline), so this
        // flush cannot fail.
        env.charge(pending)?;
    }
    result
}

#[allow(clippy::too_many_lines)]
fn run(
    program: &Program,
    env: &mut dyn EvalEnv,
    art: &super::LinearArtifact,
    args: &[Value],
    regs: &mut [Value],
    pending: &mut u64,
    exact: bool,
) -> Result<EvalOutcome, VmError> {
    let c: &[u32] = &art.code;
    let mut pc = 0usize;

    macro_rules! charge {
        ($n:expr) => {
            if exact {
                env.charge($n)?;
            } else {
                *pending += $n;
            }
        };
    }

    loop {
        match c[pc] {
            op::LOAD_PARAM => {
                regs[c[pc + 1] as usize] = args[c[pc + 2] as usize];
                pc += 3;
            }
            op::CONST_INT => {
                regs[c[pc + 1] as usize] = Value::Int(art.pool[c[pc + 2] as usize]);
                pc += 3;
            }
            op::CONST_NULL => {
                regs[c[pc + 1] as usize] = Value::Null;
                pc += 2;
            }
            op::ARITH => {
                charge!(cost::ALU_OP);
                let a = regs[c[pc + 3] as usize].as_int()?;
                let b = regs[c[pc + 4] as usize].as_int()?;
                let r = match c[pc + 1] {
                    0 => a.wrapping_add(b),
                    1 => a.wrapping_sub(b),
                    2 => a.wrapping_mul(b),
                    3 => {
                        if b == 0 {
                            return Err(VmError::DivisionByZero);
                        }
                        a.wrapping_div(b)
                    }
                    4 => {
                        if b == 0 {
                            return Err(VmError::DivisionByZero);
                        }
                        a.wrapping_rem(b)
                    }
                    5 => a & b,
                    6 => a | b,
                    7 => a ^ b,
                    8 => a.wrapping_shl((b & 63) as u32),
                    _ => a.wrapping_shr((b & 63) as u32),
                };
                regs[c[pc + 2] as usize] = Value::Int(r);
                pc += 5;
            }
            op::NEG => {
                charge!(cost::ALU_OP);
                let a = regs[c[pc + 2] as usize].as_int()?;
                regs[c[pc + 1] as usize] = Value::Int(a.wrapping_neg());
                pc += 3;
            }
            op::COMPARE => {
                charge!(cost::ALU_OP);
                let a = regs[c[pc + 3] as usize].as_int()?;
                let b = regs[c[pc + 4] as usize].as_int()?;
                let r = match c[pc + 1] {
                    0 => a == b,
                    1 => a != b,
                    2 => a < b,
                    3 => a <= b,
                    4 => a > b,
                    _ => a >= b,
                };
                regs[c[pc + 2] as usize] = Value::from_bool(r);
                pc += 5;
            }
            op::REF_EQ => {
                charge!(cost::ALU_OP);
                let a = regs[c[pc + 2] as usize].as_ref_or_null()?;
                let b = regs[c[pc + 3] as usize].as_ref_or_null()?;
                regs[c[pc + 1] as usize] = Value::from_bool(a == b);
                pc += 4;
            }
            op::IS_NULL => {
                charge!(cost::ALU_OP);
                let v = regs[c[pc + 2] as usize].as_ref_or_null()?;
                regs[c[pc + 1] as usize] = Value::from_bool(v.is_none());
                pc += 3;
            }
            op::INSTANCE_OF => {
                charge!(cost::ALU_OP);
                let v = regs[c[pc + 2] as usize].as_ref_or_null()?;
                let class = ClassId(c[pc + 3]);
                let is = match v {
                    Some(r) => {
                        let dynamic = env.heap().class_of(r)?;
                        if c[pc + 4] != 0 {
                            dynamic == class
                        } else {
                            program.is_subclass_of(dynamic, class)
                        }
                    }
                    None => false,
                };
                regs[c[pc + 1] as usize] = Value::from_bool(is);
                pc += 5;
            }
            op::CHECK_CAST => {
                charge!(cost::ALU_OP);
                let v = regs[c[pc + 2] as usize];
                if let Some(r) = v.as_ref_or_null()? {
                    let class = ClassId(c[pc + 3]);
                    let dynamic = env.heap().class_of(r)?;
                    if !program.is_subclass_of(dynamic, class) {
                        return Err(VmError::ClassCast {
                            expected: program.class(class).name.clone(),
                            found: program.class(dynamic).name.clone(),
                        });
                    }
                }
                regs[c[pc + 1] as usize] = v;
                pc += 4;
            }
            op::NEW => {
                charge!(u64::from(c[pc + 3]));
                env.profiler().record_alloc();
                let r = env.heap().alloc_instance(program, ClassId(c[pc + 2]));
                regs[c[pc + 1] as usize] = Value::Ref(r);
                pc += 4;
            }
            op::NEW_ARRAY => {
                let len = regs[c[pc + 2] as usize].as_int()?;
                charge!(cost::alloc_cost(Program::array_size(len.max(0) as u64)));
                env.profiler().record_alloc();
                let r = env.heap().alloc_array(decode_kind(c[pc + 3]), len)?;
                regs[c[pc + 1] as usize] = Value::Ref(r);
                pc += 4;
            }
            op::LOAD_FIELD => {
                charge!(cost::MEMORY_OP);
                let obj = regs[c[pc + 2] as usize].as_ref()?;
                let v = env.heap().get_field_at(
                    program,
                    obj,
                    ClassId(c[pc + 3]),
                    c[pc + 4] as usize,
                    FieldId(c[pc + 5]),
                )?;
                regs[c[pc + 1] as usize] = v;
                pc += 6;
            }
            op::STORE_FIELD => {
                charge!(cost::MEMORY_OP);
                let obj = regs[c[pc + 1] as usize].as_ref()?;
                let v = regs[c[pc + 2] as usize];
                env.heap().put_field_at(
                    program,
                    obj,
                    ClassId(c[pc + 3]),
                    c[pc + 4] as usize,
                    FieldId(c[pc + 5]),
                    v,
                )?;
                pc += 6;
            }
            op::LOAD_INDEXED => {
                charge!(cost::MEMORY_OP);
                let arr = regs[c[pc + 2] as usize].as_ref()?;
                let idx = regs[c[pc + 3] as usize].as_int()?;
                regs[c[pc + 1] as usize] = env.heap().array_get(arr, idx)?;
                pc += 4;
            }
            op::STORE_INDEXED => {
                charge!(cost::MEMORY_OP);
                let arr = regs[c[pc + 1] as usize].as_ref()?;
                let idx = regs[c[pc + 2] as usize].as_int()?;
                let v = regs[c[pc + 3] as usize];
                env.heap().array_set(arr, idx, v)?;
                pc += 4;
            }
            op::ARRAY_LEN => {
                charge!(cost::MEMORY_OP);
                let arr = regs[c[pc + 2] as usize].as_ref()?;
                let len = env.heap().array_length(arr)?;
                regs[c[pc + 1] as usize] = Value::Int(len);
                pc += 3;
            }
            op::MONITOR_ENTER => {
                charge!(cost::MONITOR_OP);
                let obj = regs[c[pc + 1] as usize].as_ref()?;
                env.heap().monitor_enter(obj);
                pc += 2;
            }
            op::MONITOR_EXIT => {
                charge!(cost::MONITOR_OP);
                let obj = regs[c[pc + 1] as usize].as_ref()?;
                env.heap().monitor_exit(obj)?;
                pc += 2;
            }
            op::GET_STATIC => {
                charge!(cost::MEMORY_OP);
                regs[c[pc + 1] as usize] = env.statics().get(StaticId(c[pc + 2]));
                pc += 3;
            }
            op::PUT_STATIC => {
                charge!(cost::MEMORY_OP);
                let v = regs[c[pc + 1] as usize];
                env.statics().set(StaticId(c[pc + 2]), v);
                pc += 3;
            }
            op::INVOKE => {
                let dst = c[pc + 3];
                let argc = c[pc + 5] as usize;
                let mut call_args = Vec::with_capacity(argc);
                for i in 0..argc {
                    call_args.push(regs[c[pc + 6 + i] as usize]);
                }
                let resolved = if c[pc + 2] != 0 {
                    let recv = call_args[0].as_ref()?;
                    let dynamic = env.heap().class_of(recv)?;
                    program
                        .resolve_virtual(dynamic, MethodId(c[pc + 1]))
                        .map_err(|e| VmError::NoSuchMethod(e.to_string()))?
                } else {
                    MethodId(c[pc + 1])
                };
                match env.invoke(resolved, call_args) {
                    Ok(result) => {
                        if let Some(v) = result {
                            if dst != NO_REG {
                                regs[dst as usize] = v;
                            }
                        }
                    }
                    Err(VmError::Thrown(exc)) => {
                        // The callee threw a catchable exception:
                        // deoptimize at the call site and let the
                        // interpreter unwind the rematerialized frames.
                        charge!(cost::DEOPT_PENALTY);
                        let returns = program.method(resolved).returns_value;
                        if returns && dst != NO_REG {
                            // The after-state has the (never produced)
                            // result on the stack: stand in a null.
                            regs[dst as usize] = Value::Null;
                        }
                        let point = &art.deopts[c[pc + 4] as usize];
                        let (mut frames, rematerialized) =
                            materialize_frames(program, env, point, regs)?;
                        let inner = frames.last_mut().expect("invoke state has a frame");
                        if returns {
                            inner.stack.pop();
                        }
                        inner.bci = inner.bci.saturating_sub(1);
                        return Ok(EvalOutcome::Unwind {
                            exception: exc,
                            frames,
                            rematerialized,
                        });
                    }
                    Err(e) => return Err(e),
                }
                pc += 6 + argc;
            }
            op::COMMIT => {
                // Group materialization: allocate all objects first so
                // cyclic field references resolve, then fill fields and
                // re-enter monitors (paper §4).
                let t = &art.commits[c[pc + 1] as usize];
                let mut refs = Vec::with_capacity(t.objects.len());
                for o in &t.objects {
                    charge!(o.alloc_cycles);
                    let r = match o.shape {
                        AllocShape::Instance { class } => env.heap().alloc_instance(program, class),
                        AllocShape::Array { kind, length } => {
                            env.heap().alloc_array(kind, i64::from(length))?
                        }
                    };
                    env.profiler().record_alloc();
                    refs.push(r);
                }
                for (oi, o) in t.objects.iter().enumerate() {
                    for (fi, (src, field)) in o.fields.iter().zip(&o.field_ids).enumerate() {
                        let v = match *src {
                            super::CommitFieldSrc::Reg(rg) => regs[rg as usize],
                            super::CommitFieldSrc::SameCommit(i) => Value::Ref(refs[i as usize]),
                        };
                        match field {
                            // The object is exactly its template class, so
                            // its slot layout is the template's field
                            // order: slot == fi.
                            Some(f) => {
                                let decl = program.field(*f).class;
                                env.heap()
                                    .put_field_at(program, refs[oi], decl, fi, *f, v)?;
                            }
                            None => env.heap().array_set(refs[oi], fi as i64, v)?,
                        }
                    }
                    for _ in 0..o.lock_count {
                        charge!(cost::MONITOR_OP);
                        env.heap().monitor_enter(refs[oi]);
                    }
                }
                for (oi, o) in t.objects.iter().enumerate() {
                    if o.dst != NO_REG {
                        regs[o.dst as usize] = Value::Ref(refs[oi]);
                    }
                }
                pc += 2;
            }
            op::GUARD => {
                charge!(cost::BRANCH_OP);
                let cond = regs[c[pc + 1] as usize].as_bool()?;
                if cond == (c[pc + 2] != 0) {
                    charge!(cost::DEOPT_PENALTY);
                    let point = &art.deopts[c[pc + 4] as usize];
                    let (frames, rematerialized) = materialize_frames(program, env, point, regs)?;
                    return Ok(EvalOutcome::Deopt {
                        reason: decode_reason(c[pc + 3]),
                        frames,
                        rematerialized,
                    });
                }
                pc += 5;
            }
            op::DEOPT => {
                charge!(cost::DEOPT_PENALTY);
                let point = &art.deopts[c[pc + 2] as usize];
                let (frames, rematerialized) = materialize_frames(program, env, point, regs)?;
                return Ok(EvalOutcome::Deopt {
                    reason: decode_reason(c[pc + 1]),
                    frames,
                    rematerialized,
                });
            }
            op::IF => {
                charge!(cost::BRANCH_OP);
                let cond = regs[c[pc + 1] as usize].as_bool()?;
                pc = if cond { c[pc + 2] } else { c[pc + 3] } as usize;
            }
            op::EDGE_END => {
                charge!(cost::BRANCH_OP);
                pc += 1;
            }
            op::EDGE_LOOP_END => {
                charge!(cost::BRANCH_OP);
                // Compiled-code safepoint at the loop back-edge.
                env.safepoint();
                pc += 1;
            }
            op::MOVE => {
                regs[c[pc + 1] as usize] = regs[c[pc + 2] as usize];
                pc += 3;
            }
            op::JUMP => {
                pc = c[pc + 1] as usize;
            }
            op::RETURN => {
                let src = c[pc + 1];
                let v = if src == NO_REG {
                    None
                } else {
                    Some(regs[src as usize])
                };
                return Ok(EvalOutcome::Return(v));
            }
            op::THROW => {
                let code_v = regs[c[pc + 1] as usize].as_int()?;
                return Err(VmError::UserException(code_v));
            }
            op::UNWIND => {
                let exc = regs[c[pc + 1] as usize].as_ref()?;
                return Err(VmError::Thrown(exc));
            }
            other => {
                return Err(VmError::Internal(format!(
                    "linear dispatch: invalid opcode {other} at pc {pc}"
                )))
            }
        }
    }
}

/// Reconstructs the interpreter frame chain from a compiled deopt point,
/// rematerializing virtual objects (paper §5.5). Mirrors the graph
/// evaluator's `build_deopt_frames` exactly — same allocation order, same
/// inventory labels, same lock re-entries — so traces and stats are
/// byte-identical between the tiers.
fn materialize_frames(
    program: &Program,
    env: &mut dyn EvalEnv,
    point: &DeoptPoint,
    regs: &[Value],
) -> Result<(Vec<DeoptFrame>, Vec<String>), VmError> {
    let mut cache: Vec<Option<ObjRef>> = vec![None; point.vobjs.len()];
    let mut inventory: Vec<String> = Vec::new();
    let mut frames = Vec::with_capacity(point.frames.len());
    for f in &point.frames {
        let mut locals = Vec::with_capacity(f.locals.len());
        for &s in &f.locals {
            locals.push(resolve_slot(
                program,
                env,
                point,
                regs,
                &mut cache,
                &mut inventory,
                s,
            )?);
        }
        let mut stack = Vec::with_capacity(f.stack.len());
        for &s in &f.stack {
            stack.push(resolve_slot(
                program,
                env,
                point,
                regs,
                &mut cache,
                &mut inventory,
                s,
            )?);
        }
        let mut locked = Vec::with_capacity(f.locks.len());
        for &(s, sync) in &f.locks {
            let obj =
                resolve_slot(program, env, point, regs, &mut cache, &mut inventory, s)?.as_ref()?;
            locked.push((obj, sync));
        }
        frames.push(DeoptFrame {
            method: f.method,
            bci: f.bci,
            locals,
            stack,
            locked,
        });
    }
    Ok((frames, inventory))
}

/// Resolves one compiled frame-state slot: registers read the frame,
/// virtual objects are rematerialized (cycle-safe two-phase construction,
/// locks re-entered).
fn resolve_slot(
    program: &Program,
    env: &mut dyn EvalEnv,
    point: &DeoptPoint,
    regs: &[Value],
    cache: &mut [Option<ObjRef>],
    inventory: &mut Vec<String>,
    src: SlotSrc,
) -> Result<Value, VmError> {
    let vi = match src {
        SlotSrc::Reg(r) => return Ok(regs[r as usize]),
        SlotSrc::Virtual(i) => i as usize,
    };
    if let Some(r) = cache[vi] {
        return Ok(Value::Ref(r));
    }
    let vo = &point.vobjs[vi];
    let r = match vo.shape {
        AllocShape::Instance { class } => env.heap().alloc_instance(program, class),
        AllocShape::Array { kind, length } => env.heap().alloc_array(kind, i64::from(length))?,
    };
    env.heap().stats.rematerialized += 1;
    env.profiler().record_alloc();
    inventory.push(vo.name.clone());
    cache[vi] = Some(r);
    for (fi, (&fsrc, field)) in vo.fields.iter().zip(&vo.field_ids).enumerate() {
        let v = resolve_slot(program, env, point, regs, cache, inventory, fsrc)?;
        match field {
            Some(f) => env.heap().put_field(program, r, *f, v)?,
            None => env.heap().array_set(r, fi as i64, v)?,
        }
    }
    for _ in 0..vo.lock_count {
        env.heap().monitor_enter(r);
    }
    Ok(Value::Ref(r))
}
