//! Canonicalization: constant folding, phi simplification and global
//! value numbering over the floating value nodes.
//!
//! PEA "is particularly effective if it can interact with other parts of
//! the compiler, such as inlining, global value numbering, and constant
//! folding" (paper §5) — the pipeline runs this pass before and after the
//! escape analysis.

use pea_bytecode::CmpOp;
use pea_ir::{ArithOp, Graph, NodeId, NodeKind};
use std::collections::HashMap;

/// Statistics from one canonicalization run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CanonResult {
    /// Arithmetic/compare nodes folded to constants.
    pub folded: usize,
    /// Phis replaced by their single distinct input.
    pub simplified_phis: usize,
    /// Nodes deduplicated by value numbering.
    pub gvn_hits: usize,
}

/// Runs canonicalization to a fixpoint. Only floating value nodes are
/// touched; control flow is left intact.
pub fn canonicalize(graph: &mut Graph) -> CanonResult {
    let mut result = CanonResult::default();
    loop {
        let mut changed = false;

        // Constant folding.
        let candidates: Vec<NodeId> = graph
            .live_nodes()
            .filter(|&n| {
                matches!(
                    graph.kind(n),
                    NodeKind::Arith { .. } | NodeKind::Compare { .. }
                )
            })
            .collect();
        for n in candidates {
            if let Some(value) = fold(graph, n) {
                let c = graph.const_int(value);
                if c != n {
                    graph.replace_at_usages(n, c);
                    graph.kill(n);
                    result.folded += 1;
                    changed = true;
                }
            }
        }

        // Phi simplification: all inputs identical (ignoring self-loops).
        let phis: Vec<NodeId> = graph
            .live_nodes()
            .filter(|&n| matches!(graph.kind(n), NodeKind::Phi { .. }))
            .collect();
        for phi in phis {
            let inputs = graph.node(phi).inputs().to_vec();
            let distinct: Vec<NodeId> = inputs.iter().copied().filter(|&i| i != phi).collect();
            if distinct.is_empty() {
                continue;
            }
            let first = distinct[0];
            if distinct.iter().all(|&i| i == first) {
                // replace_at_usages also rewrites the phi's own self-loop
                // input, leaving it use-free.
                graph.replace_at_usages(phi, first);
                graph.kill(phi);
                result.simplified_phis += 1;
                changed = true;
            }
        }

        // Global value numbering over pure floating nodes.
        let mut table: HashMap<(String, Vec<NodeId>), NodeId> = HashMap::new();
        let gvn_candidates: Vec<NodeId> = graph
            .live_nodes()
            .filter(|&n| {
                matches!(
                    graph.kind(n),
                    NodeKind::Arith { .. }
                        | NodeKind::Compare { .. }
                        | NodeKind::ConstInt { .. }
                        | NodeKind::ConstNull
                        | NodeKind::Param { .. }
                )
            })
            .collect();
        for n in gvn_candidates {
            let key = (
                format!("{:?}", graph.kind(n)),
                graph.node(n).inputs().to_vec(),
            );
            match table.get(&key) {
                Some(&existing) if existing != n => {
                    graph.replace_at_usages(n, existing);
                    graph.kill(n);
                    result.gvn_hits += 1;
                    changed = true;
                }
                _ => {
                    table.insert(key, n);
                }
            }
        }

        if !changed {
            break;
        }
    }
    result
}

fn const_of(graph: &Graph, n: NodeId) -> Option<i64> {
    match graph.kind(n) {
        NodeKind::ConstInt { value } => Some(*value),
        _ => None,
    }
}

fn fold(graph: &Graph, n: NodeId) -> Option<i64> {
    let inputs = graph.node(n).inputs();
    match graph.kind(n) {
        NodeKind::Arith { op } => {
            let a = const_of(graph, inputs[0])?;
            if *op == ArithOp::Neg {
                return Some(a.wrapping_neg());
            }
            let b = const_of(graph, inputs[1])?;
            Some(match op {
                ArithOp::Add => a.wrapping_add(b),
                ArithOp::Sub => a.wrapping_sub(b),
                ArithOp::Mul => a.wrapping_mul(b),
                ArithOp::And => a & b,
                ArithOp::Or => a | b,
                ArithOp::Xor => a ^ b,
                ArithOp::Shl => a.wrapping_shl((b & 63) as u32),
                ArithOp::Shr => a.wrapping_shr((b & 63) as u32),
                ArithOp::Div | ArithOp::Rem | ArithOp::Neg => return None,
            })
        }
        NodeKind::Compare { op } => {
            let a = const_of(graph, inputs[0])?;
            let b = const_of(graph, inputs[1])?;
            let op: CmpOp = *op;
            Some(i64::from(op.apply(a, b)))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_constant_arithmetic() {
        let mut g = Graph::new();
        let a = g.const_int(6);
        let b = g.const_int(7);
        let mul = g.add(NodeKind::Arith { op: ArithOp::Mul }, vec![a, b]);
        let ret = g.add(NodeKind::Return, vec![mul]);
        g.set_next(g.start, ret);
        let r = canonicalize(&mut g);
        assert_eq!(r.folded, 1);
        assert!(matches!(
            g.kind(g.node(ret).inputs()[0]),
            NodeKind::ConstInt { value: 42 }
        ));
    }

    #[test]
    fn folds_transitively() {
        let mut g = Graph::new();
        let a = g.const_int(1);
        let b = g.const_int(2);
        let s1 = g.add(NodeKind::Arith { op: ArithOp::Add }, vec![a, b]);
        let s2 = g.add(NodeKind::Arith { op: ArithOp::Add }, vec![s1, s1]);
        let ret = g.add(NodeKind::Return, vec![s2]);
        g.set_next(g.start, ret);
        canonicalize(&mut g);
        assert!(matches!(
            g.kind(g.node(ret).inputs()[0]),
            NodeKind::ConstInt { value: 6 }
        ));
    }

    #[test]
    fn does_not_fold_division_by_zero() {
        let mut g = Graph::new();
        let a = g.const_int(1);
        let b = g.const_int(0);
        let div = g.add(NodeKind::FixedArith { op: ArithOp::Div }, vec![a, b]);
        g.set_next(g.start, div);
        let ret = g.add(NodeKind::Return, vec![div]);
        g.set_next(div, ret);
        let r = canonicalize(&mut g);
        assert_eq!(r.folded, 0);
    }

    #[test]
    fn simplifies_redundant_loop_phi() {
        let mut g = Graph::new();
        let end = g.add(NodeKind::End, vec![]);
        g.set_next(g.start, end);
        let lb = g.add(NodeKind::LoopBegin { ends: vec![end] }, vec![]);
        let x = g.const_int(5);
        let phi = g.add(NodeKind::Phi { merge: lb }, vec![x]);
        g.push_input(phi, phi); // self back edge
        let le = g.add(NodeKind::LoopEnd, vec![]);
        g.set_next(lb, le);
        g.add_merge_end(lb, le);
        let r = canonicalize(&mut g);
        assert_eq!(r.simplified_phis, 1);
    }

    #[test]
    fn gvn_deduplicates_identical_ops() {
        let mut g = Graph::new();
        let p = g.add(NodeKind::Param { index: 0 }, vec![]);
        let a = g.add(NodeKind::Arith { op: ArithOp::Add }, vec![p, p]);
        let b = g.add(NodeKind::Arith { op: ArithOp::Add }, vec![p, p]);
        let sum = g.add(NodeKind::Arith { op: ArithOp::Mul }, vec![a, b]);
        let ret = g.add(NodeKind::Return, vec![sum]);
        g.set_next(g.start, ret);
        let r = canonicalize(&mut g);
        assert!(r.gvn_hits >= 1);
        let inputs = g.node(sum).inputs();
        assert_eq!(inputs[0], inputs[1]);
    }

    #[test]
    fn folds_comparisons() {
        let mut g = Graph::new();
        let a = g.const_int(3);
        let b = g.const_int(4);
        let cmp = g.add(NodeKind::Compare { op: CmpOp::Lt }, vec![a, b]);
        let ret = g.add(NodeKind::Return, vec![cmp]);
        g.set_next(g.start, ret);
        canonicalize(&mut g);
        assert!(matches!(
            g.kind(g.node(ret).inputs()[0]),
            NodeKind::ConstInt { value: 1 }
        ));
    }
}
