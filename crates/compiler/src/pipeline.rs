//! Phase orchestration: bytecode → graph → canonicalize → escape analysis
//! → canonicalize → schedule → [`CompiledMethod`].

use crate::builder::{build_graph, Bailout, BuildOptions};
use crate::canon::canonicalize;
use pea_bytecode::{MethodId, Program};
use pea_core::{run_ees, run_pea, run_pea_traced, PeaOptions, PeaResult};
use pea_ir::cfg::Cfg;
use pea_ir::dom::DomTree;
use pea_ir::schedule::Schedule;
use pea_ir::Graph;
use pea_ir::NodeKind;
use pea_runtime::profile::ProfileStore;
use pea_trace::{PhaseMicros, TraceEvent, TraceSink, Tracer};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Which escape analysis the pipeline runs — the three configurations the
/// paper's evaluation compares (§6: none vs. PEA; §6.2: the
/// flow-insensitive server-compiler-style baseline).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OptLevel {
    /// No escape analysis (the paper's "without" configuration — the
    /// original Graal performed none).
    None,
    /// Flow-insensitive Equi-Escape-Sets baseline.
    Ees,
    /// Partial Escape Analysis (the paper's contribution).
    Pea,
    /// PEA with a static pre-filter: a flow-insensitive escape
    /// pre-analysis (see `pea-analysis`) runs over the bytecode first and
    /// allocation sites it proves globally escaping are never handed to
    /// the flow-sensitive analysis, saving PEA work without changing the
    /// optimized artifact ([`PeaResult::prefiltered_allocs`] reports how
    /// many sites were excluded up front).
    PeaPre,
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OptLevel::None => "none",
            OptLevel::Ees => "ees",
            OptLevel::Pea => "pea",
            OptLevel::PeaPre => "pea-pre",
        })
    }
}

/// Full compiler configuration.
#[derive(Clone, Debug)]
pub struct CompilerOptions {
    /// Escape-analysis configuration.
    pub opt_level: OptLevel,
    /// Graph-building (inlining/speculation) options.
    pub build: BuildOptions,
    /// PEA tuning and ablations.
    pub pea: PeaOptions,
    /// How many times to run the escape-analysis phase. The paper notes
    /// the analysis "can be applied, possibly multiple times, at any
    /// point during compilation" (§1); later runs pick up opportunities
    /// exposed by canonicalization of the previous one. The analysis is
    /// idempotent, so extra iterations are safe.
    pub ea_iterations: usize,
}

impl CompilerOptions {
    /// Defaults with the given escape-analysis level.
    pub fn with_opt_level(opt_level: OptLevel) -> Self {
        CompilerOptions {
            opt_level,
            build: BuildOptions::default(),
            pea: PeaOptions::default(),
            ea_iterations: 1,
        }
    }
}

impl Default for CompilerOptions {
    fn default() -> Self {
        Self::with_opt_level(OptLevel::Pea)
    }
}

/// Wall-clock time spent in each compilation phase, for the compile-speed
/// benchmark and compile-service telemetry. Purely observational: two
/// compilations of the same method differ only here, never in the
/// artifact itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Bytecode → graph construction (including inlining).
    pub build: Duration,
    /// All canonicalization passes (constant folding, GVN, phi
    /// simplification), across every run.
    pub canonicalize: Duration,
    /// The escape-analysis phase (all `ea_iterations` rounds).
    pub escape_analysis: Duration,
    /// CFG construction, dominators and scheduling.
    pub schedule: Duration,
}

impl PhaseTimes {
    /// Accumulates another compilation's phase times into this one.
    pub fn absorb(&mut self, other: &PhaseTimes) {
        self.build += other.build;
        self.canonicalize += other.canonicalize;
        self.escape_analysis += other.escape_analysis;
        self.schedule += other.schedule;
    }

    /// Total time across all phases.
    pub fn total(&self) -> Duration {
        self.build + self.canonicalize + self.escape_analysis + self.schedule
    }
}

/// The compiled form of a method: the optimized graph plus the CFG and
/// schedule the evaluator executes.
#[derive(Clone, Debug)]
pub struct CompiledMethod {
    /// The compiled method.
    pub method: MethodId,
    /// Optimized graph.
    pub graph: Graph,
    /// Its control-flow graph.
    pub cfg: Cfg,
    /// Execution schedule (floating nodes placed).
    pub schedule: Schedule,
    /// Scheduled node count — the "machine code size" for the cost
    /// model's instruction-cache term.
    pub code_size: u64,
    /// What the escape-analysis phase did (for reporting), aggregated
    /// across every `ea_iterations` round.
    pub pea_result: PeaResult,
    /// Wall-clock per-phase compile times (observational; excluded from
    /// artifact-equality comparisons).
    pub times: PhaseTimes,
}

// Compile requests cross thread boundaries in the background compile
// service, and finished artifacts are shared between the VM and the
// service, so both directions must be thread-safe by construction.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CompiledMethod>();
    assert_send_sync::<CompilerOptions>();
    assert_send_sync::<ProfileStore>();
};

/// Compiles `method` at the given options.
///
/// # Errors
///
/// [`Bailout`] when the method cannot be compiled; the VM keeps
/// interpreting it.
pub fn compile(
    program: &Program,
    method: MethodId,
    profiles: Option<&ProfileStore>,
    options: &CompilerOptions,
) -> Result<CompiledMethod, Bailout> {
    compile_impl(program, method, profiles, options, Tracer::off())
}

/// Like [`compile`], but emits [`TraceEvent`]s describing the compilation:
/// a [`TraceEvent::CompileStart`]/[`TraceEvent::CompileEnd`] bracket, with
/// every PEA decision in between (see [`run_pea_traced`]).
///
/// # Errors
///
/// [`Bailout`] as for [`compile`] (no `CompileEnd` is emitted then).
pub fn compile_traced(
    program: &Program,
    method: MethodId,
    profiles: Option<&ProfileStore>,
    options: &CompilerOptions,
    sink: &mut dyn TraceSink,
) -> Result<CompiledMethod, Bailout> {
    compile_impl(program, method, profiles, options, Tracer::new(sink))
}

fn compile_impl<'a>(
    program: &'a Program,
    method: MethodId,
    profiles: Option<&'a ProfileStore>,
    options: &'a CompilerOptions,
    mut tracer: Tracer<'a>,
) -> Result<CompiledMethod, Bailout> {
    tracer.emit_with(|| TraceEvent::CompileStart {
        method: program.method(method).qualified_name(program),
        level: options.opt_level.to_string(),
    });
    let mut times = PhaseTimes::default();
    let t = Instant::now();
    let mut graph = build_graph(program, method, profiles, &options.build)?;
    times.build = t.elapsed();
    debug_assert_verify(&graph, "after build");
    let t = Instant::now();
    canonicalize(&mut graph);
    graph.prune_dead();
    times.canonicalize += t.elapsed();
    debug_assert_verify(&graph, "after canonicalize");

    // The pre-filter exclusion set is computed once, up front: allocation
    // nodes only appear during graph building (inlining included), never
    // during canonicalization, so later EA rounds see the same sites.
    let mut prefiltered_allocs = 0usize;
    let effective_pea: PeaOptions = if options.opt_level == OptLevel::PeaPre {
        let mut allowed = prefilter_allowed(program, &graph, &mut prefiltered_allocs);
        if let Some(user) = &options.pea.allowed {
            allowed.retain(|n| user.contains(n));
        }
        PeaOptions {
            allowed: Some(allowed),
            ..options.pea.clone()
        }
    } else {
        options.pea.clone()
    };

    let mut pea_result = PeaResult::default();
    for _ in 0..options.ea_iterations.max(1) {
        let t = Instant::now();
        let r = match options.opt_level {
            OptLevel::None => PeaResult::default(),
            OptLevel::Ees => run_ees(&mut graph, program, &effective_pea),
            OptLevel::Pea | OptLevel::PeaPre => match tracer.sink() {
                Some(sink) => run_pea_traced(&mut graph, program, &effective_pea, sink),
                None => run_pea(&mut graph, program, &effective_pea),
            },
        };
        times.escape_analysis += t.elapsed();
        debug_assert_verify(&graph, "after escape analysis");
        let t = Instant::now();
        canonicalize(&mut graph);
        graph.prune_dead();
        times.canonicalize += t.elapsed();
        // Every round's counters are real graph changes: report the sum,
        // not just the first round's.
        pea_result.absorb(&r);
        if !r.changed() {
            break;
        }
    }
    pea_result.prefiltered_allocs = prefiltered_allocs;

    // A verification failure here is a compiler bug; degrade to a bailout
    // so the VM falls back to the interpreter instead of executing a
    // corrupt graph.
    if let Err(e) = pea_ir::verify::verify(&graph) {
        debug_assert!(false, "post-compilation verification failed: {e}");
        return Err(Bailout::Unsupported(format!("verification failed: {e}")));
    }

    let t = Instant::now();
    let cfg = Cfg::build(&graph);
    let dom = DomTree::build(&cfg);
    let schedule = Schedule::build(&graph, &cfg, &dom);
    times.schedule = t.elapsed();
    let code_size = schedule.code_size();
    tracer.emit_with(|| TraceEvent::CompileEnd {
        method: program.method(method).qualified_name(program),
        code_size,
        phases: PhaseMicros {
            build: times.build.as_micros() as u64,
            canonicalize: times.canonicalize.as_micros() as u64,
            escape_analysis: times.escape_analysis.as_micros() as u64,
            schedule: times.schedule.as_micros() as u64,
        },
    });
    Ok(CompiledMethod {
        method,
        graph,
        cfg,
        schedule,
        code_size,
        pea_result,
        times,
    })
}

/// Computes the allocation nodes PEA may virtualize at
/// [`OptLevel::PeaPre`]: every live `New`/`NewArray` except those the
/// static pre-analysis proves globally escaping up front. Only the
/// immediately-stored-to-a-static pattern qualifies — it is the one
/// verdict that stays correct no matter where the bytecode was inlined —
/// so the filter can never change what PEA produces, only skip work.
/// `excluded` receives the number of sites filtered out.
fn prefilter_allowed(
    program: &Program,
    graph: &Graph,
    excluded: &mut usize,
) -> std::collections::HashSet<pea_ir::NodeId> {
    let mut global_sites: HashMap<MethodId, Vec<u32>> = HashMap::new();
    let mut allowed = std::collections::HashSet::new();
    for id in graph.live_nodes() {
        if !matches!(
            graph.kind(id),
            NodeKind::New { .. } | NodeKind::NewArray { .. }
        ) {
            continue;
        }
        let escapes = graph.provenance(id).is_some_and(|(m, bci)| {
            global_sites
                .entry(m)
                .or_insert_with(|| pea_analysis::escape::immediate_global_sites(program.method(m)))
                .contains(&bci)
        });
        if escapes {
            *excluded += 1;
        } else {
            allowed.insert(id);
        }
    }
    allowed
}

fn debug_assert_verify(graph: &Graph, stage: &str) {
    if cfg!(debug_assertions) {
        if let Err(e) = pea_ir::verify::verify(graph) {
            panic!("{stage}: {e}\n{}", pea_ir::dump::dump(graph));
        }
    }
}
