//! Pipeline entry points and configuration: [`compile`]/[`compile_traced`]
//! build a [`phases::CompilationUnit`](crate::phases::CompilationUnit) and
//! run the standard [`phases::PhaseManager`](crate::phases::PhaseManager)
//! sequence over it, producing a [`CompiledMethod`].

use crate::builder::{Bailout, BuildOptions};
use crate::phases::{CompilationUnit, PhaseManager};
use pea_analysis::ProgramSummaries;
use pea_bytecode::{MethodId, Program};
use pea_core::{PeaOptions, PeaResult};
use pea_ir::cfg::Cfg;
use pea_ir::schedule::Schedule;
use pea_ir::Graph;
use pea_runtime::profile::ProfileStore;
use pea_trace::{PhaseMicros, TraceEvent, TraceSink, Tracer};
use std::sync::Arc;
use std::time::Duration;

/// Which escape analysis the pipeline runs — the three configurations the
/// paper's evaluation compares (§6: none vs. PEA; §6.2: the
/// flow-insensitive server-compiler-style baseline).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OptLevel {
    /// No escape analysis (the paper's "without" configuration — the
    /// original Graal performed none).
    None,
    /// Flow-insensitive Equi-Escape-Sets baseline.
    Ees,
    /// Partial Escape Analysis (the paper's contribution).
    Pea,
    /// PEA with a static pre-filter: a flow-insensitive escape
    /// pre-analysis (see `pea-analysis`) runs over the bytecode first and
    /// allocation sites it proves globally escaping are never handed to
    /// the flow-sensitive analysis, saving PEA work without changing the
    /// optimized artifact ([`PeaResult::prefiltered_allocs`] reports how
    /// many sites were excluded up front).
    PeaPre,
    /// [`PeaPre`](Self::PeaPre) widened interprocedurally: the call-graph
    /// escape summaries (`pea-analysis::summary`) additionally exclude
    /// sites whose fresh allocation is immediately handed to a callee that
    /// publishes its parameter on every path — a strict superset of the
    /// immediate `putstatic` pattern, still artifact-preserving.
    PeaPreIpa,
    /// [`PeaPreIpa`](Self::PeaPreIpa) widened with the branch-aware flow
    /// tier (`pea-analysis::flow`): predicate-qualified dataflow
    /// additionally excludes *certain-escape* sites — allocations that
    /// escape globally on every path from the allocation with nothing
    /// observable in between, even when the publication happens through a
    /// local variable or behind feasible-everywhere control flow. Still
    /// results- and allocation-count-preserving: PEA's only possible move
    /// on such a site is deferring the allocation to a materialization
    /// point no execution can distinguish.
    PeaPreFlow,
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OptLevel::None => "none",
            OptLevel::Ees => "ees",
            OptLevel::Pea => "pea",
            OptLevel::PeaPre => "pea-pre",
            OptLevel::PeaPreIpa => "pea-pre-ipa",
            OptLevel::PeaPreFlow => "pea-pre-flow",
        })
    }
}

/// Full compiler configuration.
#[derive(Clone, Debug)]
pub struct CompilerOptions {
    /// Escape-analysis configuration.
    pub opt_level: OptLevel,
    /// Graph-building (inlining/speculation) options.
    pub build: BuildOptions,
    /// PEA tuning and ablations.
    pub pea: PeaOptions,
    /// How many times to run the escape-analysis phase. The paper notes
    /// the analysis "can be applied, possibly multiple times, at any
    /// point during compilation" (§1); later runs pick up opportunities
    /// exposed by canonicalization of the previous one. The analysis is
    /// idempotent, so extra iterations are safe.
    pub ea_iterations: usize,
    /// Pre-computed interprocedural summaries. Summaries depend only on
    /// the program bytecode, so a VM computes them once and shares the
    /// `Arc` across every compilation (both JIT modes); when `None` and
    /// the configuration needs them (`pea-pre-ipa` or the summary inline
    /// policy), the pipeline computes them per compilation.
    pub summaries: Option<Arc<ProgramSummaries>>,
}

impl CompilerOptions {
    /// Defaults with the given escape-analysis level.
    pub fn with_opt_level(opt_level: OptLevel) -> Self {
        CompilerOptions {
            opt_level,
            build: BuildOptions::default(),
            pea: PeaOptions::default(),
            ea_iterations: 1,
            summaries: None,
        }
    }
}

impl Default for CompilerOptions {
    fn default() -> Self {
        Self::with_opt_level(OptLevel::Pea)
    }
}

/// Wall-clock time spent in each compilation phase, for the compile-speed
/// benchmark and compile-service telemetry. Purely observational: two
/// compilations of the same method differ only here, never in the
/// artifact itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Bytecode → graph construction (including inlining).
    pub build: Duration,
    /// All canonicalization passes (constant folding, GVN, phi
    /// simplification), across every run.
    pub canonicalize: Duration,
    /// The escape-analysis phase (all `ea_iterations` rounds).
    pub escape_analysis: Duration,
    /// CFG construction, dominators and scheduling.
    pub schedule: Duration,
    /// Lowering of the schedule to the linear register-machine form.
    pub lower: Duration,
}

impl PhaseTimes {
    /// Accumulates another compilation's phase times into this one.
    pub fn absorb(&mut self, other: &PhaseTimes) {
        self.build += other.build;
        self.canonicalize += other.canonicalize;
        self.escape_analysis += other.escape_analysis;
        self.schedule += other.schedule;
        self.lower += other.lower;
    }

    /// Total time across all phases.
    pub fn total(&self) -> Duration {
        self.build + self.canonicalize + self.escape_analysis + self.schedule + self.lower
    }
}

/// The compiled form of a method: the optimized graph plus the CFG and
/// schedule the evaluator executes.
#[derive(Clone, Debug)]
pub struct CompiledMethod {
    /// The compiled method.
    pub method: MethodId,
    /// Optimized graph.
    pub graph: Graph,
    /// Its control-flow graph.
    pub cfg: Cfg,
    /// Execution schedule (floating nodes placed).
    pub schedule: Schedule,
    /// Scheduled node count — the "machine code size" for the cost
    /// model's instruction-cache term.
    pub code_size: u64,
    /// What the escape-analysis phase did (for reporting), aggregated
    /// across every `ea_iterations` round.
    pub pea_result: PeaResult,
    /// Wall-clock per-phase compile times (observational; excluded from
    /// artifact-equality comparisons).
    pub times: PhaseTimes,
    /// Dense register-machine form of the schedule, when lowering
    /// succeeded. The default execution tier; `None` falls back to
    /// graph-walking evaluation.
    pub linear: Option<crate::linear::LinearArtifact>,
    /// Every inline decision the builder took (one record per considered
    /// call site), for reporting — e.g. counting cold-throw speculative
    /// inlines in the ablations benchmark.
    pub inline_decisions: Vec<crate::builder::InlineDecisionRec>,
}

// Compile requests cross thread boundaries in the background compile
// service, and finished artifacts are shared between the VM and the
// service, so both directions must be thread-safe by construction.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CompiledMethod>();
    assert_send_sync::<CompilerOptions>();
    assert_send_sync::<ProfileStore>();
};

/// Compiles `method` at the given options.
///
/// # Errors
///
/// [`Bailout`] when the method cannot be compiled; the VM keeps
/// interpreting it.
pub fn compile(
    program: &Program,
    method: MethodId,
    profiles: Option<&ProfileStore>,
    options: &CompilerOptions,
) -> Result<CompiledMethod, Bailout> {
    compile_impl(program, method, profiles, options, Tracer::off())
}

/// Like [`compile`], but emits [`TraceEvent`]s describing the compilation:
/// a [`TraceEvent::CompileStart`]/[`TraceEvent::CompileEnd`] bracket, with
/// every PEA decision in between (see [`run_pea_traced`]).
///
/// # Errors
///
/// [`Bailout`] as for [`compile`] (no `CompileEnd` is emitted then).
pub fn compile_traced(
    program: &Program,
    method: MethodId,
    profiles: Option<&ProfileStore>,
    options: &CompilerOptions,
    sink: &mut dyn TraceSink,
) -> Result<CompiledMethod, Bailout> {
    compile_impl(program, method, profiles, options, Tracer::new(sink))
}

fn compile_impl<'a>(
    program: &'a Program,
    method: MethodId,
    profiles: Option<&'a ProfileStore>,
    options: &'a CompilerOptions,
    mut tracer: Tracer<'a>,
) -> Result<CompiledMethod, Bailout> {
    tracer.emit_with(|| TraceEvent::CompileStart {
        method: program.method(method).qualified_name(program),
        level: options.opt_level.to_string(),
    });
    let mut unit = CompilationUnit::new(program, method, profiles, options);
    PhaseManager::standard(options).run(&mut unit, &mut tracer)?;
    let times = unit.times;
    let artifact = unit.artifact.expect("schedule phase ran");
    let graph = unit.graph.expect("build phase ran");
    tracer.emit_with(|| TraceEvent::CompileEnd {
        method: program.method(method).qualified_name(program),
        code_size: artifact.code_size,
        phases: PhaseMicros {
            build: times.build.as_micros() as u64,
            canonicalize: times.canonicalize.as_micros() as u64,
            escape_analysis: times.escape_analysis.as_micros() as u64,
            schedule: times.schedule.as_micros() as u64,
            lower: times.lower.as_micros() as u64,
        },
    });
    Ok(CompiledMethod {
        method,
        graph,
        cfg: artifact.cfg,
        schedule: artifact.schedule,
        code_size: artifact.code_size,
        pea_result: unit.pea_result,
        times,
        linear: artifact.linear,
        inline_decisions: unit.inline_decisions,
    })
}
