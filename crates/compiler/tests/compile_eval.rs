//! Compile-and-evaluate integration tests: the full pipeline at each
//! optimization level, executed by the evaluator, including
//! deoptimization with virtual-object rematerialization.

use pea_bytecode::asm::parse_program;
use pea_bytecode::{MethodId, Program};
use pea_compiler::{
    compile, evaluate, CompilerOptions, DeoptFrame, EvalEnv, EvalOutcome, OptLevel,
};
use pea_runtime::profile::ProfileStore;
use pea_runtime::{Heap, Statics, Value, VmError};

struct TestEnv {
    heap: Heap,
    statics: Statics,
}

impl TestEnv {
    fn new(program: &Program) -> Self {
        TestEnv {
            heap: Heap::new(),
            statics: Statics::new(&program.statics),
        }
    }
}

impl EvalEnv for TestEnv {
    fn heap(&mut self) -> &mut Heap {
        &mut self.heap
    }
    fn statics(&mut self) -> &mut Statics {
        &mut self.statics
    }
    fn charge(&mut self, cycles: u64) -> Result<(), VmError> {
        self.heap.stats.cycles += cycles;
        Ok(())
    }
    fn invoke(&mut self, _method: MethodId, _args: Vec<Value>) -> Result<Option<Value>, VmError> {
        panic!("test programs are fully inlined");
    }
}

fn run(
    src: &str,
    entry: &str,
    level: OptLevel,
    args: &[Value],
) -> (Result<EvalOutcome, VmError>, TestEnv) {
    let program = parse_program(src).unwrap();
    pea_bytecode::verify_program(&program).unwrap();
    let method = program.static_method_by_name(entry).unwrap();
    let code = compile(
        &program,
        method,
        None,
        &CompilerOptions::with_opt_level(level),
    )
    .unwrap();
    let mut env = TestEnv::new(&program);
    let out = evaluate(&program, &mut env, &code, args);
    (out, env)
}

const CACHE_SRC: &str = "
    class Key {
        field idx int
        field ref ref
    }
    static cacheKey ref
    static cacheValue ref
    method virtual Key.equals 2 returns synchronized {
        load 1 ifnull Lfalse
        load 0 getfield Key.idx
        load 1 getfield Key.idx
        ifcmp ne Lfalse
        load 0 getfield Key.ref
        load 1 getfield Key.ref
        ifrefne Lfalse
        const 1 retv
    Lfalse:
        const 0 retv
    }
    method getValue 2 returns {
        new Key store 2
        load 2 load 0 putfield Key.idx
        load 2 load 1 putfield Key.ref
        load 2 getstatic cacheKey checkcast Key invokevirtual Key.equals
        const 0 ifcmp eq Lmiss
        getstatic cacheValue retv
    Lmiss:
        load 2 putstatic cacheKey
        const 77 putstatic cacheValue
        getstatic cacheValue retv
    }";

#[test]
fn arithmetic_all_levels_agree() {
    for level in [OptLevel::None, OptLevel::Ees, OptLevel::Pea] {
        let (out, _) = run(
            "method f 2 returns { load 0 load 1 add const 3 mul retv }",
            "f",
            level,
            &[Value::Int(4), Value::Int(6)],
        );
        assert_eq!(out.unwrap(), EvalOutcome::Return(Some(Value::Int(30))));
    }
}

#[test]
fn loops_execute_correctly() {
    let src = "method f 1 returns {
        const 0 store 1
        const 0 store 2
    Lhead:
        load 2 load 0 ifcmp ge Ldone
        load 1 load 2 add store 1
        load 2 const 1 add store 2
        goto Lhead
    Ldone:
        load 1 retv
    }";
    for level in [OptLevel::None, OptLevel::Pea] {
        let (out, _) = run(src, "f", level, &[Value::Int(10)]);
        assert_eq!(out.unwrap(), EvalOutcome::Return(Some(Value::Int(45))));
    }
}

#[test]
fn cache_miss_allocates_once_under_pea() {
    // First call: cacheKey is null → equals inlined returns false → miss
    // branch stores the key. PEA must keep exactly one allocation (the
    // materialization on the miss path).
    let (out, env) = run(
        CACHE_SRC,
        "getValue",
        OptLevel::Pea,
        &[Value::Int(1), Value::Null],
    );
    assert_eq!(out.unwrap(), EvalOutcome::Return(Some(Value::Int(77))));
    assert_eq!(env.heap.stats.alloc_count, 1, "materialized on miss path");
    assert_eq!(
        env.heap.stats.monitor_ops(),
        0,
        "synchronized equals was elided on the virtual key"
    );
}

#[test]
fn cache_miss_without_pea_allocates_and_locks() {
    let (out, env) = run(
        CACHE_SRC,
        "getValue",
        OptLevel::None,
        &[Value::Int(1), Value::Null],
    );
    assert_eq!(out.unwrap(), EvalOutcome::Return(Some(Value::Int(77))));
    assert_eq!(env.heap.stats.alloc_count, 1);
    assert_eq!(env.heap.stats.monitor_ops(), 2, "enter + exit");
}

#[test]
fn pea_is_cheaper_in_cycles_on_hit_path() {
    // Pre-seed the cache so the hot path is a hit: run twice, compare
    // second-call cycles between levels.
    let program = parse_program(CACHE_SRC).unwrap();
    let method = program.static_method_by_name("getValue").unwrap();
    let mut cycles = Vec::new();
    for level in [OptLevel::None, OptLevel::Pea] {
        let code = compile(
            &program,
            method,
            None,
            &CompilerOptions::with_opt_level(level),
        )
        .unwrap();
        let mut env = TestEnv::new(&program);
        // miss (seeds cache), then hit
        evaluate(&program, &mut env, &code, &[Value::Int(1), Value::Null]).unwrap();
        let before = env.heap.stats;
        let out = evaluate(&program, &mut env, &code, &[Value::Int(1), Value::Null]).unwrap();
        assert_eq!(out, EvalOutcome::Return(Some(Value::Int(77))));
        let delta = env.heap.stats.delta(&before);
        match level {
            OptLevel::Pea => assert_eq!(delta.alloc_count, 0, "PEA hit path allocates nothing"),
            _ => assert_eq!(delta.alloc_count, 1, "unoptimized always allocates the key"),
        }
        cycles.push(delta.cycles);
    }
    assert!(
        cycles[1] < cycles[0],
        "PEA hit path must be cheaper: none={} pea={}",
        cycles[0],
        cycles[1]
    );
}

#[test]
fn guard_deopt_reconstructs_frames_with_rematerialized_object() {
    // Profile says the rare branch is never taken; compile speculatively,
    // then trigger it. The frame state references the virtual Box, which
    // must be rematerialized with its current field value.
    let src = "
        class Box { field v int }
        static g ref
        method f 1 returns {
            new Box store 1
            load 1 load 0 putfield Box.v
            load 0 const 100 ifcmp gt Lrare
            load 1 getfield Box.v const 1 add retv
        Lrare:
            load 1 putstatic g
            const -1 retv
        }";
    let program = parse_program(src).unwrap();
    let method = program.static_method_by_name("f").unwrap();
    let mut profiles = ProfileStore::new();
    // The `ifcmp gt` sits at bci 7 (new, store, load, load, putfield,
    // load, const, ifcmp).
    for _ in 0..100 {
        profiles.record_branch(method, 7, false);
    }
    let options = CompilerOptions::with_opt_level(OptLevel::Pea);
    let code = compile(&program, method, Some(&profiles), &options).unwrap();

    // Fast path: no allocation at all.
    let mut env = TestEnv::new(&program);
    let out = evaluate(&program, &mut env, &code, &[Value::Int(5)]).unwrap();
    assert_eq!(out, EvalOutcome::Return(Some(Value::Int(6))));
    assert_eq!(env.heap.stats.alloc_count, 0, "fully scalar-replaced");

    // Rare path: guard fails → deopt with a rematerialized Box.
    let mut env = TestEnv::new(&program);
    let out = evaluate(&program, &mut env, &code, &[Value::Int(500)]).unwrap();
    let EvalOutcome::Deopt { frames, .. } = out else {
        panic!("expected deopt, got {out:?}");
    };
    assert_eq!(frames.len(), 1);
    let DeoptFrame {
        method: m, locals, ..
    } = &frames[0];
    assert_eq!(*m, method);
    assert_eq!(env.heap.stats.rematerialized, 1);
    // local 1 is the rematerialized box with v = 500.
    let obj = locals[1].as_ref().expect("box reference");
    let field = program
        .field_by_name(program.class_by_name("Box").unwrap(), "v")
        .unwrap();
    assert_eq!(
        env.heap.get_field(&program, obj, field).unwrap(),
        Value::Int(500)
    );
    // local 0 is the argument.
    assert_eq!(locals[0], Value::Int(500));
}

#[test]
fn runtime_errors_match_interpreter_semantics() {
    let (out, _) = run(
        "method f 1 returns { load 0 const 0 div retv }",
        "f",
        OptLevel::Pea,
        &[Value::Int(5)],
    );
    assert_eq!(out.unwrap_err(), VmError::DivisionByZero);

    let (out, _) = run(
        "class Box { field v int }
         method f 0 returns { cnull getfield Box.v retv }",
        "f",
        OptLevel::Pea,
        &[],
    );
    assert_eq!(out.unwrap_err(), VmError::NullPointer);

    let (out, _) = run(
        "method f 0 returns { const 9 throw }",
        "f",
        OptLevel::None,
        &[],
    );
    assert_eq!(out.unwrap_err(), VmError::UserException(9));
}

#[test]
fn arrays_round_trip_compiled() {
    let src = "method f 1 returns {
        const 4 newarray int store 1
        load 1 const 2 load 0 astore
        load 1 const 2 aload
        load 1 arraylen
        add retv
    }";
    for level in [OptLevel::None, OptLevel::Pea] {
        let (out, env) = run(src, "f", level, &[Value::Int(5)]);
        assert_eq!(out.unwrap(), EvalOutcome::Return(Some(Value::Int(9))));
        if level == OptLevel::Pea {
            assert_eq!(
                env.heap.stats.alloc_count, 0,
                "constant-length array fully virtualized"
            );
        }
    }
}
