//! Builder coverage: inlining policies, speculation shapes, bailouts,
//! and frame-state structure.

use pea_bytecode::asm::parse_program;
use pea_bytecode::{Insn, MethodBuilder, ProgramBuilder};
use pea_compiler::{build_graph, Bailout, BuildOptions};
use pea_ir::verify::verify;
use pea_ir::{Graph, NodeKind};
use pea_runtime::profile::ProfileStore;

fn count(g: &Graph, pred: impl Fn(&NodeKind) -> bool) -> usize {
    g.live_nodes().filter(|&n| pred(g.kind(n))).count()
}

fn build(src: &str, entry: &str, options: &BuildOptions) -> Result<Graph, Bailout> {
    let program = parse_program(src).unwrap();
    pea_bytecode::verify_program(&program).unwrap();
    let method = program.static_method_by_name(entry).unwrap();
    build_graph(&program, method, None, options)
}

#[test]
fn inline_depth_limit_respected() {
    // a -> b -> c -> d -> e: with depth 2, c's call to d stays a call.
    let src = "
        method e 1 returns { load 0 const 1 add retv }
        method d 1 returns { load 0 invokestatic e retv }
        method c 1 returns { load 0 invokestatic d retv }
        method b 1 returns { load 0 invokestatic c retv }
        method a 1 returns { load 0 invokestatic b retv }";
    let shallow = BuildOptions {
        inline_max_depth: 2,
        ..BuildOptions::default()
    };
    let g = build(src, "a", &shallow).unwrap();
    verify(&g).unwrap();
    assert_eq!(
        count(&g, |k| matches!(k, NodeKind::Invoke { .. })),
        1,
        "exactly the depth-2 frontier call remains"
    );
    let deep = BuildOptions {
        inline_max_depth: 8,
        ..BuildOptions::default()
    };
    let g = build(src, "a", &deep).unwrap();
    assert_eq!(count(&g, |k| matches!(k, NodeKind::Invoke { .. })), 0);
    assert_eq!(count(&g, |k| matches!(k, NodeKind::Arith { .. })), 1);
}

#[test]
fn big_callee_not_inlined() {
    let mut body = String::new();
    for _ in 0..50 {
        body.push_str("const 1 add ");
    }
    let src = format!(
        "method big 1 returns {{ load 0 {body} retv }}
         method f 1 returns {{ load 0 invokestatic big retv }}"
    );
    let tight = BuildOptions {
        inline_max_callee_code: 20,
        ..BuildOptions::default()
    };
    let g = build(&src, "f", &tight).unwrap();
    assert_eq!(count(&g, |k| matches!(k, NodeKind::Invoke { .. })), 1);
}

#[test]
fn node_budget_bails_out() {
    let mut body = String::new();
    for _ in 0..200 {
        body.push_str("const 1 add ");
    }
    let src = format!("method f 1 returns {{ load 0 {body} retv }}");
    let tiny = BuildOptions {
        max_graph_nodes: 50,
        ..BuildOptions::default()
    };
    assert_eq!(build(&src, "f", &tiny).unwrap_err(), Bailout::TooLarge);
}

#[test]
fn irreducible_control_flow_bails_out() {
    // Two blocks jumping into each other's middles — impossible to
    // express with structured source, so assemble raw instructions:
    //   0: load0; 1: ifcmp -> 5 (into the middle of region B)
    //   ...region A: 2,3,4 -> jumps to 7 (middle of B region)... build a
    // classic irreducible pair: entry branches to L1 or L2; L1 jumps into
    // L2's body and vice versa.
    let mut pb = ProgramBuilder::new();
    let method = pea_bytecode::Method {
        class: None,
        name: "f".into(),
        param_count: 1,
        returns_value: true,
        is_static: true,
        is_synchronized: false,
        max_locals: 2,
        code: vec![
            // The classic irreducible pair: a cycle A ⇄ B entered at both
            // A (fall-through) and B (branch) — neither dominates the
            // other, so there is no natural loop header.
            Insn::Load(0),                           // 0
            Insn::Const(0),                          // 1
            Insn::IfCmp(pea_bytecode::CmpOp::Eq, 6), // 2: entry → B
            Insn::Const(1),                          // 3: A
            Insn::Store(1),                          // 4
            Insn::Goto(6),                           // 5: A → B
            Insn::Load(1),                           // 6: B
            Insn::Const(5),                          // 7
            Insn::IfCmp(pea_bytecode::CmpOp::Lt, 3), // 8: B → A (cycle)
            Insn::Load(1),                           // 9: exit
            Insn::ReturnValue,                       // 10
        ],
        exception_table: vec![],
    };
    pb.add_method(method);
    let program = pb.build().unwrap();
    pea_bytecode::verify_program(&program).unwrap();
    let f = program.static_method_by_name("f").unwrap();
    let err = build_graph(&program, f, None, &BuildOptions::default()).unwrap_err();
    // Depending on DFS order this surfaces as an irreducible edge.
    assert_eq!(err, Bailout::Irreducible);
}

#[test]
fn both_speculation_directions_work() {
    let src = "method f 1 returns {
        load 0 const 0 ifcmp lt Lneg
        const 1 retv
    Lneg:
        const -1 retv
    }";
    let program = parse_program(src).unwrap();
    let f = program.static_method_by_name("f").unwrap();

    // Never taken → guard, fall-through survives.
    let mut profiles = ProfileStore::new();
    for _ in 0..50 {
        profiles.record_branch(f, 2, false);
    }
    let g = build_graph(&program, f, Some(&profiles), &BuildOptions::default()).unwrap();
    verify(&g).unwrap();
    assert_eq!(count(&g, |k| matches!(k, NodeKind::Guard { .. })), 1);
    assert_eq!(count(&g, |k| matches!(k, NodeKind::Return)), 1);

    // Always taken → guard, taken side survives.
    let mut profiles = ProfileStore::new();
    for _ in 0..50 {
        profiles.record_branch(f, 2, true);
    }
    let g = build_graph(&program, f, Some(&profiles), &BuildOptions::default()).unwrap();
    verify(&g).unwrap();
    assert_eq!(count(&g, |k| matches!(k, NodeKind::Guard { .. })), 1);
    let guard = g
        .live_nodes()
        .find(|&n| matches!(g.kind(n), NodeKind::Guard { .. }))
        .unwrap();
    assert!(matches!(
        g.kind(guard),
        NodeKind::Guard { negated: false, .. }
    ));

    // Mixed profile → no speculation, both branches compiled.
    let mut profiles = ProfileStore::new();
    for i in 0..50 {
        profiles.record_branch(f, 2, i % 2 == 0);
    }
    let g = build_graph(&program, f, Some(&profiles), &BuildOptions::default()).unwrap();
    assert_eq!(count(&g, |k| matches!(k, NodeKind::Guard { .. })), 0);
    assert_eq!(count(&g, |k| matches!(k, NodeKind::If)), 1);
}

#[test]
fn monomorphic_profile_devirtualizes_with_type_guard() {
    let src = "
        class A { }
        class B extends A { }
        method virtual A.m 1 returns { const 1 retv }
        method virtual B.m 1 returns { const 2 retv }
        method f 1 returns { cnull checkcast A invokevirtual A.m retv }";
    let program = parse_program(src).unwrap();
    let f = program.static_method_by_name("f").unwrap();
    let b = program.class_by_name("B").unwrap();
    let mut profiles = ProfileStore::new();
    for _ in 0..50 {
        profiles.record_receiver(f, 2, b);
    }
    let g = build_graph(&program, f, Some(&profiles), &BuildOptions::default()).unwrap();
    verify(&g).unwrap();
    // Two implementations exist, so CHA cannot help; the receiver profile
    // must produce an exact-type guard plus the inlined B.m body.
    assert_eq!(count(&g, |k| matches!(k, NodeKind::Invoke { .. })), 0);
    assert_eq!(
        count(&g, |k| matches!(
            k,
            NodeKind::InstanceOf { exact: true, .. }
        )),
        1
    );
    assert!(count(&g, |k| matches!(k, NodeKind::Guard { .. })) >= 1);
}

#[test]
fn polymorphic_call_builds_inline_cache_or_stays_virtual() {
    let src = "
        class A { }
        class B extends A { }
        method virtual A.m 1 returns { const 1 retv }
        method virtual B.m 1 returns { const 2 retv }
        method f 1 returns { cnull checkcast A invokevirtual A.m retv }";
    let program = parse_program(src).unwrap();
    let f = program.static_method_by_name("f").unwrap();
    let a = program.class_by_name("A").unwrap();
    let b = program.class_by_name("B").unwrap();
    let mut profiles = ProfileStore::new();
    for i in 0..50 {
        profiles.record_receiver(f, 2, if i % 2 == 0 { a } else { b });
    }

    // Default options: the two-class profile becomes a polymorphic inline
    // cache — one exact type test per observed class, a direct (devirtualized)
    // call per arm, and a deopt on the fall-through.
    let g = build_graph(&program, f, Some(&profiles), &BuildOptions::default()).unwrap();
    verify(&g).unwrap();
    assert_eq!(
        count(&g, |k| matches!(
            k,
            NodeKind::Invoke {
                virtual_call: true,
                ..
            }
        )),
        0
    );
    assert_eq!(
        count(&g, |k| matches!(
            k,
            NodeKind::Invoke {
                virtual_call: false,
                ..
            }
        )),
        2
    );
    assert_eq!(
        count(&g, |k| matches!(
            k,
            NodeKind::InstanceOf { exact: true, .. }
        )),
        2
    );
    assert_eq!(count(&g, |k| matches!(k, NodeKind::Deopt { .. })), 1);

    // Speculation disabled: the call stays a single virtual dispatch.
    let options = BuildOptions {
        speculate_dispatch: false,
        ..BuildOptions::default()
    };
    let g = build_graph(&program, f, Some(&profiles), &options).unwrap();
    verify(&g).unwrap();
    assert_eq!(
        count(&g, |k| matches!(
            k,
            NodeKind::Invoke {
                virtual_call: true,
                ..
            }
        )),
        1
    );
}

#[test]
fn frame_states_chain_across_two_inline_levels() {
    let src = "
        class Box { field v int }
        static g ref
        method inner 1 returns {
            new Box store 1
            load 1 load 0 putfield Box.v
            load 1 putstatic g
            load 0 retv
        }
        method middle 1 returns { load 0 invokestatic inner retv }
        method outer 1 returns { load 0 invokestatic middle retv }";
    let g = build(src, "outer", &BuildOptions::default()).unwrap();
    verify(&g).unwrap();
    // The putstatic deep inside carries a three-deep frame state chain.
    let put = g
        .live_nodes()
        .find(|&n| matches!(g.kind(n), NodeKind::PutStatic { .. }))
        .unwrap();
    let mut fs = g.node(put).state_after.unwrap();
    let mut depth = 1;
    while let Some(outer_idx) = g.frame_state_data(fs).outer_index() {
        fs = g.node(fs).inputs()[outer_idx];
        depth += 1;
    }
    assert_eq!(depth, 3, "inner → middle → outer chain");
}

#[test]
fn synchronized_root_method_brackets_with_monitors() {
    let src = "
        class C { field v int }
        method virtual C.get 1 returns synchronized {
            load 0 getfield C.v retv
        }";
    let program = parse_program(src).unwrap();
    let c = program.class_by_name("C").unwrap();
    let get = program.declared_method_by_name(c, "get").unwrap();
    let g = build_graph(&program, get, None, &BuildOptions::default()).unwrap();
    verify(&g).unwrap();
    assert_eq!(count(&g, |k| matches!(k, NodeKind::MonitorEnter)), 1);
    assert_eq!(count(&g, |k| matches!(k, NodeKind::MonitorExit)), 1);
    // The enter's frame state records a sync-method lock.
    let me = g
        .live_nodes()
        .find(|&n| matches!(g.kind(n), NodeKind::MonitorEnter))
        .unwrap();
    let fs = g.node(me).state_after.unwrap();
    let data = g.frame_state_data(fs);
    assert_eq!(data.n_locks, 1);
    assert_eq!(data.lock_from_sync, vec![true]);
}

#[test]
fn dead_code_after_return_is_unreachable_not_fatal() {
    // The assembler can express dead blocks (label never targeted).
    let mut pb = ProgramBuilder::new();
    let mut mb = MethodBuilder::new_static("f", 1, true);
    mb.load(0);
    mb.return_value();
    // dead tail
    mb.const_(42);
    mb.return_value();
    pb.add_method(mb.build().unwrap());
    let program = pb.build().unwrap();
    let f = program.static_method_by_name("f").unwrap();
    let g = build_graph(&program, f, None, &BuildOptions::default()).unwrap();
    verify(&g).unwrap();
    assert_eq!(count(&g, |k| matches!(k, NodeKind::Return)), 1);
}

// ---- athrow lowering shapes -------------------------------------------
//
// `lower_throw` has three output shapes: a static edge straight into a
// matching handler (thrown class known exactly), an `InstanceOf` dispatch
// cascade in table order (thrown class only known at runtime), and a
// monitor-releasing `Unwind` tail for the uncaught remainder.

#[test]
fn statically_matched_throw_becomes_handler_edge() {
    // The thrown object is a direct `new E`, and the covering entry
    // catches E: the builder must wire the edge statically — no
    // InstanceOf test, no Unwind sink, one Return per path.
    let src = "
        class E { field c int }
        method f 1 returns {
            try Ls Le Lh E
        Ls:
            new E store 1
            load 1 load 0 putfield E.c
            load 1 athrow
        Le:
        Lh:
            checkcast E getfield E.c retv
        }";
    let g = build(src, "f", &BuildOptions::default()).unwrap();
    verify(&g).unwrap();
    assert_eq!(
        count(&g, |k| matches!(k, NodeKind::Unwind)),
        0,
        "a statically caught throw never reaches the Unwind sink"
    );
    assert_eq!(
        count(&g, |k| matches!(k, NodeKind::InstanceOf { .. })),
        0,
        "exact static knowledge needs no dispatch cascade"
    );
    assert_eq!(count(&g, |k| matches!(k, NodeKind::Return)), 1);
}

#[test]
fn unknown_throw_class_builds_instanceof_cascade() {
    // The rethrown parameter's class is unknown, and two typed entries
    // cover the throw: the builder must test them in table order with
    // InstanceOf and funnel the double miss into Unwind.
    let src = "
        class E1 { field a int }
        class E2 { field b int }
        method f 1 {
            try Ls Le L1 E1
            try Ls Le L2 E2
        Ls:
            load 0 athrow
        Le:
            ret
        L1:
            pop ret
        L2:
            pop ret
        }";
    let g = build(src, "f", &BuildOptions::default()).unwrap();
    verify(&g).unwrap();
    assert_eq!(
        count(&g, |k| matches!(k, NodeKind::InstanceOf { .. })),
        2,
        "one type test per covering typed entry"
    );
    assert_eq!(
        count(&g, |k| matches!(k, NodeKind::Unwind)),
        1,
        "the double miss leaves the frame"
    );
}

#[test]
fn uncaught_throw_releases_monitors_before_unwind() {
    // The frame holds a monitor when the uncovered throw fires: the
    // builder must emit the MonitorExit before the Unwind sink — exactly
    // what the interpreter does when unwinding past the frame.
    let src = "
        class E { field c int }
        class Lk { field v int }
        method f 1 {
            new Lk store 1
            load 1 monitorenter
            new E athrow
        }";
    let g = build(src, "f", &BuildOptions::default()).unwrap();
    verify(&g).unwrap();
    assert_eq!(count(&g, |k| matches!(k, NodeKind::Unwind)), 1);
    assert_eq!(
        count(&g, |k| matches!(k, NodeKind::MonitorExit)),
        1,
        "the held monitor is released on the unwind path"
    );
    // The exit must sit on the path into the sink, not after it: walk
    // control flow backwards from Unwind and require a MonitorExit.
    let unwind = g
        .live_nodes()
        .find(|&n| matches!(g.kind(n), NodeKind::Unwind))
        .unwrap();
    let mut cur = Some(unwind);
    let mut saw_exit = false;
    while let Some(n) = cur {
        if matches!(g.kind(n), NodeKind::MonitorExit) {
            saw_exit = true;
            break;
        }
        cur = g.live_nodes().find(|&p| g.next(p) == Some(n));
    }
    assert!(saw_exit, "MonitorExit must dominate the Unwind sink");
}

#[test]
fn catch_all_entry_short_circuits_the_cascade() {
    // A catch-all listed after a typed entry: the typed entry gets its
    // InstanceOf test, the catch-all consumes everything else, and no
    // Unwind remains.
    let src = "
        class E1 { field a int }
        method f 1 {
            try Ls Le L1 E1
            try Ls Le L2 *
        Ls:
            load 0 athrow
        Le:
            ret
        L1:
            pop ret
        L2:
            pop ret
        }";
    let g = build(src, "f", &BuildOptions::default()).unwrap();
    verify(&g).unwrap();
    assert_eq!(count(&g, |k| matches!(k, NodeKind::InstanceOf { .. })), 1);
    assert_eq!(
        count(&g, |k| matches!(k, NodeKind::Unwind)),
        0,
        "a covering catch-all leaves no uncaught remainder"
    );
}
