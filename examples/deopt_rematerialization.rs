//! Deoptimization with virtual-object rematerialization (paper §5.5).
//!
//! The branch publishing the `Box` is never taken during warmup, so the
//! JIT speculates it away: the compiled code contains **no allocation at
//! all** — the box exists only as a virtual object in the frame state.
//! When the cold branch finally executes, the guard fails, the VM
//! rematerializes the box from its `VirtualObjectMapping` (allocating it
//! and filling `v` with the tracked value) and resumes the interpreter,
//! which completes the branch as if nothing had happened.
//!
//! ```sh
//! cargo run --example deopt_rematerialization
//! ```

use pea::bytecode::asm::parse_program;
use pea::runtime::Value;
use pea::vm::{Vm, VmOptions};

const SOURCE: &str = "
    class Box { field v int }
    static published ref

    method f 1 returns {
        new Box store 1
        load 1 load 0 putfield Box.v
        load 0 const 1000 ifcmp gt Lrare
        load 1 getfield Box.v const 1 add retv
    Lrare:
        load 1 putstatic published
        load 1 getfield Box.v const 1000000 add retv
    }
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(SOURCE)?;
    let mut vm = Vm::new(program, VmOptions::default());

    println!("warming up with small arguments (rare branch never taken)...");
    for i in 0..100 {
        vm.call_entry("f", &[Value::Int(i)])?;
    }
    println!("compiled methods: {}", vm.compiled_method_count());

    let before = vm.stats();
    let r = vm.call_entry("f", &[Value::Int(7)])?;
    let hot = vm.stats().delta(&before);
    println!("\nhot call   f(7)    = {r:?}");
    println!("  allocations={} deopts={}", hot.alloc_count, hot.deopts);
    assert_eq!(hot.alloc_count, 0, "fully scalar-replaced");

    let before = vm.stats();
    let r = vm.call_entry("f", &[Value::Int(5000)])?;
    let cold = vm.stats().delta(&before);
    println!("\ncold call  f(5000) = {r:?}");
    println!(
        "  allocations={} deopts={} rematerialized={}",
        cold.alloc_count, cold.deopts, cold.rematerialized
    );
    assert_eq!(cold.deopts, 1, "guard failed once");
    assert!(
        cold.rematerialized >= 1,
        "box was rebuilt from the frame state"
    );

    // The interpreter finished the branch: the box is published with the
    // right field value.
    let program = vm.program();
    let published = program.static_by_name("published").expect("static");
    let obj = match vm.statics_ref().get(published) {
        Value::Ref(r) => r,
        other => panic!("expected published object, got {other}"),
    };
    let class = vm.heap().class_of(obj)?;
    let field = program.field_by_name(class, "v").expect("field v");
    let v = vm.heap().get_field(program, obj, field)?;
    println!("  published.v        = {v}  (the tracked virtual state)");
    assert_eq!(v, Value::Int(5000));
    println!("\nScalar replacement survived speculation: zero allocation on the");
    println!("hot path, and the object is conjured back exactly when needed.");
    Ok(())
}
