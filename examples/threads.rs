//! Multi-threaded mutators: N application threads on one VM, each with
//! its own heap, statics, profiles and pinned compiled code, sharing the
//! program, the published-code store and the metrics hub.
//!
//! The main mutator warms up first, so every forked thread starts at its
//! tier — compiled code, no re-profiling. Each thread then runs the same
//! deterministic call sequence and must produce exactly the same results
//! and statistics as a solo VM would; the shared store's lock-free read
//! counters show the dispatch hot path never blocks.
//!
//! ```sh
//! cargo run --example threads
//! ```

use pea::bytecode::asm::parse_program;
use pea::runtime::Value;
use pea::vm::{OptLevel, Vm, VmOptions};

const SOURCE: &str = "
    class Pair { field a int field b int }

    # combine goes through a temporary Pair that PEA scalar-replaces.
    method combine 2 returns {
        new Pair store 2
        load 2 load 0 putfield Pair.a
        load 2 load 1 putfield Pair.b
        load 2 getfield Pair.a load 2 getfield Pair.b mul
        load 2 getfield Pair.a add retv
    }

    method iterate 1 returns {
        load 0 load 0 const 3 add invokestatic combine retv
    }
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(SOURCE)?;
    let mut vm = Vm::new(program, VmOptions::with_opt_level(OptLevel::Pea));

    // Warm the main mutator past the compile threshold.
    for i in 0..80 {
        vm.call_entry("iterate", &[Value::Int(i)])?;
    }
    println!(
        "main mutator warmed: {} method(s) compiled",
        vm.compiled_method_count()
    );

    // Fork the warmed tiering state onto 4 threads. Each runs the same
    // call sequence on its own heap; results must agree across threads.
    let runs = vm.run_threads_warm(4, |t, m| {
        let mut last = None;
        for i in 0..10_000 {
            last = m.call_entry("iterate", &[Value::Int(i)]).expect("call");
        }
        (t, last, m.stats())
    });
    for (t, last, stats) in &runs {
        println!(
            "thread {t}: last={last:?} cycles={} allocs={} compiles={}",
            stats.cycles, stats.alloc_count, stats.compiles
        );
        assert_eq!(*last, runs[0].1, "threads must agree");
        assert_eq!(stats.compiles, 0, "warm forks never recompile");
    }

    let cache = vm.code_cache_stats();
    println!(
        "store reads: fast={} refresh={} stale={} blocked={}",
        cache.read_fast, cache.read_refresh, cache.read_stale, cache.read_blocked
    );
    assert_eq!(cache.read_blocked, 0, "lookups never block");
    Ok(())
}
