class Key {
    field idx int
    field ref ref
}
static cacheKey ref
static cacheValue int

method virtual Key.equals 2 returns synchronized {
    load 1 ifnull Lfalse
    load 0 getfield Key.idx
    load 1 checkcast Key getfield Key.idx
    ifcmp ne Lfalse
    load 0 getfield Key.ref
    load 1 checkcast Key getfield Key.ref
    ifrefne Lfalse
    const 1 retv
Lfalse:
    const 0 retv
}

method getValue 2 returns {
    new Key store 2
    load 2 load 0 putfield Key.idx
    load 2 load 1 putfield Key.ref
    load 2 getstatic cacheKey invokevirtual Key.equals
    const 0 ifcmp eq Lmiss
    getstatic cacheValue retv
Lmiss:
    load 2 putstatic cacheKey
    load 0 const 13 mul putstatic cacheValue
    getstatic cacheValue retv
}
