//! The paper's running example (Listings 1–6): a cache keyed by a
//! freshly allocated `Key` object that escapes only on the miss path.
//!
//! This example shows every stage the paper walks through:
//!
//! 1. the source-level program (Listing 1/4, as assembler),
//! 2. the IR after inlining the constructor and the synchronized
//!    `equals` (Listing 5 / Figure 2),
//! 3. the IR after Partial Escape Analysis (Listing 6): allocation and
//!    monitors gone from the hit path, one materialization on the miss
//!    path,
//! 4. runtime behaviour: hits allocate nothing, misses allocate exactly
//!    one object.
//!
//! ```sh
//! cargo run --example cache_key
//! ```

use pea::bytecode::asm::parse_program;
use pea::compiler::{compile, CompilerOptions, OptLevel};
use pea::ir::dump::dump;
use pea::ir::NodeKind;
use pea::runtime::Value;
use pea::vm::{Vm, VmOptions};

const SOURCE: &str = "
    class Key {
        field idx int
        field ref ref
    }
    static cacheKey ref
    static cacheValue int

    method virtual Key.equals 2 returns synchronized {
        load 1 ifnull Lfalse
        load 0 getfield Key.idx
        load 1 checkcast Key getfield Key.idx
        ifcmp ne Lfalse
        load 0 getfield Key.ref
        load 1 checkcast Key getfield Key.ref
        ifrefne Lfalse
        const 1 retv
    Lfalse:
        const 0 retv
    }

    method getValue 2 returns {
        new Key store 2
        load 2 load 0 putfield Key.idx
        load 2 load 1 putfield Key.ref
        load 2 getstatic cacheKey invokevirtual Key.equals
        const 0 ifcmp eq Lmiss
        getstatic cacheValue retv
    Lmiss:
        load 2 putstatic cacheKey
        load 0 const 13 mul putstatic cacheValue
        getstatic cacheValue retv
    }
";

fn count(g: &pea::ir::Graph, pred: impl Fn(&NodeKind) -> bool) -> usize {
    g.live_nodes().filter(|&n| pred(g.kind(n))).count()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(SOURCE)?;
    let get_value = program.static_method_by_name("getValue").expect("getValue");

    // --- Stage 1: after inlining, before PEA (Listing 5 / Figure 2) ---
    let no_ea = compile(
        &program,
        get_value,
        None,
        &CompilerOptions::with_opt_level(OptLevel::None),
    )?;
    println!("=== after inlining (Listing 5 / Figure 2) ===");
    println!(
        "allocations={} monitors={} field-loads={}",
        count(&no_ea.graph, |k| matches!(k, NodeKind::New { .. })),
        count(&no_ea.graph, |k| matches!(
            k,
            NodeKind::MonitorEnter | NodeKind::MonitorExit
        )),
        count(&no_ea.graph, |k| matches!(k, NodeKind::LoadField { .. })),
    );
    println!("{}", dump(&no_ea.graph));

    // --- Stage 2: after Partial Escape Analysis (Listing 6) ---
    let pea = compile(
        &program,
        get_value,
        None,
        &CompilerOptions::with_opt_level(OptLevel::Pea),
    )?;
    println!("=== after Partial Escape Analysis (Listing 6) ===");
    println!("phase report: {:?}", pea.pea_result);
    println!(
        "allocations={} commits={} monitors={} field-loads={}",
        count(&pea.graph, |k| matches!(k, NodeKind::New { .. })),
        count(&pea.graph, |k| matches!(k, NodeKind::Commit { .. })),
        count(&pea.graph, |k| matches!(
            k,
            NodeKind::MonitorEnter | NodeKind::MonitorExit
        )),
        count(&pea.graph, |k| matches!(k, NodeKind::LoadField { .. })),
    );
    println!("{}", dump(&pea.graph));

    // --- Stage 3: runtime behaviour ---
    let mut vm = Vm::new(program, VmOptions::default());
    for i in 0..100 {
        vm.call_entry("getValue", &[Value::Int(i / 25), Value::Null])?;
    }
    // Hit: same key as the previous call.
    let before = vm.stats();
    vm.call_entry("getValue", &[Value::Int(3), Value::Null])?;
    vm.call_entry("getValue", &[Value::Int(3), Value::Null])?;
    let hit = vm.stats().delta(&before);
    // Miss: key changes.
    let before = vm.stats();
    vm.call_entry("getValue", &[Value::Int(999), Value::Null])?;
    let miss = vm.stats().delta(&before);
    println!("=== runtime (compiled with PEA) ===");
    println!(
        "hit path:  allocations={} monitor-ops={}",
        hit.alloc_count,
        hit.monitor_ops()
    );
    println!(
        "miss path: allocations={} monitor-ops={}",
        miss.alloc_count,
        miss.monitor_ops()
    );
    println!("\nThe allocation was moved into the miss branch (paper §4).");
    Ok(())
}
