//! Regenerates the mechanism figures of the paper (Figures 2–8) as IR and
//! state dumps.
//!
//! ```sh
//! cargo run --example figures           # all figures
//! cargo run --example figures -- fig7   # a single figure
//! ```

use pea::core::fixtures::{fig7_loop_graph, key_program, listing5_graph, listing8_graph};
use pea::core::{run_pea, AllocId, AllocInfo, ObjectState, PeaOptions, PeaState};
use pea::ir::dump::{dump, frame_state_brief};
use pea::ir::{AllocShape, NodeId, NodeKind};

fn fig2() {
    println!("==== Figure 2: Graal IR of Listing 5 (getValue after inlining) ====");
    let (_, p) = key_program();
    let (g, _) = listing5_graph(&p);
    println!("{}", dump(&g));
}

fn fig3() {
    println!("==== Figure 3: visualization of the allocation state ====");
    let (_, p) = key_program();
    let infos = vec![
        AllocInfo {
            shape: AllocShape::Instance { class: p.key_class },
            origin: NodeId(5),
            field_count: 2,
        },
        AllocInfo {
            shape: AllocShape::Instance { class: p.key_class },
            origin: NodeId(9),
            field_count: 1,
        },
    ];
    let mut state = PeaState::new();
    // Key (1): virtual, lock count 0, default fields (as after Fig. 4a).
    state.add_virtual(AllocId(0), NodeId(5), vec![NodeId(1), NodeId(2)]);
    // Integer (2): escaped with a materialized value (right side of Fig. 3).
    state.add_virtual(AllocId(1), NodeId(9), vec![NodeId(3)]);
    *state.object_mut(AllocId(1)) = ObjectState::Escaped {
        materialized: NodeId(12),
    };
    print!("{}", state.render(&infos));
    println!();
}

fn fig4_and_5() {
    println!("==== Figures 4/5: per-node effects on virtual objects ====");
    println!("(each pattern shown as IR before/after the analysis)\n");
    let (program, p) = key_program();

    // 4a/4b: allocation + stores + loads, fully virtual.
    let mut g = pea::ir::Graph::new();
    let x = g.add(NodeKind::Param { index: 0 }, vec![]);
    let new = g.add(NodeKind::New { class: p.key_class }, vec![]);
    g.set_next(g.start, new);
    let store = g.add(NodeKind::StoreField { field: p.f_idx }, vec![new, x]);
    g.set_next(new, store);
    let fs = g.add_frame_state(
        pea::ir::FrameStateData::new(p.m_get_value, 1, 1, 0, 0, false),
        vec![x],
    );
    g.set_state_after(store, Some(fs));
    let load = g.add(NodeKind::LoadField { field: p.f_idx }, vec![new]);
    g.set_next(store, load);
    let ret = g.add(NodeKind::Return, vec![load]);
    g.set_next(load, ret);
    println!("-- Fig. 4a/4b: new + store + load --");
    println!("before:\n{}", dump(&g));
    run_pea(&mut g, &program, &PeaOptions::default());
    println!("after (everything folded away):\n{}", dump(&g));

    // 4c/4d: monitor enter/exit on a virtual object.
    let mut g = pea::ir::Graph::new();
    let new = g.add(NodeKind::New { class: p.key_class }, vec![]);
    g.set_next(g.start, new);
    let me = g.add(NodeKind::MonitorEnter, vec![new]);
    g.set_next(new, me);
    let x2 = g.add(NodeKind::Param { index: 0 }, vec![]);
    let fs = g.add_frame_state(
        {
            let mut d = pea::ir::FrameStateData::new(p.m_get_value, 1, 1, 0, 1, false);
            d.lock_from_sync = vec![false];
            d
        },
        vec![x2, new],
    );
    g.set_state_after(me, Some(fs));
    let mx = g.add(NodeKind::MonitorExit, vec![new]);
    g.set_next(me, mx);
    let fs2 = g.add_frame_state(
        pea::ir::FrameStateData::new(p.m_get_value, 2, 1, 0, 0, false),
        vec![x2],
    );
    g.set_state_after(mx, Some(fs2));
    let ret = g.add(NodeKind::Return, vec![]);
    g.set_next(mx, ret);
    println!("-- Fig. 4c/4d: monitor enter/exit (lock count tracked virtually) --");
    println!("before:\n{}", dump(&g));
    run_pea(&mut g, &program, &PeaOptions::default());
    println!("after (lock elision):\n{}", dump(&g));

    // Fig. 5: store into an escaped object.
    let (_, p) = key_program();
    let mut g = pea::ir::Graph::new();
    let key = g.add(NodeKind::New { class: p.key_class }, vec![]);
    g.set_next(g.start, key);
    let intbox = g.add(NodeKind::New { class: p.key_class }, vec![]);
    g.set_next(key, intbox);
    // key escapes...
    let put = g.add(NodeKind::PutStatic { id: p.s_cache_key }, vec![key]);
    g.set_next(intbox, put);
    let x3 = g.add(NodeKind::Param { index: 0 }, vec![]);
    let fs = g.add_frame_state(
        pea::ir::FrameStateData::new(p.m_get_value, 1, 1, 0, 0, false),
        vec![x3],
    );
    g.set_state_after(put, Some(fs));
    // ...then the (still virtual) box is stored into the escaped key:
    // the box escapes too (Fig. 5's Integer turns `e`).
    let store = g.add(NodeKind::StoreField { field: p.f_ref }, vec![key, intbox]);
    g.set_next(put, store);
    let fs2 = g.add_frame_state(
        pea::ir::FrameStateData::new(p.m_get_value, 2, 1, 0, 0, false),
        vec![x3],
    );
    g.set_state_after(store, Some(fs2));
    let ret = g.add(NodeKind::Return, vec![]);
    g.set_next(store, ret);
    println!("-- Fig. 5: store into an escaped object --");
    println!("before:\n{}", dump(&g));
    let r = run_pea(&mut g, &program, &PeaOptions::default());
    println!(
        "after ({} materializations — both objects exist):\n{}",
        r.materializations,
        dump(&g)
    );
}

fn fig6() {
    println!("==== Figure 6: merge processing ====");
    let (program, p) = key_program();
    // An object whose field differs across the two branches: merged via a
    // field phi (Fig. 6 all-virtual case); the same graph under the
    // no-field-phi ablation materializes at both predecessors (Fig. 6b).
    for (label, options) in [
        (
            "field phis enabled (object stays virtual)",
            PeaOptions::default(),
        ),
        (
            "ablation: field phis disabled (materialized at both ends)",
            PeaOptions {
                field_phis: false,
                ..PeaOptions::default()
            },
        ),
    ] {
        let mut g = pea::ir::Graph::new();
        let cond = g.add(NodeKind::Param { index: 0 }, vec![]);
        let obj = g.add(NodeKind::New { class: p.key_class }, vec![]);
        g.set_next(g.start, obj);
        let iff = g.add(NodeKind::If, vec![cond]);
        g.set_next(obj, iff);
        let t = g.add(NodeKind::Begin, vec![]);
        let f = g.add(NodeKind::Begin, vec![]);
        g.set_if_targets(iff, t, f);
        let c1 = g.const_int(1);
        let s1 = g.add(NodeKind::StoreField { field: p.f_idx }, vec![obj, c1]);
        g.set_next(t, s1);
        let fs1 = g.add_frame_state(
            pea::ir::FrameStateData::new(p.m_get_value, 1, 1, 0, 0, false),
            vec![cond],
        );
        g.set_state_after(s1, Some(fs1));
        let te = g.add(NodeKind::End, vec![]);
        g.set_next(s1, te);
        let c2 = g.const_int(2);
        let s2 = g.add(NodeKind::StoreField { field: p.f_idx }, vec![obj, c2]);
        g.set_next(f, s2);
        let fs2 = g.add_frame_state(
            pea::ir::FrameStateData::new(p.m_get_value, 2, 1, 0, 0, false),
            vec![cond],
        );
        g.set_state_after(s2, Some(fs2));
        let fe = g.add(NodeKind::End, vec![]);
        g.set_next(s2, fe);
        let merge = g.add(NodeKind::Merge { ends: vec![te, fe] }, vec![]);
        let load = g.add(NodeKind::LoadField { field: p.f_idx }, vec![obj]);
        g.set_next(merge, load);
        let ret = g.add(NodeKind::Return, vec![load]);
        g.set_next(load, ret);
        println!("-- {label} --");
        let r = run_pea(&mut g, &program, &options);
        println!(
            "materializations={} | after:\n{}",
            r.materializations,
            dump(&g)
        );
    }
}

fn fig7() {
    println!("==== Figure 7: loop processing to a fixpoint ====");
    let (program, p) = key_program();
    let (mut g, _) = fig7_loop_graph(&p);
    println!("before:\n{}", dump(&g));
    let r = run_pea(&mut g, &program, &PeaOptions::default());
    println!(
        "loop rounds until the speculative state stabilized: {}",
        r.loop_rounds
    );
    println!(
        "after (object virtual through two back edges; field is a loop phi):\n{}",
        dump(&g)
    );
}

fn fig8() {
    println!("==== Figure 8: frame states before/after PEA (Listing 8) ====");
    let (program, p) = key_program();
    let (mut g, _, put) = listing8_graph(&p);
    let fs = g.node(put).state_after.expect("state");
    println!("before: putstatic state = @{}", frame_state_brief(&g, fs));
    println!("{}", dump(&g));
    run_pea(&mut g, &program, &PeaOptions::default());
    let fs = g.node(put).state_after.expect("state");
    println!("after:  putstatic state = @{}", frame_state_brief(&g, fs));
    println!("(the local now references a VirtualObjectMapping)");
    println!("{}", dump(&g));
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match which.as_str() {
        "fig2" => fig2(),
        "fig3" => fig3(),
        "fig4" | "fig5" => fig4_and_5(),
        "fig6" => fig6(),
        "fig7" => fig7(),
        "fig8" => fig8(),
        "all" => {
            fig2();
            fig3();
            fig4_and_5();
            fig6();
            fig7();
            fig8();
        }
        other => {
            eprintln!("unknown figure `{other}` (fig2..fig8 or all)");
            std::process::exit(2);
        }
    }
}
