//! Lock Elision (paper §3/§4): synchronization on objects that never
//! escape is removed entirely — the virtual object tracks a lock *count*
//! instead of touching a monitor.
//!
//! The kernel mimics the paper's motivation: a synchronized `equals` on a
//! freshly allocated key (Listing 2). Every call without PEA performs a
//! monitor enter/exit pair; with PEA the object is virtual, so the pair
//! is elided together with the allocation.
//!
//! ```sh
//! cargo run --example lock_elision
//! ```

use pea::bytecode::asm::parse_program;
use pea::runtime::Value;
use pea::vm::{OptLevel, Vm, VmOptions};

const SOURCE: &str = "
    class Counter { field v int }

    method virtual Counter.add 2 returns synchronized {
        load 0 load 0 getfield Counter.v load 1 add putfield Counter.v
        load 0 getfield Counter.v retv
    }

    # Sums 0..n through a synchronized accumulator object that never
    # leaves the method.
    method tally 1 returns {
        new Counter store 1
        const 0 store 2
    Lh: load 2 load 0 ifcmp ge Ld
        load 1 load 2 invokevirtual Counter.add pop
        load 2 const 1 add store 2
        goto Lh
    Ld: load 1 getfield Counter.v retv
    }
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("tally(100) sums through a synchronized accumulator;");
    println!("each of the 100 `add` calls locks and unlocks the counter.\n");
    for (label, options) in [
        ("interpreter", VmOptions::interpreter_only()),
        (
            "JIT, no escape analysis",
            VmOptions::with_opt_level(OptLevel::None),
        ),
        ("JIT, PEA lock-elision off", {
            let mut o = VmOptions::with_opt_level(OptLevel::Pea);
            o.compiler.pea.lock_elision = false;
            o
        }),
        ("JIT, full PEA", VmOptions::with_opt_level(OptLevel::Pea)),
    ] {
        let program = parse_program(SOURCE)?;
        let mut vm = Vm::new(program, options);
        for _ in 0..100 {
            vm.call_entry("tally", &[Value::Int(100)])?;
        }
        let before = vm.stats();
        let r = vm.call_entry("tally", &[Value::Int(100)])?;
        let d = vm.stats().delta(&before);
        println!(
            "{label:<26} result={:?}  monitor-ops/call={:<4} allocations/call={}",
            r.unwrap(),
            d.monitor_ops(),
            d.alloc_count
        );
        assert_eq!(r, Some(Value::Int(4950)));
    }
    println!("\nOnly full PEA removes both the monitor traffic and the allocation;");
    println!("the lock-elision-off ablation must materialize the counter to lock it.");
    Ok(())
}
