//! Quickstart: assemble a program, run it on the tiered VM, and watch
//! Partial Escape Analysis remove allocations and monitor operations.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pea::bytecode::asm::parse_program;
use pea::runtime::Value;
use pea::vm::{OptLevel, Vm, VmOptions};

const SOURCE: &str = "
    class Point { field x int field y int }

    # dist2 returns the squared distance of (a,b) from the origin,
    # going through a temporary Point object.
    method dist2 2 returns {
        new Point store 2
        load 2 load 0 putfield Point.x
        load 2 load 1 putfield Point.y
        load 2 getfield Point.x load 2 getfield Point.x mul
        load 2 getfield Point.y load 2 getfield Point.y mul
        add retv
    }

    method sum 1 returns {
        const 0 store 1
        const 0 store 2
    Lh: load 2 load 0 ifcmp ge Ld
        load 2 load 2 const 1 add invokestatic dist2
        load 1 add store 1
        load 2 const 1 add store 2
        goto Lh
    Ld: load 1 retv
    }
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for level in [OptLevel::None, OptLevel::Pea] {
        let program = parse_program(SOURCE)?;
        let mut vm = Vm::new(program, VmOptions::with_opt_level(level));

        // Warm up: the interpreter profiles, then the JIT compiles.
        for _ in 0..100 {
            vm.call_entry("sum", &[Value::Int(50)])?;
        }

        // Steady state: measure one call.
        let before = vm.stats();
        let result = vm.call_entry("sum", &[Value::Int(50)])?;
        let delta = vm.stats().delta(&before);

        println!("escape analysis = {level}");
        println!("  sum(50)          = {:?}", result);
        println!("  allocations/call = {}", delta.alloc_count);
        println!("  bytes/call       = {}", delta.alloc_bytes);
        println!("  virtual cycles   = {}", delta.cycles);
        println!();
    }
    println!("With PEA the 50 temporary Points per call are scalar-replaced.");
    Ok(())
}
