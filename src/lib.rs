//! # pea — Partial Escape Analysis and Scalar Replacement
//!
//! A from-scratch Rust reproduction of *"Partial Escape Analysis and Scalar
//! Replacement for Java"* (Stadler, Würthinger, Mössenböck — CGO 2014),
//! including the whole substrate the algorithm needs: a toy JVM-like
//! bytecode and interpreter, a Graal-style SSA IR with frame states, a
//! speculative JIT compiler with deoptimization, the Partial Escape
//! Analysis itself, a flow-insensitive baseline, a tiered VM, and synthetic
//! benchmark suites standing in for DaCapo/ScalaDaCapo/SPECjbb2005.
//!
//! This facade crate re-exports every subsystem under one roof:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`bytecode`] | `pea-bytecode` | classes, methods, instructions, assembler |
//! | [`runtime`] | `pea-runtime` | heap, values, monitors, statistics, profiles |
//! | [`interp`] | `pea-interp` | profiling interpreter, deopt re-entry |
//! | [`ir`] | `pea-ir` | SSA graph, CFG, dominators, scheduler, verifier |
//! | [`compiler`] | `pea-compiler` | graph builder, inlining, canonicalizer, evaluator |
//! | [`core`] | `pea-core` | **Partial Escape Analysis** + EES baseline |
//! | [`vm`] | `pea-vm` | tiered execution: interpret → profile → JIT → deopt |
//! | [`workloads`] | `pea-workloads` | synthetic benchmark kernels |
//! | [`trace`] | `pea-trace` | decision-trace events, sinks, per-site aggregation |
//! | [`analysis`] | `pea-analysis` | static dataflow analyses + PEA decision sanitizer |
//!
//! # Quickstart
//!
//! ```
//! use pea::vm::{Vm, VmOptions, OptLevel};
//! use pea::bytecode::asm::parse_program;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program(
//!     "method f 1 returns { load 0 const 1 add retv }",
//! )?;
//! let mut vm = Vm::new(program, VmOptions::with_opt_level(OptLevel::Pea));
//! let result = vm.call_entry("f", &[pea::runtime::Value::Int(41)])?;
//! assert_eq!(result, Some(pea::runtime::Value::Int(42)));
//! # Ok(())
//! # }
//! ```

pub use pea_analysis as analysis;
pub use pea_bytecode as bytecode;
pub use pea_compiler as compiler;
pub use pea_core as core;
pub use pea_interp as interp;
pub use pea_ir as ir;
pub use pea_metrics as metrics;
pub use pea_runtime as runtime;
pub use pea_trace as trace;
pub use pea_vm as vm;
pub use pea_workloads as workloads;
