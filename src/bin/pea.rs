//! `pea` — command-line driver for the PEA virtual machine and compiler.
//!
//! ```text
//! pea run <file.asm> <entry> [args...] [--level none|ees|pea|pea-pre|pea-pre-ipa|pea-pre-flow]
//!         [--inline-policy size|summary]
//!         [--interp] [--jit-mode sync|background] [--exec-mode linear|graph] [--checked]
//!         [--trace|--trace-json [PATH]]                # + VM/PEA event log
//!         [--metrics] [--metrics-json PATH] [--metrics-prom PATH]
//!         [--flight PATH]                              # flight-recorder dump on failure
//!         [--profile-in PATH] [--profile-out PATH]     # profile reuse
//! pea serve <file.asm> <entry> [args...] [--threads N] [--iters K] [--warmup N]
//!           [--level L] [--jit-mode M] [--exec-mode M] [--checked]
//!                                                      # N mutator threads on one VM
//! pea profile <file.asm> <entry> [args...] [--level L] [--jit-mode M] [--exec-mode M]
//!             [--warmup N] [--top N] [--out DIR]       # cycle-attribution profiler
//! pea profile --smoke [--out DIR]                      # profile the benchmark corpus
//! pea trace <file.asm> [method] [--level ...] [--json] # decision trace only
//! pea dump <file.asm> <method> [--level ...]           # IR before/after
//! pea dot <file.asm> <method> [--level ...]            # GraphViz output
//! pea disasm <file.asm>                                # parse + re-print
//! ```
//!
//! `pea --trace <file.asm> [method]` and `pea --trace-json <file.asm>
//! [method]` are shorthands for the `trace` subcommand.
//!
//! Examples:
//!
//! ```sh
//! echo 'method main 1 returns { load 0 const 2 mul retv }' > /tmp/double.asm
//! pea run /tmp/double.asm main 21
//! pea dump /tmp/double.asm main
//! pea --trace examples/cache_key.asm
//! ```

use pea::bytecode::asm::parse_program;
use pea::compiler::{compile, compile_traced, CompilerOptions, InlinePolicy, OptLevel};
use pea::metrics::export::{
    create_file_with_dirs, render_json, render_prometheus, render_text, write_with_dirs,
};
use pea::metrics::profile::{ProfilerHub, Reconciliation};
use pea::metrics::MetricsHub;
use pea::runtime::profile::ProfileStore;
use pea::runtime::Value;
use pea::trace::timeline::{render_chrome_trace, validate_json};
use pea::trace::{FlightEntry, JsonLinesSink, PrettySink, SharedSink, TraceSink};
use pea::vm::{JitMode, Vm, VmOptions};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn parse_level(args: &[String]) -> OptLevel {
    match args
        .iter()
        .position(|a| a == "--level")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        Some("none") => OptLevel::None,
        Some("ees") => OptLevel::Ees,
        Some("pea") | None => OptLevel::Pea,
        Some("pea-pre") => OptLevel::PeaPre,
        Some("pea-pre-ipa") => OptLevel::PeaPreIpa,
        Some("pea-pre-flow") => OptLevel::PeaPreFlow,
        Some(other) => {
            eprintln!("unknown level `{other}` (none|ees|pea|pea-pre|pea-pre-ipa|pea-pre-flow)");
            std::process::exit(2);
        }
    }
}

/// The `--inline-policy size|summary` flag (default: size).
fn parse_inline_policy(args: &[String]) -> InlinePolicy {
    match args
        .iter()
        .position(|a| a == "--inline-policy")
        .and_then(|i| args.get(i + 1))
    {
        Some(word) => word.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        }),
        None => InlinePolicy::Size,
    }
}

fn load(path: &str) -> pea::bytecode::Program {
    let source = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let program = parse_program(&source).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2);
    });
    if let Err(e) = pea::bytecode::verify_program(&program) {
        eprintln!("{path}: verification failed: {e}");
        std::process::exit(2);
    }
    program
}

/// The value following `flag`, if it is present and not another flag.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .filter(|v| !v.starts_with("--"))
}

/// Build a [`SharedSink`] per the `--trace` / `--trace-json [PATH]` flags,
/// or `None` when neither is present. `--trace-json` with a path writes
/// JSON lines to that file (creating parent directories); without one it
/// streams to stdout, as `--trace` always does (pretty-printed).
fn trace_sink(args: &[String]) -> Option<SharedSink> {
    if args.iter().any(|a| a == "--trace-json") {
        if let Some(path) = flag_value(args, "--trace-json") {
            let file = create_file_with_dirs(Path::new(path)).unwrap_or_else(|e| {
                eprintln!("cannot create {path}: {e}");
                std::process::exit(2);
            });
            Some(SharedSink::new(JsonLinesSink::new(file)).0)
        } else {
            Some(SharedSink::new(JsonLinesSink::new(std::io::stdout())).0)
        }
    } else if args.iter().any(|a| a == "--trace") {
        Some(SharedSink::new(PrettySink::new(std::io::stdout())).0)
    } else {
        None
    }
}

/// Writes an output artifact to `path`, creating parent directories.
fn write_output(path: &str, contents: &str) {
    if let Err(e) = write_with_dirs(Path::new(path), contents) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let [path, entry, rest @ ..] = args else {
        eprintln!("usage: pea run <file.asm> <entry> [int args...] [--level L] [--inline-policy size|summary] [--interp] [--warmup N] [--jit-mode sync|background] [--exec-mode linear|graph] [--checked] [--trace|--trace-json [PATH]] [--metrics] [--metrics-json PATH] [--metrics-prom PATH] [--profile-in PATH] [--profile-out PATH]");
        return ExitCode::from(2);
    };
    let program = load(path);
    let interp_only = rest.iter().any(|a| a == "--interp");
    let warmup: u64 = rest
        .iter()
        .position(|a| a == "--warmup")
        .and_then(|i| rest.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let call_args: Vec<Value> = rest
        .iter()
        .take_while(|a| !a.starts_with("--"))
        .map(|a| {
            if a == "null" {
                Value::Null
            } else {
                Value::Int(a.parse().unwrap_or_else(|_| {
                    eprintln!("bad argument `{a}` (int or `null`)");
                    std::process::exit(2);
                }))
            }
        })
        .collect();
    let mut options = if interp_only {
        VmOptions::interpreter_only()
    } else {
        VmOptions::with_opt_level(parse_level(rest))
    };
    options.compiler.build.inline_policy = parse_inline_policy(rest);
    if let Some(mode) = rest
        .iter()
        .position(|a| a == "--jit-mode")
        .and_then(|i| rest.get(i + 1))
    {
        options.jit_mode = mode.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
    }
    if let Some(mode) = rest
        .iter()
        .position(|a| a == "--exec-mode")
        .and_then(|i| rest.get(i + 1))
    {
        options.exec_mode = mode.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
    }
    options.trace = trace_sink(rest);
    options.checked = rest.iter().any(|a| a == "--checked");
    options.flight = flag_value(rest, "--flight").map(PathBuf::from);
    let metrics_text = rest.iter().any(|a| a == "--metrics");
    let metrics_json = flag_value(rest, "--metrics-json");
    let metrics_prom = flag_value(rest, "--metrics-prom");
    if metrics_text || metrics_json.is_some() || metrics_prom.is_some() {
        options.metrics = MetricsHub::enabled();
    }
    let background = options.jit_mode == JitMode::Background;
    let mut vm = Vm::new(program, options);
    if let Some(path) = flag_value(rest, "--profile-in") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        match ProfileStore::import_json(&text) {
            Ok(profiles) => vm.import_profiles(profiles),
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(2);
            }
        }
    }
    for _ in 0..warmup {
        if vm.call_entry(entry, &call_args).is_err() {
            break; // errors reported by the measured call below
        }
    }
    if background {
        // Settle: measure steady-state compiled code, not the race between
        // the warmup loop and the compile queue.
        vm.await_background_compiles();
    }
    let before = vm.stats();
    match vm.call_entry(entry, &call_args) {
        Ok(v) => {
            if background {
                vm.await_background_compiles();
            }
            let d = vm.stats().delta(&before);
            println!(
                "result = {}",
                v.map_or("void".to_string(), |v| v.to_string())
            );
            println!(
                "allocations={} bytes={} monitors={} cycles={} deopts={} compiled-methods={}",
                d.alloc_count,
                d.alloc_bytes,
                d.monitor_ops(),
                d.cycles,
                d.deopts,
                vm.compiled_method_count(),
            );
            if let Some(snapshot) = vm.metrics().snapshot() {
                if metrics_text {
                    eprint!("{}", render_text(&snapshot));
                }
                if let Some(path) = metrics_json {
                    write_output(path, &render_json(&snapshot));
                }
                if let Some(path) = metrics_prom {
                    write_output(path, &render_prometheus(&snapshot));
                }
            }
            if let Some(path) = flag_value(rest, "--profile-out") {
                write_output(path, &vm.profiles().export_json());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// One program to be profiled: name, bytecode, entry method and the
/// per-iteration argument convention.
struct ProfileTarget {
    name: String,
    program: pea::bytecode::Program,
    entry: String,
    /// Fixed call arguments; when empty, the iteration index is passed
    /// (the corpus `iterate(i)` convention).
    args: Vec<Value>,
}

/// `pea profile` — run one program (or, with `--smoke`, the whole
/// benchmark corpus) under the cycle-attribution profiler and emit:
///
/// * a top-N `(method, tier)` table and per-opcode breakdown on stdout,
/// * `PROFILE.json` (`pea-profile/1`, including the reconciliation section),
/// * `STACKS.txt` collapsed-stack lines for flamegraph generators,
/// * `TIMELINE.json` Chrome trace-event JSON (Perfetto-loadable).
///
/// Exits nonzero if the profiler totals do not reconcile exactly with the
/// VM's independently maintained counters (cycles, deopts, installs).
fn cmd_profile(args: &[String]) -> ExitCode {
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_dir = PathBuf::from(flag_value(args, "--out").unwrap_or("."));
    let top: usize = flag_value(args, "--top")
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let warmup: u64 = flag_value(args, "--warmup")
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);
    let targets: Vec<ProfileTarget> = if smoke {
        pea::workloads::all_workloads()
            .into_iter()
            .map(|w| ProfileTarget {
                name: w.name,
                program: w.program,
                entry: "iterate".to_string(),
                args: Vec::new(),
            })
            .collect()
    } else {
        let [path, entry, rest @ ..] = args else {
            eprintln!(
                "usage: pea profile <file.asm> <entry> [int args...] [--level L] \
                 [--jit-mode sync|background] [--exec-mode linear|graph] [--warmup N] \
                 [--top N] [--out DIR]  |  pea profile --smoke [--out DIR]"
            );
            return ExitCode::from(2);
        };
        let call_args: Vec<Value> = rest
            .iter()
            .take_while(|a| !a.starts_with("--"))
            .map(|a| {
                if a == "null" {
                    Value::Null
                } else {
                    Value::Int(a.parse().unwrap_or_else(|_| {
                        eprintln!("bad argument `{a}` (int or `null`)");
                        std::process::exit(2);
                    }))
                }
            })
            .collect();
        vec![ProfileTarget {
            name: entry.clone(),
            program: load(path),
            entry: entry.clone(),
            args: call_args,
        }]
    };
    // One shared hub: same-named methods merge across VMs, totals span the
    // whole corpus. The VM-side counters the profiler must reconcile with
    // (`stats.cycles`, `stats.deopts`, `stats.compiles`) are per-VM and
    // summed here.
    let hub = ProfilerHub::enabled();
    let mut recon = Reconciliation::default();
    // Flight entries of every VM concatenated onto one timeline, each
    // program offset past the previous one so the lanes read sequentially.
    let mut timeline: Vec<FlightEntry> = Vec::new();
    let (mut seq_base, mut t_base) = (0u64, 0u64);
    for target in &targets {
        let mut options = VmOptions::with_opt_level(parse_level(args));
        if let Some(mode) = flag_value(args, "--jit-mode") {
            options.jit_mode = mode.parse().unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            });
        }
        if let Some(mode) = flag_value(args, "--exec-mode") {
            options.exec_mode = mode.parse().unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            });
        }
        options.profiler = hub.clone();
        // The ring is what feeds the timeline; the dump path only
        // materializes on failure.
        options.flight = Some(out_dir.join("FLIGHT.json"));
        let background = options.jit_mode == JitMode::Background;
        let mut vm = Vm::new(target.program.clone(), options);
        for i in 0..warmup {
            let args = if target.args.is_empty() {
                vec![Value::Int(i as i64)]
            } else {
                target.args.clone()
            };
            if let Err(e) = vm.call_entry(&target.entry, &args) {
                eprintln!("{}: {e}", target.name);
                return ExitCode::FAILURE;
            }
        }
        if background {
            vm.await_background_compiles();
        }
        let stats = vm.stats();
        recon.stats_cycles += stats.cycles;
        recon.vm_deopts += stats.deopts;
        recon.vm_installs += stats.compiles;
        let mut last = (seq_base, t_base);
        for e in vm.flight_entries().unwrap_or_default() {
            let shifted = FlightEntry {
                seq: seq_base + e.seq,
                t_us: t_base + e.t_us,
                event: e.event,
            };
            last = (last.0.max(shifted.seq + 1), last.1.max(shifted.t_us + 1));
            timeline.push(shifted);
        }
        (seq_base, t_base) = last;
    }
    let snapshot = hub.snapshot().expect("hub is enabled");
    recon.profiler_cycles = snapshot.total_cycles();
    recon.profiler_deopts = snapshot.deopts;
    recon.profiler_installs = snapshot.installs;
    print!("{}", snapshot.render_top(top));
    let opcodes = snapshot.render_opcodes(pea::interp::OPCODE_NAMES);
    if !opcodes.is_empty() {
        println!("\ninterpreter cycles by opcode:");
        print!("{opcodes}");
    }
    let profile_json = snapshot.to_json(pea::interp::OPCODE_NAMES, Some(&recon));
    write_output(
        out_dir.join("PROFILE.json").to_str().unwrap(),
        &profile_json,
    );
    write_output(
        out_dir.join("STACKS.txt").to_str().unwrap(),
        &snapshot.collapsed_stacks(),
    );
    let timeline_json = render_chrome_trace(&timeline);
    if let Err(e) = validate_json(&timeline_json) {
        eprintln!("TIMELINE.json failed validation: {e}");
        return ExitCode::FAILURE;
    }
    write_output(
        out_dir.join("TIMELINE.json").to_str().unwrap(),
        &timeline_json,
    );
    println!(
        "\nwrote {}, {}, {} ({} timeline events)",
        out_dir.join("PROFILE.json").display(),
        out_dir.join("STACKS.txt").display(),
        out_dir.join("TIMELINE.json").display(),
        timeline.len(),
    );
    if !recon.ok() {
        eprintln!(
            "profiler/metrics reconciliation FAILED: \
             cycles {}/{}, deopts {}/{}, installs {}/{}",
            recon.profiler_cycles,
            recon.stats_cycles,
            recon.profiler_deopts,
            recon.vm_deopts,
            recon.profiler_installs,
            recon.vm_installs,
        );
        return ExitCode::FAILURE;
    }
    println!(
        "reconciliation OK: cycles={} deopts={} installs={}",
        recon.profiler_cycles, recon.profiler_deopts, recon.profiler_installs
    );
    ExitCode::SUCCESS
}

/// `pea trace <file.asm> [method] [--level L] [--json]` — compile the named
/// method (or every free static method when omitted) and stream every PEA
/// decision the compiler makes to stdout.
fn cmd_trace(args: &[String], json: bool) -> ExitCode {
    let [path, rest @ ..] = args else {
        eprintln!("usage: pea trace <file.asm> [method] [--level L] [--inline-policy P] [--json]");
        return ExitCode::from(2);
    };
    let json = json || rest.iter().any(|a| a == "--json" || a == "--trace-json");
    let program = load(path);
    let level = parse_level(rest);
    let methods: Vec<pea::bytecode::MethodId> = match rest.iter().find(|a| !a.starts_with("--")) {
        Some(name) => match program.static_method_by_name(name) {
            Some(id) => vec![id],
            None => {
                eprintln!("no static method `{name}`");
                return ExitCode::from(2);
            }
        },
        None => (0..program.methods.len())
            .map(pea::bytecode::MethodId::from_index)
            .filter(|&m| program.method(m).class.is_none())
            .collect(),
    };
    let mut sink: Box<dyn TraceSink> = if json {
        Box::new(JsonLinesSink::new(std::io::stdout()))
    } else {
        Box::new(PrettySink::new(std::io::stdout()))
    };
    let mut options = CompilerOptions::with_opt_level(level);
    options.build.inline_policy = parse_inline_policy(rest);
    for method in methods {
        if let Err(e) = compile_traced(&program, method, None, &options, sink.as_mut()) {
            eprintln!(
                "{}: compilation bailout: {e}",
                program.method(method).qualified_name(&program)
            );
        }
    }
    ExitCode::SUCCESS
}

fn compiled_for(args: &[String]) -> Option<(pea::compiler::CompiledMethod, String)> {
    let [path, method_name, rest @ ..] = args else {
        eprintln!("usage: pea dump|dot <file.asm> <method> [--level L]");
        return None;
    };
    let program = load(path);
    let level = parse_level(rest);
    let method = program
        .static_method_by_name(method_name)
        .unwrap_or_else(|| {
            eprintln!("no static method `{method_name}`");
            std::process::exit(2);
        });
    let mut options = CompilerOptions::with_opt_level(level);
    options.build.inline_policy = parse_inline_policy(rest);
    match compile(&program, method, None, &options) {
        Ok(code) => Some((code, method_name.clone())),
        Err(e) => {
            eprintln!("compilation bailout: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_dump(args: &[String]) -> ExitCode {
    let Some((code, name)) = compiled_for(args) else {
        return ExitCode::from(2);
    };
    println!("=== {name} (code size {} nodes) ===", code.code_size);
    println!("escape analysis: {:?}", code.pea_result);
    println!("{}", pea::ir::dump::dump(&code.graph));
    match &code.linear {
        Some(art) => {
            println!(
                "=== linear ({} words, {} regs) ===",
                art.code.len(),
                art.num_regs
            );
            print!("{}", art.disassemble());
        }
        None => println!("=== linear: lowering bailed out (graph tier only) ==="),
    }
    ExitCode::SUCCESS
}

fn cmd_dot(args: &[String]) -> ExitCode {
    let Some((code, name)) = compiled_for(args) else {
        return ExitCode::from(2);
    };
    println!("{}", pea::ir::dump::dump_dot(&code.graph, &name));
    ExitCode::SUCCESS
}

fn cmd_disasm(args: &[String]) -> ExitCode {
    let [path] = args else {
        eprintln!("usage: pea disasm <file.asm>");
        return ExitCode::from(2);
    };
    let program = load(path);
    print!("{}", pea::bytecode::disasm::disassemble(&program));
    ExitCode::SUCCESS
}

/// `pea serve`: N mutator threads on one VM, each calling the entry in a
/// loop — the CLI face of the multi-threaded throughput harness. The main
/// mutator warms first so every thread forks pre-compiled tiering state;
/// every thread's per-call results must agree (they run the same
/// deterministic call sequence) and no compiled-call lookup may block on
/// the published-code store.
fn cmd_serve(args: &[String]) -> ExitCode {
    let [path, entry, rest @ ..] = args else {
        eprintln!(
            "usage: pea serve <file.asm> <entry> [int args...] [--threads N] [--iters K] \
             [--warmup N] [--level L] [--jit-mode sync|background] [--exec-mode linear|graph] \
             [--checked]"
        );
        return ExitCode::from(2);
    };
    let program = load(path);
    let call_args: Vec<Value> = rest
        .iter()
        .take_while(|a| !a.starts_with("--"))
        .map(|a| {
            if a == "null" {
                Value::Null
            } else {
                Value::Int(a.parse().unwrap_or_else(|_| {
                    eprintln!("bad argument `{a}` (int or `null`)");
                    std::process::exit(2);
                }))
            }
        })
        .collect();
    let parse_count = |flag: &str, default: usize| -> usize {
        flag_value(rest, flag).map_or(default, |s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("bad {flag} value `{s}`");
                std::process::exit(2);
            })
        })
    };
    let threads = parse_count("--threads", 4);
    if threads == 0 {
        eprintln!("--threads must be at least 1");
        return ExitCode::from(2);
    }
    let iters = parse_count("--iters", 1000);
    let warmup = parse_count("--warmup", 100);
    let mut options = VmOptions::with_opt_level(parse_level(rest));
    if let Some(mode) = flag_value(rest, "--jit-mode") {
        options.jit_mode = mode.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
    }
    if let Some(mode) = flag_value(rest, "--exec-mode") {
        options.exec_mode = mode.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
    }
    options.checked = rest.iter().any(|a| a == "--checked");
    let background = options.jit_mode == JitMode::Background;
    let mut vm = Vm::new(program, options);
    for _ in 0..warmup {
        if let Err(e) = vm.call_entry(entry, &call_args) {
            eprintln!("warmup: {e}");
            return ExitCode::FAILURE;
        }
    }
    if background {
        vm.await_background_compiles();
    }

    let start = std::time::Instant::now();
    let runs = vm.run_threads_warm(threads, |t, m| {
        let mut last = None;
        for i in 0..iters {
            match m.call_entry(entry, &call_args) {
                Ok(v) => last = v,
                Err(e) => {
                    eprintln!("thread {t} iteration {i}: {e}");
                    std::process::exit(1);
                }
            }
        }
        if background {
            m.await_background_compiles();
        }
        (last, m.stats())
    });
    let wall = start.elapsed();

    let (oracle, _) = &runs[0];
    let diverged = runs.iter().filter(|(v, _)| v != oracle).count();
    let total_cycles: u64 = runs.iter().map(|(_, s)| s.cycles).sum();
    let cache = vm.code_cache_stats();
    println!(
        "served {iters} iterations × {threads} threads in {:.1}ms ({:.1} kiters/s)",
        wall.as_secs_f64() * 1e3,
        threads as f64 * iters as f64 / wall.as_secs_f64() / 1e3
    );
    println!(
        "cycles={total_cycles} store reads(fast/refresh/stale/blocked)={}/{}/{}/{} installs={} evictions={}",
        cache.read_fast,
        cache.read_refresh,
        cache.read_stale,
        cache.read_blocked,
        cache.installs,
        cache.evictions
    );
    if diverged > 0 {
        eprintln!("{diverged} thread(s) diverged from thread 0");
        return ExitCode::FAILURE;
    }
    if cache.read_blocked > 0 {
        eprintln!(
            "{} compiled-call lookup(s) blocked on the store lock",
            cache.read_blocked
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "run" => cmd_run(rest),
            "serve" => cmd_serve(rest),
            "profile" => cmd_profile(rest),
            "trace" => cmd_trace(rest, false),
            // `pea --trace <file> [method]` shorthand for the subcommand.
            "--trace" => cmd_trace(rest, false),
            "--trace-json" => cmd_trace(rest, true),
            "dump" => cmd_dump(rest),
            "dot" => cmd_dot(rest),
            "disasm" => cmd_disasm(rest),
            other => {
                eprintln!("unknown command `{other}`");
                eprintln!("commands: run, serve, profile, trace, dump, dot, disasm");
                ExitCode::from(2)
            }
        },
        None => {
            eprintln!("usage: pea <run|serve|profile|trace|dump|dot|disasm> ...");
            ExitCode::from(2)
        }
    }
}
