//! Cross-crate integration tests: the full stack (assembler → verifier →
//! interpreter → profiles → compiler → evaluator → deoptimization) on
//! scenarios from the paper.

use pea::bytecode::asm::parse_program;
use pea::runtime::{Value, VmError};
use pea::vm::{OptLevel, Vm, VmOptions};

fn vm_for(src: &str, level: OptLevel) -> Vm {
    let program = parse_program(src).expect("assembles");
    pea::bytecode::verify_program(&program).expect("verifies");
    Vm::new(program, VmOptions::with_opt_level(level))
}

/// The paper's running example driven through the whole VM with a
/// realistic hit/miss mix, at all three optimization levels.
#[test]
fn cache_example_full_stack() {
    let src = "
        class Key { field idx int field ref ref }
        static cacheKey ref
        static cacheValue int
        method virtual Key.equals 2 returns synchronized {
            load 1 ifnull Lf
            load 0 getfield Key.idx
            load 1 checkcast Key getfield Key.idx
            ifcmp ne Lf
            const 1 retv
        Lf: const 0 retv
        }
        method getValue 1 returns {
            new Key store 1
            load 1 load 0 putfield Key.idx
            load 1 getstatic cacheKey invokevirtual Key.equals
            const 0 ifcmp eq Lmiss
            getstatic cacheValue retv
        Lmiss:
            load 1 putstatic cacheKey
            load 0 const 13 mul putstatic cacheValue
            getstatic cacheValue retv
        }";
    let mut outputs = Vec::new();
    let mut hit_allocs = Vec::new();
    for level in [OptLevel::None, OptLevel::Ees, OptLevel::Pea] {
        let mut vm = vm_for(src, level);
        let mut sum = 0i64;
        for i in 0..300i64 {
            let key = i / 10; // 90% hits
            let r = vm.call_entry("getValue", &[Value::Int(key)]).unwrap();
            sum = sum.wrapping_add(r.unwrap().as_int().unwrap());
        }
        outputs.push(sum);
        // Steady-state hit cost.
        let before = vm.stats();
        vm.call_entry("getValue", &[Value::Int(29)]).unwrap();
        hit_allocs.push(vm.stats().delta(&before).alloc_count);
    }
    assert!(outputs.windows(2).all(|w| w[0] == w[1]), "{outputs:?}");
    assert_eq!(hit_allocs[0], 1, "no EA: every call allocates a key");
    assert_eq!(
        hit_allocs[1], 1,
        "EES: the key escapes somewhere, so never optimized"
    );
    assert_eq!(hit_allocs[2], 0, "PEA: hit path allocates nothing");
}

/// §5.5 with locks: the object is *locked* (synchronized method inlined)
/// at the deopt point. Rematerialization must re-enter the monitor, and
/// the interpreter must release it when the synchronized frame returns.
#[test]
fn deopt_inside_synchronized_inlined_callee() {
    let src = "
        class Acc { field v int }
        static published ref
        method virtual Acc.bump 2 returns synchronized {
            load 0 load 0 getfield Acc.v load 1 add putfield Acc.v
            load 1 const 1000 ifcmp gt Lrare
            load 0 getfield Acc.v retv
        Lrare:
            load 0 putstatic published
            load 0 getfield Acc.v const 1000000 add retv
        }
        method f 1 returns {
            new Acc store 1
            load 1 load 0 invokevirtual Acc.bump retv
        }";
    let mut vm = vm_for(src, OptLevel::Pea);
    for i in 0..120 {
        let r = vm.call_entry("f", &[Value::Int(i)]).unwrap();
        assert_eq!(r, Some(Value::Int(i)));
    }
    assert!(vm.compiled_method_count() >= 1);
    // Verify the hot path is fully virtual (no allocation, no monitors).
    let before = vm.stats();
    vm.call_entry("f", &[Value::Int(7)]).unwrap();
    let hot = vm.stats().delta(&before);
    assert_eq!(hot.alloc_count, 0, "scalar-replaced");
    assert_eq!(hot.monitor_ops(), 0, "lock elided");

    // Cold path: the guard inside the synchronized callee fails while the
    // virtual Acc is LOCKED. Deopt must rematerialize it with the monitor
    // held, and the resumed interpreter frame must release it on return.
    let before = vm.stats();
    let r = vm.call_entry("f", &[Value::Int(5000)]).unwrap();
    assert_eq!(r, Some(Value::Int(1005000)));
    let cold = vm.stats().delta(&before);
    assert_eq!(cold.deopts, 1);
    assert!(cold.rematerialized >= 1);
    assert_eq!(
        cold.monitor_enters, cold.monitor_exits,
        "monitor balance across deopt: {cold}"
    );
    assert_eq!(vm.heap().total_lock_holds(), 0, "no leaked monitors");

    // The published object carries the updated field.
    let program = vm.program();
    let published = program.static_by_name("published").unwrap();
    let obj = match vm.statics_ref().get(published) {
        Value::Ref(r) => r,
        other => panic!("expected object, got {other}"),
    };
    let acc = program.class_by_name("Acc").unwrap();
    let field = program.field_by_name(acc, "v").unwrap();
    assert_eq!(
        vm.heap().get_field(program, obj, field).unwrap(),
        Value::Int(5000)
    );
}

/// Fibonacci through recursion: exercises non-inlined calls from compiled
/// code back into the VM (and interpreter ↔ compiled mixing).
#[test]
fn recursive_calls_across_tiers() {
    let src = "
        method fib 1 returns {
            load 0 const 2 ifcmp lt Lbase
            load 0 const 1 sub invokestatic fib
            load 0 const 2 sub invokestatic fib
            add retv
        Lbase:
            load 0 retv
        }";
    for level in [OptLevel::None, OptLevel::Pea] {
        let mut vm = vm_for(src, level);
        for _ in 0..10 {
            assert_eq!(
                vm.call_entry("fib", &[Value::Int(15)]).unwrap(),
                Some(Value::Int(610))
            );
        }
        assert!(
            vm.compiled_method_count() >= 1,
            "fib gets hot via recursion"
        );
        assert_eq!(
            vm.call_entry("fib", &[Value::Int(20)]).unwrap(),
            Some(Value::Int(6765))
        );
    }
}

/// Virtual arrays: constant-length arrays are scalar-replaced, dynamic
/// ones are not; both behave identically.
#[test]
fn virtual_arrays_behave_like_real_ones() {
    let src = "
        method pack 2 returns {
            const 2 newarray int store 2
            load 2 const 0 load 0 astore
            load 2 const 1 load 1 astore
            load 2 const 0 aload
            load 2 const 1 aload
            add
            load 2 arraylen
            mul retv
        }";
    let mut pea_vm = vm_for(src, OptLevel::Pea);
    let mut none_vm = vm_for(src, OptLevel::None);
    for i in 0..120 {
        let a = pea_vm
            .call_entry("pack", &[Value::Int(i), Value::Int(i * 2)])
            .unwrap();
        let b = none_vm
            .call_entry("pack", &[Value::Int(i), Value::Int(i * 2)])
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a, Some(Value::Int((i + i * 2) * 2)));
    }
    let before = pea_vm.stats();
    pea_vm
        .call_entry("pack", &[Value::Int(1), Value::Int(2)])
        .unwrap();
    assert_eq!(
        pea_vm.stats().delta(&before).alloc_count,
        0,
        "constant-length array scalar-replaced"
    );
}

/// Errors must be identical across tiers, including ones raised deep in
/// inlined code.
#[test]
fn errors_agree_across_tiers() {
    let src = "
        class Box { field v int }
        method inner 1 returns {
            load 0 const 0 ifcmp ne Lok
            cnull getfield Box.v retv
        Lok:
            const 100 load 0 div retv
        }
        method f 1 returns { load 0 invokestatic inner retv }";
    let mut results: Vec<Vec<Result<Option<Value>, VmError>>> = Vec::new();
    for level in [OptLevel::None, OptLevel::Pea] {
        let mut vm = vm_for(src, level);
        let mut r = Vec::new();
        for round in 0..150i64 {
            // Mostly fine args, occasionally null-deref (0) — after the
            // method is compiled.
            let arg = if round == 130 { 0 } else { (round % 7) + 1 };
            r.push(vm.call_entry("f", &[Value::Int(arg)]));
        }
        results.push(r);
    }
    assert_eq!(results[0], results[1]);
    assert!(results[0].iter().any(|r| r == &Err(VmError::NullPointer)));
}

/// All 27 workload kernels agree between interpreter-only and PEA-JIT
/// execution over a longer horizon than the unit tests use, and keep
/// their monitors balanced.
#[test]
fn workload_smoke_long_horizon() {
    for w in pea::workloads::all_workloads() {
        let mut interp = Vm::new(w.program.clone(), VmOptions::interpreter_only());
        let mut jit = Vm::new(w.program.clone(), {
            let mut o = VmOptions::with_opt_level(OptLevel::Pea);
            o.compile_threshold = 10;
            o
        });
        for i in 0..25i64 {
            let a = interp.call_entry("iterate", &[Value::Int(i)]).unwrap();
            let b = jit.call_entry("iterate", &[Value::Int(i)]).unwrap();
            assert_eq!(a, b, "{} diverges at iteration {i}", w.name);
        }
        assert_eq!(
            jit.heap().total_lock_holds(),
            0,
            "{}: leaked monitors",
            w.name
        );
        assert!(
            jit.compiled_method_count() > 0,
            "{}: nothing compiled",
            w.name
        );
    }
}
