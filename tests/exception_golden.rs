//! End-to-end golden pins for the two new materialization points:
//! exception edges and speculated virtual dispatch.
//!
//! These tests drive the full VM (interpreter → profile → JIT) and pin
//! the *observable* contract of the tentpole features:
//!
//! - a try-block allocation caught by a local handler is fully scalar
//!   replaced — zero heap allocations in a compiled steady state;
//! - the same shape with an escaping throw materializes exactly at the
//!   throw — the runtime allocation count matches the number of throwing
//!   calls, and the compile trace carries the `thrown-escape` reason;
//! - a speculated virtual call site plants a `DevirtGuard` at compile
//!   time, and a receiver outside the speculated set triggers
//!   `DeoptTaken` *before* the generic `Deopt` record, with correct
//!   rematerialization (`checked` panics on any sanitizer finding).
//!
//! Everything runs in both JIT modes (synchronous and background).

use pea::runtime::Value;
use pea::trace::{MaterializeReason, MemorySink, SharedSink, TraceEvent};
use pea::vm::{JitMode, OptLevel, Vm, VmOptions};
use std::sync::{Arc, Mutex};

const CAUGHT: &str = "
    class E { field c int }
    method work 1 returns {
        try Ls Le Lh E
    Ls:
        load 0 const 3 rem const 0 ifcmp ne Lok
        new E store 1
        load 1 load 0 putfield E.c
        load 1 athrow
    Lok:
        load 0 const 2 mul retv
    Le:
    Lh:
        checkcast E getfield E.c const 100 add retv
    }
    method iterate 1 returns { load 0 invokestatic work retv }";

const ESCAPING: &str = "
    class E { field c int }
    method work 1 returns {
        load 0 const 3 rem const 0 ifcmp ne Lok
        new E store 1
        load 1 load 0 putfield E.c
        load 1 athrow
    Lok:
        load 0 const 2 mul retv
    }
    method iterate 1 returns {
        try Ls Le Lh E
    Ls:
        load 0 invokestatic work
    Le:
        retv
    Lh:
        checkcast E getfield E.c const 100 add retv
    }";

fn program(src: &str) -> pea::bytecode::Program {
    let p = pea::bytecode::asm::parse_program(src).expect("fixture parses");
    pea::bytecode::verify_program(&p).expect("fixture verifies");
    p
}

fn traced_options(mode: JitMode) -> (VmOptions, Arc<Mutex<MemorySink>>) {
    let mut options = VmOptions::with_opt_level(OptLevel::Pea);
    options.compile_threshold = 3;
    options.checked = true;
    options.jit_mode = mode;
    options.compile_workers = Some(1);
    let (sink, mem) = SharedSink::new(MemorySink::new());
    options.trace = Some(sink);
    (options, mem)
}

/// Runs `iterate` until the VM has at least `compiled` methods installed
/// (bounded — both `iterate` and its may-throw callee compile separately,
/// since may-throw callees are never inlined), then measures a
/// steady-state window of `window` calls starting at `base`. Returns the
/// allocation count over the window. When `deopt_free` is set the window
/// must not deopt; throw-heavy fixtures skip that check, because an
/// exception unwinding out of compiled code is *recorded* as a deopt
/// (reason `exception-unwind`) without being one semantically.
fn steady_window(vm: &mut Vm, compiled: usize, base: i64, window: i64, deopt_free: bool) -> u64 {
    for round in 0..400i64 {
        vm.call_entry("iterate", &[Value::Int(base + round % 6)])
            .expect("warmup");
        // In background mode the requests sit in the worker queue; settle
        // it before checking so the loop terminates deterministically.
        vm.await_background_compiles();
        if vm.compiled_method_count() >= compiled {
            break;
        }
    }
    assert!(
        vm.compiled_method_count() >= compiled,
        "the whole call chain must reach compiled code"
    );
    // A few more calls so the window starts well inside compiled code.
    for round in 0..6i64 {
        vm.call_entry("iterate", &[Value::Int(base + round)])
            .expect("post-compile warmup");
    }
    let before = vm.stats();
    for round in 0..window {
        vm.call_entry("iterate", &[Value::Int(base + round)])
            .expect("steady state");
    }
    let d = vm.stats().delta(&before);
    if deopt_free {
        assert_eq!(d.deopts, 0, "steady-state window must be deopt-free");
    }
    d.alloc_count
}

/// The caught-locally program computes the same results everywhere and,
/// once compiled, allocates nothing: the thrown E never leaves the frame,
/// so the exception edge into the local handler is no escape at all.
#[test]
fn caught_allocation_is_fully_scalar_replaced() {
    let p = program(CAUGHT);
    for mode in [JitMode::Sync, JitMode::Background] {
        let (options, _mem) = traced_options(mode);
        let mut vm = Vm::new(p.clone(), options);
        // Result check against the source semantics first.
        for i in 0..9i64 {
            let expect = if i % 3 == 0 { i + 100 } else { i * 2 };
            assert_eq!(
                vm.call_entry("iterate", &[Value::Int(i)]).unwrap(),
                Some(Value::Int(expect)),
                "mode {mode:?}: wrong result for iterate({i})"
            );
        }
        let allocs = steady_window(&mut vm, 2, 0, 6, true);
        assert_eq!(
            allocs, 0,
            "mode {mode:?}: a locally-caught allocation must be fully \
             scalar-replaced (0 heap allocations), got {allocs}"
        );
    }
}

/// The escaping-throw variant materializes exactly at the throw: over a
/// window of six calls (two of which throw), the runtime allocates exactly
/// two objects, and the compile trace records the `thrown-escape` reason
/// for the site.
#[test]
fn escaping_throw_materializes_exactly_at_throw() {
    let p = program(ESCAPING);
    for mode in [JitMode::Sync, JitMode::Background] {
        let (options, mem) = traced_options(mode);
        let mut vm = Vm::new(p.clone(), options);
        for i in 0..9i64 {
            let expect = if i % 3 == 0 { i + 100 } else { i * 2 };
            assert_eq!(
                vm.call_entry("iterate", &[Value::Int(i)]).unwrap(),
                Some(Value::Int(expect)),
                "mode {mode:?}: wrong result for iterate({i})"
            );
        }
        let allocs = steady_window(&mut vm, 2, 0, 6, false);
        assert_eq!(
            allocs, 2,
            "mode {mode:?}: exactly the two throwing calls of the window \
             may allocate (materialize-at-throw), got {allocs}"
        );
        let reasons: Vec<MaterializeReason> = mem
            .lock()
            .unwrap()
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Materialized { reason, .. } => Some(*reason),
                _ => None,
            })
            .collect();
        assert!(
            reasons.contains(&MaterializeReason::ThrownEscape),
            "mode {mode:?}: the compile trace must pin the thrown-escape \
             materialization, got {reasons:?}"
        );
    }
}

const DISPATCH: &str = "
    class A { field x int }
    class B extends A { }
    method virtual A.go 1 returns { load 0 getfield A.x const 2 mul retv }
    method virtual B.go 1 returns { load 0 getfield A.x const 3 mul retv }
    method dispatch 1 returns {
        load 0 const 10 ifcmp ge Lb
        new A goto Lset
    Lb:
        new B
    Lset:
        store 1
        load 1 load 0 putfield A.x
        load 1 invokevirtual A.go retv
    }
    method iterate 1 returns { load 0 invokestatic dispatch retv }";

/// Guard ordering pin: warming the call site monomorphically plants a
/// `DevirtGuard` on class A; the first B receiver fails the guard, and the
/// trace must show `DeoptTaken` immediately followed by the generic
/// `Deopt` for the same method — with the rematerialized receiver giving
/// the correct B result (checked mode panics on any sanitizer finding).
#[test]
fn devirt_guard_failure_orders_deopt_taken_before_deopt() {
    let p = program(DISPATCH);
    for mode in [JitMode::Sync, JitMode::Background] {
        let (mut options, mem) = traced_options(mode);
        // Enough interpreted calls before the compile for the receiver
        // profile to clear the speculation threshold.
        options.compile_threshold = 8;
        options.compiler.build.devirtualize_threshold = 4;
        let mut vm = Vm::new(p.clone(), options);
        // Monomorphic warmup: receivers are all A, results i*2.
        for round in 0..200i64 {
            let i = round % 8;
            assert_eq!(
                vm.call_entry("iterate", &[Value::Int(i)]).unwrap(),
                Some(Value::Int(i * 2)),
                "mode {mode:?}: warmup"
            );
            vm.await_background_compiles();
            if vm.compiled_method_count() >= 1 {
                break;
            }
        }
        // `dispatch` is inlined into the compiled `iterate` (it never
        // throws), so the speculated call site — and its guard — live in
        // iterate's code; dispatch itself stays interpreted-and-unused.
        assert!(
            vm.compiled_method_count() >= 1,
            "the dispatch chain must compile"
        );
        for i in 0..8i64 {
            vm.call_entry("iterate", &[Value::Int(i)]).unwrap();
        }
        {
            let log = mem.lock().unwrap();
            let guard = log.events.iter().find_map(|e| match e {
                TraceEvent::DevirtGuard {
                    callee, classes, ..
                } => Some((callee.clone(), classes.clone())),
                _ => None,
            });
            let (callee, classes) = guard.expect("monomorphic warmup must plant a devirt guard");
            assert_eq!(callee, "A.go", "mode {mode:?}");
            assert_eq!(classes, vec!["A".to_string()], "mode {mode:?}");
            assert!(
                !log.events
                    .iter()
                    .any(|e| matches!(e, TraceEvent::DeoptTaken { .. })),
                "mode {mode:?}: no guard failure before the first B receiver"
            );
        }
        // First polymorphic receiver: the guard fails, the frame deopts,
        // and the rematerialized B still computes 12*3.
        assert_eq!(
            vm.call_entry("iterate", &[Value::Int(12)]).unwrap(),
            Some(Value::Int(36)),
            "mode {mode:?}: guard-failure deopt must preserve the B result"
        );
        let log = mem.lock().unwrap();
        let taken: Vec<usize> = log
            .events
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match e {
                TraceEvent::DeoptTaken { .. } => Some(i),
                _ => None,
            })
            .collect();
        assert!(
            !taken.is_empty(),
            "mode {mode:?}: the failed guard must surface as DeoptTaken"
        );
        for i in &taken {
            let TraceEvent::DeoptTaken {
                method,
                site,
                bci,
                reason,
            } = &log.events[*i]
            else {
                unreachable!()
            };
            assert!(
                !site.is_empty(),
                "mode {mode:?}: DeoptTaken must name its deopt site"
            );
            match log.events.get(i + 1) {
                Some(TraceEvent::Deopt {
                    method: m,
                    site: s,
                    bci: b,
                    reason: r,
                    ..
                }) => {
                    assert_eq!(m, method, "mode {mode:?}: Deopt must follow its DeoptTaken");
                    assert_eq!(r, reason, "mode {mode:?}: reasons must match");
                    assert_eq!(s, site, "mode {mode:?}: sites must match");
                    assert_eq!(b, bci, "mode {mode:?}: bcis must match");
                }
                other => panic!(
                    "mode {mode:?}: DeoptTaken must be immediately followed \
                     by the generic Deopt, found {other:?}"
                ),
            }
        }
    }
}
