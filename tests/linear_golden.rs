//! Golden lowered encoding for the paper's worked example (Listing 1 /
//! §4, `examples/cache_key.asm`): pins the byte-exact `Vec<u32>` code
//! stream, the constant pool, and the disassembly of the linear
//! register-machine artifact for `getValue` under PEA, and checks that
//! the cycle model and the PEA decision trace are unchanged between the
//! linear tier and the graph-walking oracle under `--checked`.
//!
//! A change in these goldens means the lowering emitted different code
//! for the same scheduled graph; deliberate encoding changes must update
//! them alongside an explanation.

use pea::bytecode::asm::parse_program;
use pea::compiler::{compile, CompilerOptions, OptLevel};
use pea::runtime::Value;
use pea::trace::{MemorySink, SharedSink, TraceEvent};
use pea::vm::{ExecMode, Vm, VmOptions};

const CACHE_EXAMPLE: &str = include_str!("../examples/cache_key.asm");

fn compiled_cache_example() -> pea::compiler::CompiledMethod {
    let program = parse_program(CACHE_EXAMPLE).unwrap();
    pea::bytecode::verify_program(&program).unwrap();
    let method = program.static_method_by_name("getValue").unwrap();
    let options = CompilerOptions::with_opt_level(OptLevel::Pea);
    compile(&program, method, None, &options).unwrap()
}

/// The byte-exact encoding: one `u32` word stream, the deduplicated
/// constant pool, and the artifact's shape. `Key` is fully virtual on the
/// hit path — the only allocation is the single commit on the miss path,
/// and the elided monitor pair appears nowhere.
#[test]
fn cache_example_lowered_encoding_golden() {
    let code = compiled_cache_example();
    let art = code.linear.as_ref().expect("cache example lowers");
    #[rustfmt::skip]
    let golden: Vec<u32> = vec![
        0, 1, 0, 0, 2, 1, 2, 3, 1, 4, 0, 1, 5, 1, 1, 6, 2, 3, 2, 7, 1, 6,
        19, 8, 0, 23, 4, 1, 3, 0, 7, 9, 8, 25, 9, 91, 37, 9, 10, 8, 0, 12,
        11, 10, 0, 0, 0, 5, 1, 12, 1, 11, 25, 12, 88, 56, 9, 13, 8, 0, 12,
        14, 13, 0, 1, 1, 6, 15, 2, 14, 5, 0, 16, 15, 4, 25, 16, 85, 79, 26,
        28, 17, 5, 29, 100, 26, 29, 94, 26, 29, 94, 26, 29, 94, 26, 28, 17,
        4, 29, 100, 5, 0, 18, 17, 4, 25, 18, 114, 109, 19, 19, 1, 30, 19,
        22, 0, 20, 0, 0, 20, 7, 1, 19, 20, 1, 30, 20,
    ];
    assert_eq!(art.code, golden, "lowered code words changed");
    assert_eq!(art.pool, vec![0, 1, 13], "constant pool changed");
    assert_eq!(art.num_regs, 21);
    assert_eq!(
        art.deopts.len(),
        1,
        "one deopt point (the null-check guard)"
    );
    assert_eq!(art.commits.len(), 1, "one commit (the miss-path Key)");
}

/// The disassembly golden: the human-auditable rendering of the same
/// words, kept in sync with the raw encoding above.
#[test]
fn cache_example_disassembly_golden() {
    let code = compiled_cache_example();
    let art = code.linear.as_ref().expect("cache example lowers");
    let golden = "   0: param r1 <- #0
   3: param r2 <- #1
   6: null r3
   8: const r4 <- 0
  11: const r5 <- 1
  14: const r6 <- 13
  17: arith[2] r7 <- r1, r6
  22: getstatic r8 <- S0
  25: guard !r4 reason 3 deopt 0
  30: isnull r9 <- r8
  33: if r9 then 91 else 37
  37: checkcast r10 <- r8, C0
  41: ldfld r11 <- r10.[C0+0] (F0)
  47: cmp[1] r12 <- r1, r11
  52: if r12 then 88 else 56
  56: checkcast r13 <- r8, C0
  60: ldfld r14 <- r13.[C0+1] (F1)
  66: refeq r15 <- r2, r14
  70: cmp[0] r16 <- r15, r4
  75: if r16 then 85 else 79
  79: edge
  80: mov r17 <- r5
  83: jump 100
  85: edge
  86: jump 94
  88: edge
  89: jump 94
  91: edge
  92: jump 94
  94: edge
  95: mov r17 <- r4
  98: jump 100
 100: cmp[0] r18 <- r17, r4
 105: if r18 then 114 else 109
 109: getstatic r19 <- S1
 112: ret r19
 114: commit #0 x1 -> [r0]
 116: putstatic S0 <- r0
 119: putstatic S1 <- r7
 122: getstatic r20 <- S1
 125: ret r20
";
    assert_eq!(art.disassemble(), golden, "disassembly changed");
}

/// Running the example under `--checked` in both exec modes: identical
/// result vectors, identical virtual-cycle totals, and an identical PEA
/// decision trace (the cycle model and the analysis are tier-invariant).
#[test]
fn cache_example_cycles_and_trace_invariant_across_tiers() {
    let program = parse_program(CACHE_EXAMPLE).unwrap();
    pea::bytecode::verify_program(&program).unwrap();
    let mut runs = Vec::new();
    for exec in [ExecMode::Linear, ExecMode::Graph] {
        let mut options = VmOptions::with_opt_level(OptLevel::Pea);
        options.compile_threshold = 3;
        options.checked = true;
        options.exec_mode = exec;
        let (sink, mem) = SharedSink::new(MemorySink::new());
        options.trace = Some(sink);
        let mut vm = Vm::new(program.clone(), options);
        let mut results = Vec::new();
        for i in 0..12i64 {
            results.push(vm.call_entry("getValue", &[Value::Int(i % 3), Value::Null]));
        }
        let pea_trace: Vec<TraceEvent> = mem
            .lock()
            .unwrap()
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::Virtualized { .. }
                        | TraceEvent::Materialized { .. }
                        | TraceEvent::LockElided { .. }
                        | TraceEvent::LoadElided { .. }
                        | TraceEvent::StoreElided { .. }
                        | TraceEvent::CheckFolded { .. }
                        | TraceEvent::PhiCreated { .. }
                        | TraceEvent::Deopt { .. }
                        | TraceEvent::DeoptTaken { .. }
                )
            })
            .cloned()
            .collect();
        assert!(
            pea_trace
                .iter()
                .any(|e| matches!(e, TraceEvent::Virtualized { .. })),
            "the example must virtualize Key"
        );
        runs.push((results, vm.stats().cycles, pea_trace));
    }
    assert_eq!(runs[0].0, runs[1].0, "results differ between tiers");
    assert_eq!(runs[0].1, runs[1].1, "cycle counts differ between tiers");
    assert_eq!(runs[0].2, runs[1].2, "PEA traces differ between tiers");
}
