//! Cross-layer alignment of the static analyses in `pea-analysis` with
//! the rest of the stack: the bytecode verifier (which deliberately
//! accepts what the dataflow passes flag), the graph builder (which bails
//! out on unstructured locking), the checked-mode VM (whose sanitizer
//! must stay silent on the paper examples), and the `pea-pre` static
//! pre-filter (which must save PEA work without changing behavior).

use pea::analysis::{analyze_locks, analyze_method, analyze_nullness, EscapeClass};
use pea::analysis::{LockFindingKind, NullFindingKind};
use pea::bytecode::asm::parse_program;
use pea::bytecode::{verify_program, MethodId};
use pea::compiler::{compile, Bailout, CompilerOptions};
use pea::runtime::Value;
use pea::vm::{JitMode, OptLevel, Vm, VmOptions};

const CACHE_EXAMPLE: &str = include_str!("../examples/cache_key.asm");

/// §2's synchronized accumulator: lock elision on the hot path, deopt
/// with the monitor held on the cold one.
const SYNC_ACC: &str = "
    class Acc { field v int }
    static published ref
    method virtual Acc.bump 2 returns synchronized {
        load 0 load 0 getfield Acc.v load 1 add putfield Acc.v
        load 1 const 1000 ifcmp gt Lrare
        load 0 getfield Acc.v retv
    Lrare:
        load 0 putstatic published
        load 0 getfield Acc.v const 1000000 add retv
    }
    method f 1 returns {
        new Acc store 1
        load 1 load 0 invokevirtual Acc.bump retv
    }";

#[test]
fn unbalanced_monitor_passes_verifier_but_is_flagged_and_bailed() {
    let src = "
        class C { }
        method f 0 returns {
            new C monitorenter
            const 1 retv
        }";
    let program = parse_program(src).unwrap();
    // Layer 1: the verifier accepts it (monitor pairing is out of scope,
    // as in JVM bytecode verification).
    verify_program(&program).unwrap();
    // Layer 2: the lock-balance dataflow pass flags the leaked monitor.
    let locks = analyze_locks(&program, MethodId::from_index(0));
    assert!(!locks.balanced());
    assert!(locks
        .findings
        .iter()
        .any(|f| f.kind == LockFindingKind::UnreleasedAtReturn));
    // Layer 3: the compiler refuses to build a graph for it.
    let result = compile(
        &program,
        MethodId::from_index(0),
        None,
        &CompilerOptions::default(),
    );
    assert!(matches!(result, Err(Bailout::UnstructuredLocking)));
}

#[test]
fn read_before_store_passes_verifier_but_is_flagged() {
    let src = "method f 0 returns { load 3 retv }";
    let program = parse_program(src).unwrap();
    verify_program(&program).unwrap();
    let nullness = analyze_nullness(&program, MethodId::from_index(0));
    assert!(nullness
        .findings
        .iter()
        .any(|f| f.kind == NullFindingKind::ReadBeforeStore { local: 3 }));
}

#[test]
fn escape_classes_on_the_paper_example() {
    let program = parse_program(CACHE_EXAMPLE).unwrap();
    let get_value = program.static_method_by_name("getValue").unwrap();
    let summary = analyze_method(&program, get_value);
    assert_eq!(summary.sites.len(), 1);
    // The Key escapes through `putstatic cacheKey` on the miss path, so
    // the flow-insensitive verdict is GlobalEscape — which is exactly why
    // flow-sensitive PEA is needed to optimize the hit path.
    assert_eq!(summary.sites[0].escape, EscapeClass::GlobalEscape);
    assert!(
        !summary.sites[0].immediate_global,
        "the escape is conditional, not an immediate publish: \
         the pre-filter must leave this site to PEA"
    );
}

fn run_checked(src: &str, mode: JitMode) {
    let program = parse_program(src).unwrap();
    verify_program(&program).unwrap();
    let mut options = VmOptions::with_opt_level(OptLevel::Pea);
    options.compile_threshold = 5;
    options.checked = true;
    options.jit_mode = mode;
    let mut vm = Vm::new(program, options);
    for i in 0..200 {
        vm.call_entry("f", &[Value::Int(i)])
            .or_else(|_| vm.call_entry("getValue", &[Value::Int(i), Value::Null]))
            .unwrap();
    }
    if mode == JitMode::Background {
        vm.await_background_compiles();
    }
    assert!(vm.compiled_method_count() >= 1, "JIT never kicked in");
}

#[test]
fn checked_mode_is_clean_on_the_cache_example() {
    // The sanitizer cross-checks every Virtualized/LockElided decision
    // against the static verdicts and panics on inconsistency; the paper
    // examples must run clean in both compilation modes.
    run_checked(CACHE_EXAMPLE, JitMode::Sync);
    run_checked(CACHE_EXAMPLE, JitMode::Background);
}

#[test]
fn checked_mode_is_clean_on_the_sync_deopt_example() {
    run_checked(SYNC_ACC, JitMode::Sync);
    run_checked(SYNC_ACC, JitMode::Background);
}

#[test]
fn prefilter_skips_immediate_global_but_preserves_behavior() {
    // Site 1 is published to a static immediately (the pre-filter excludes
    // it); site 2 is scalar-replaced by PEA either way.
    let src = "
        class C { field v int }
        static g ref
        method f 1 returns {
            new C putstatic g
            new C store 1
            load 1 load 0 putfield C.v
            load 1 getfield C.v const 1 add retv
        }";
    let mut results = Vec::new();
    for level in [OptLevel::Pea, OptLevel::PeaPre] {
        let program = parse_program(src).unwrap();
        let mut options = VmOptions::with_opt_level(level);
        options.compile_threshold = 5;
        options.checked = level == OptLevel::Pea;
        let mut vm = Vm::new(program, options);
        for i in 0..50 {
            assert_eq!(
                vm.call_entry("f", &[Value::Int(i)]).unwrap(),
                Some(Value::Int(i + 1))
            );
        }
        assert_eq!(vm.compiled_method_count(), 1);
        // Steady state: one call allocates exactly the published object.
        let before = vm.stats();
        vm.call_entry("f", &[Value::Int(9)]).unwrap();
        let delta = vm.stats().delta(&before);
        let method = vm.compiled_methods()[0];
        let pea_result = vm.compiled(method).unwrap().pea_result;
        results.push((level, delta.alloc_count, pea_result));
    }
    let (_, pea_allocs, pea_result) = results[0];
    let (_, pre_allocs, pre_result) = results[1];
    assert_eq!(pea_allocs, pre_allocs, "identical steady-state allocation");
    assert_eq!(pea_allocs, 1, "only the published object is allocated");
    assert_eq!(pea_result.prefiltered_allocs, 0);
    assert_eq!(
        pre_result.prefiltered_allocs, 1,
        "the immediately-published site is excluded up front"
    );
    // The pre-filter saves PEA the work of virtualizing and then
    // materializing the escaping site.
    assert!(pre_result.virtualized_allocs < pea_result.virtualized_allocs);
}

#[test]
fn ipa_prefilter_excludes_callee_published_sites_with_aligned_artifacts() {
    // `f` has three allocation sites: one published immediately
    // (`pea-pre` excludes it), one handed straight to a helper that
    // publishes its argument on every path (only `pea-pre-ipa` can
    // exclude it — the publication is in the callee), and one that PEA
    // scalar-replaces at every level. `f2` only has sites both filters
    // agree on, so its artifact must be byte-identical across them.
    let src = "
        class C { field v int }
        static g ref
        static h ref
        method publish 1 {
            load 0 putstatic h
            ret
        }
        method f 1 returns {
            new C putstatic g
            new C invokestatic publish
            new C store 1
            load 1 load 0 putfield C.v
            load 1 getfield C.v const 1 add retv
        }
        method f2 1 returns {
            new C putstatic g
            new C store 1
            load 1 load 0 putfield C.v
            load 1 getfield C.v const 2 add retv
        }";
    let mut results = Vec::new();
    for level in [OptLevel::Pea, OptLevel::PeaPre, OptLevel::PeaPreIpa] {
        let program = parse_program(src).unwrap();
        let mut options = VmOptions::with_opt_level(level);
        options.compile_threshold = 5;
        options.checked = level == OptLevel::Pea;
        let mut vm = Vm::new(program, options);
        for i in 0..50 {
            assert_eq!(
                vm.call_entry("f", &[Value::Int(i)]).unwrap(),
                Some(Value::Int(i + 1))
            );
            assert_eq!(
                vm.call_entry("f2", &[Value::Int(i)]).unwrap(),
                Some(Value::Int(i + 2))
            );
        }
        let f = vm.program().static_method_by_name("f").unwrap();
        let f2 = vm.program().static_method_by_name("f2").unwrap();
        let before = vm.stats();
        vm.call_entry("f", &[Value::Int(9)]).unwrap();
        let delta = vm.stats().delta(&before);
        let code = vm.compiled(f).expect("f is hot");
        results.push((
            delta.alloc_count,
            code.pea_result,
            pea::ir::dump::dump(&vm.compiled(f2).expect("f2 is hot").graph),
        ));
    }
    let (pea_allocs, pea_result, pea_dump2) = &results[0];
    let (pre_allocs, pre_result, pre_dump2) = &results[1];
    let (ipa_allocs, ipa_result, ipa_dump2) = &results[2];
    // Exclusion counts on `f` grow strictly: 0 (plain PEA) → 1 (immediate
    // putstatic) → 2 (+ the callee-published site) — the IPA filter is a
    // strict superset here...
    assert_eq!(pea_result.prefiltered_allocs, 0);
    assert_eq!(pre_result.prefiltered_allocs, 1);
    assert_eq!(
        ipa_result.prefiltered_allocs, 2,
        "the summary filter must also exclude the callee-published site"
    );
    assert!(ipa_result.virtualized_allocs < pre_result.virtualized_allocs);
    // ...while runtime behavior is unchanged: both filtered sites are
    // true escapes PEA would have materialized right back anyway.
    assert_eq!(pea_allocs, pre_allocs, "identical steady-state allocation");
    assert_eq!(pea_allocs, ipa_allocs, "identical steady-state allocation");
    // And on `f2`, where both filters exclude the same set, the compiled
    // artifacts are byte-identical.
    assert_eq!(
        pre_dump2, ipa_dump2,
        "equal exclusion sets must yield identical pea-pre / pea-pre-ipa artifacts"
    );
    assert_ne!(
        pea_dump2, pre_dump2,
        "the filtered artifact keeps the plain New instead of a Commit group"
    );
}

/// Acceptance gate for the summary-driven inlining policy: on every
/// corpus program it must virtualize at least as many allocations as the
/// size-budget baseline — in both JIT modes, with the checked-mode
/// sanitizer cross-checking every PEA decision along the way.
#[test]
fn summary_inline_virtualizes_at_least_size_on_corpus() {
    use pea::compiler::InlinePolicy;
    for w in pea::workloads::all_workloads() {
        for mode in [JitMode::Sync, JitMode::Background] {
            let mut virtualized = Vec::new();
            let mut breakdown = Vec::new();
            for policy in [InlinePolicy::Size, InlinePolicy::Summary] {
                let mut options = VmOptions::with_opt_level(OptLevel::Pea);
                options.compile_threshold = 5;
                options.checked = true;
                options.jit_mode = mode;
                options.compiler.build.inline_policy = policy;
                let mut vm = Vm::new(w.program.clone(), options);
                for i in 0..25 {
                    vm.call_entry("iterate", &[Value::Int(i)])
                        .unwrap_or_else(|e| panic!("{} under {policy}: {e}", w.name));
                }
                if mode == JitMode::Background {
                    vm.await_background_compiles();
                    // Which methods crossed the compile threshold is racy in
                    // background mode: an early install can freeze an inlined
                    // callee's invocation count just below the threshold, so
                    // the two policies can end up counting different method
                    // sets. Top up to the full method universe so the
                    // comparison is over the same (deterministic) set; the
                    // Sync arm keeps the exact threshold-driven set.
                    vm.precompile_all(1);
                }
                let total: usize = vm
                    .compiled_methods()
                    .iter()
                    .map(|&m| vm.compiled(m).unwrap().pea_result.virtualized_allocs)
                    .sum();
                let per_method: Vec<String> = vm
                    .compiled_methods()
                    .iter()
                    .map(|&m| {
                        format!(
                            "{}={}",
                            w.program.method(m).qualified_name(&w.program),
                            vm.compiled(m).unwrap().pea_result.virtualized_allocs
                        )
                    })
                    .collect();
                virtualized.push(total);
                breakdown.push(per_method);
            }
            assert!(
                virtualized[1] >= virtualized[0],
                "{} ({mode:?}): summary policy virtualized {} < size policy's {}\n  size:    {:?}\n  summary: {:?}",
                w.name,
                virtualized[1],
                virtualized[0],
                breakdown[0],
                breakdown[1]
            );
        }
    }
}
