//! Differential testing: randomly generated programs must behave
//! identically under every execution configuration — pure interpreter,
//! JIT without escape analysis, JIT with the EES baseline, JIT with
//! Partial Escape Analysis, and JIT with aggressive branch speculation
//! (which exercises deoptimization and rematerialization).
//!
//! "Behave identically" means: same return value or same error on every
//! call, same observable static variables afterwards (compared
//! structurally, since allocation identities legitimately differ), and
//! balanced monitors. Additionally, PEA must never allocate *more* than
//! the unoptimized configuration (§4: "there will always be at most as
//! many dynamic allocations as in the original code").

use pea::bytecode::{CmpOp, MethodBuilder, Program, ProgramBuilder, ValueKind};
use pea::runtime::{Value, VmError};
use pea::trace::{MemorySink, SharedSink, TraceEvent};
use pea::vm::{OptLevel, Vm, VmOptions};
use proptest::prelude::*;
use std::sync::Arc;
use std::sync::Mutex;

/// Per-config result vector of a fuzz run (one entry per `iterate` call).
type ConfigOutcomes = Vec<(String, Vec<Result<Option<Value>, VmError>>)>;

/// A structured mini-AST lowered to verified bytecode, so every generated
/// program is executable (runtime errors like null dereferences are still
/// possible and must match across configurations).
#[derive(Clone, Debug)]
enum Expr {
    Const(i8),
    IntLocal(u8),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Div(Box<Expr>, Box<Expr>),
    GetField(u8, u8),
    GetStatic(u8),
}

#[derive(Clone, Debug)]
enum Stmt {
    AssignInt(u8, Expr),
    NewObj(u8),
    StoreField(u8, u8, Expr),
    PublishObj(u8),
    PutStaticInt(u8, Expr),
    If(Expr, CmpOp, Vec<Stmt>, Vec<Stmt>),
    Loop(u8, Vec<Stmt>),
    Sync(u8, Vec<Stmt>),
}

const INT_LOCALS: u16 = 3; // locals 0..3 (0 and 1 are parameters)
const OBJ_LOCALS: u16 = 2; // locals 3..5
const INT_STATICS: u8 = 2;
const FIELDS: u8 = 2;

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<i8>().prop_map(Expr::Const),
        (0..INT_LOCALS as u8).prop_map(Expr::IntLocal),
        (0..OBJ_LOCALS as u8, 0..FIELDS).prop_map(|(o, f)| Expr::GetField(o, f)),
        (0..INT_STATICS).prop_map(Expr::GetStatic),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(a.into(), b.into())),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Div(a.into(), b.into())),
        ]
    })
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        (0..INT_LOCALS as u8, expr_strategy()).prop_map(|(l, e)| Stmt::AssignInt(l, e)),
        (0..OBJ_LOCALS as u8).prop_map(Stmt::NewObj),
        (0..OBJ_LOCALS as u8, 0..FIELDS, expr_strategy())
            .prop_map(|(o, f, e)| Stmt::StoreField(o, f, e)),
        (0..OBJ_LOCALS as u8).prop_map(Stmt::PublishObj),
        (0..INT_STATICS, expr_strategy()).prop_map(|(s, e)| Stmt::PutStaticInt(s, e)),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        let block = prop::collection::vec(inner.clone(), 0..4);
        prop_oneof![
            (
                expr_strategy(),
                prop_oneof![
                    Just(CmpOp::Eq),
                    Just(CmpOp::Ne),
                    Just(CmpOp::Lt),
                    Just(CmpOp::Ge)
                ],
                block.clone(),
                block.clone()
            )
                .prop_map(|(e, op, t, f)| Stmt::If(e, op, t, f)),
            (1..4u8, block.clone()).prop_map(|(n, b)| Stmt::Loop(n, b)),
            (0..OBJ_LOCALS as u8, block).prop_map(|(o, b)| Stmt::Sync(o, b)),
        ]
    })
}

struct Lowerer<'a> {
    mb: &'a mut MethodBuilder,
    class: pea::bytecode::ClassId,
    fields: Vec<pea::bytecode::FieldId>,
    statics: Vec<pea::bytecode::StaticId>,
    obj_static: pea::bytecode::StaticId,
    next_local: u16,
}

impl Lowerer<'_> {
    fn int_local(&self, l: u8) -> u16 {
        u16::from(l) % INT_LOCALS
    }

    fn obj_local(&self, l: u8) -> u16 {
        INT_LOCALS + u16::from(l) % OBJ_LOCALS
    }

    fn lower_expr(&mut self, e: &Expr) {
        match e {
            Expr::Const(c) => {
                self.mb.const_(i64::from(*c));
            }
            Expr::IntLocal(l) => {
                self.mb.load(self.int_local(*l));
            }
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                self.lower_expr(a);
                self.lower_expr(b);
                match e {
                    Expr::Add(..) => self.mb.add(),
                    Expr::Sub(..) => self.mb.sub(),
                    Expr::Mul(..) => self.mb.mul(),
                    _ => self.mb.div(),
                };
            }
            Expr::GetField(o, f) => {
                self.mb.load(self.obj_local(*o));
                self.mb
                    .get_field(self.fields[usize::from(*f) % self.fields.len()]);
            }
            Expr::GetStatic(s) => {
                self.mb
                    .get_static(self.statics[usize::from(*s) % self.statics.len()]);
            }
        }
    }

    fn lower_block(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.lower_stmt(s);
        }
    }

    fn lower_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::AssignInt(l, e) => {
                self.lower_expr(e);
                self.mb.store(self.int_local(*l));
            }
            Stmt::NewObj(o) => {
                self.mb.new_object(self.class);
                self.mb.store(self.obj_local(*o));
            }
            Stmt::StoreField(o, f, e) => {
                self.mb.load(self.obj_local(*o));
                self.lower_expr(e);
                self.mb
                    .put_field(self.fields[usize::from(*f) % self.fields.len()]);
            }
            Stmt::PublishObj(o) => {
                self.mb.load(self.obj_local(*o));
                self.mb.put_static(self.obj_static);
            }
            Stmt::PutStaticInt(st, e) => {
                self.lower_expr(e);
                self.mb
                    .put_static(self.statics[usize::from(*st) % self.statics.len()]);
            }
            Stmt::If(e, op, then_b, else_b) => {
                self.lower_expr(e);
                self.mb.const_(0);
                let lt = self.mb.new_label();
                let lend = self.mb.new_label();
                self.mb.if_cmp(*op, lt);
                self.lower_block(else_b);
                self.mb.goto(lend);
                self.mb.bind(lt);
                self.lower_block(then_b);
                self.mb.bind(lend);
            }
            Stmt::Loop(n, body) => {
                let counter = self.next_local;
                self.next_local += 1;
                self.mb.const_(0);
                self.mb.store(counter);
                let head = self.mb.new_label();
                let done = self.mb.new_label();
                self.mb.bind(head);
                self.mb.load(counter);
                self.mb.const_(i64::from(*n));
                self.mb.if_cmp(CmpOp::Ge, done);
                self.lower_block(body);
                self.mb.load(counter);
                self.mb.const_(1);
                self.mb.add();
                self.mb.store(counter);
                self.mb.goto(head);
                self.mb.bind(done);
            }
            Stmt::Sync(o, body) => {
                // Null check first so the monitorenter/monitorexit pair is
                // structurally balanced even for null objects (the error
                // then comes from monitorenter in both tiers).
                self.mb.load(self.obj_local(*o));
                self.mb.monitor_enter();
                self.lower_block(body);
                self.mb.load(self.obj_local(*o));
                self.mb.monitor_exit();
            }
        }
    }
}

fn build_program(body: &[Stmt]) -> Program {
    let mut pb = ProgramBuilder::new();
    let class = pb.add_class("Obj", None);
    let fields = vec![
        pb.add_field(class, "f0", ValueKind::Int),
        pb.add_field(class, "f1", ValueKind::Int),
    ];
    let statics = vec![
        pb.add_static("s0", ValueKind::Int),
        pb.add_static("s1", ValueKind::Int),
    ];
    let obj_static = pb.add_static("published", ValueKind::Ref);
    let mut mb = MethodBuilder::new_static("f", 2, true);
    mb.locals(INT_LOCALS + OBJ_LOCALS + 8);
    // Type discipline: int locals start at 0 (as javac would guarantee —
    // JVM bytecode never performs integer arithmetic on references, and
    // the compiler's early scheduler relies on that; see pea-ir docs).
    for l in 2..INT_LOCALS {
        mb.const_(0);
        mb.store(l);
    }
    {
        let mut lower = Lowerer {
            mb: &mut mb,
            class,
            fields,
            statics,
            obj_static,
            next_local: INT_LOCALS + OBJ_LOCALS,
        };
        lower.lower_block(body);
        // Return a digest of the int locals.
        lower.mb.load(0);
        lower.mb.load(1);
        lower.mb.add();
        lower.mb.load(2);
        lower.mb.add();
        lower.mb.return_value();
    }
    pb.add_method(mb.build().expect("generated method builds"));
    let program = pb.build().expect("program builds");
    pea::bytecode::verify_program(&program).expect("generated bytecode verifies");
    program
}

/// Observable end state: statics, with published objects compared by
/// field values (not identity — allocation order differs legitimately
/// between configurations).
fn observe(vm: &Vm) -> Vec<String> {
    let program = vm.program();
    let mut out = Vec::new();
    for i in 0..program.statics.len() {
        let id = pea::bytecode::StaticId::from_index(i);
        let v = vm.statics_ref().get(id);
        match v {
            Value::Int(x) => out.push(format!("s{i}={x}")),
            Value::Null => out.push(format!("s{i}=null")),
            Value::Ref(r) => {
                let class = vm.heap().class_of(r).expect("published object");
                let fields: Vec<String> = program
                    .instance_fields(class)
                    .iter()
                    .map(
                        |&f| match vm.heap().get_field(program, r, f).expect("field") {
                            Value::Int(x) => x.to_string(),
                            Value::Null => "null".into(),
                            Value::Ref(_) => "ref".into(),
                        },
                    )
                    .collect();
                out.push(format!("s{i}=obj[{}]", fields.join(",")));
            }
        }
    }
    // Monitor holds are compared only on *reachable* objects: an error
    // raised while a lock-elided virtual object was "locked" leaves the
    // interpreter holding a monitor on a garbage object, which no program
    // can observe (and which compiled code correctly never allocated).
    let mut reachable_locks = 0u64;
    let mut work: Vec<pea::runtime::ObjRef> = (0..program.statics.len())
        .filter_map(
            |i| match vm.statics_ref().get(pea::bytecode::StaticId::from_index(i)) {
                Value::Ref(r) => Some(r),
                _ => None,
            },
        )
        .collect();
    let mut seen = std::collections::HashSet::new();
    while let Some(r) = work.pop() {
        if !seen.insert(r) {
            continue;
        }
        reachable_locks += u64::from(vm.heap().lock_count(r));
        if let Ok(class) = vm.heap().class_of(r) {
            for f in program.instance_fields(class) {
                if let Ok(Value::Ref(child)) = vm.heap().get_field(program, r, f) {
                    work.push(child);
                }
            }
        }
    }
    out.push(format!("reachable-locks={reachable_locks}"));
    out
}

fn configs() -> Vec<(&'static str, VmOptions)> {
    let mut spec_opts = VmOptions::with_opt_level(OptLevel::Pea);
    spec_opts.compile_threshold = 3;
    spec_opts.compiler.build.branch_threshold = 4;
    spec_opts.compiler.build.devirtualize_threshold = 4;
    let low = |level: OptLevel| {
        let mut o = VmOptions::with_opt_level(level);
        o.compile_threshold = 3;
        o
    };
    let mut summary_opts = low(OptLevel::Pea);
    summary_opts.compiler.build.inline_policy = pea::compiler::InlinePolicy::Summary;
    // The default exec mode is the linear register machine; "jit-graph"
    // pins the graph-walking oracle so the proptest cross-checks the two
    // tiers on every generated program.
    let mut graph_opts = low(OptLevel::Pea);
    graph_opts.exec_mode = pea::vm::ExecMode::Graph;
    vec![
        ("interp", VmOptions::interpreter_only()),
        ("jit-none", low(OptLevel::None)),
        ("jit-ees", low(OptLevel::Ees)),
        ("jit-pea", low(OptLevel::Pea)),
        ("jit-graph", graph_opts),
        ("jit-pea-pre", low(OptLevel::PeaPre)),
        ("jit-pea-pre-ipa", low(OptLevel::PeaPreIpa)),
        ("jit-pea-pre-flow", low(OptLevel::PeaPreFlow)),
        ("jit-pea-summary-inline", summary_opts),
        ("jit-pea-speculative", spec_opts),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 200,
        .. ProptestConfig::default()
    })]

    #[test]
    fn all_configurations_agree(body in prop::collection::vec(stmt_strategy(), 1..8),
                                a in -4i64..4, b in -4i64..4) {
        let program = build_program(&body);
        type Outcome = (String, Vec<Result<Option<Value>, VmError>>, Vec<String>);
        let mut outcomes: Vec<Outcome> = Vec::new();
        let mut alloc_counts: Vec<(String, u64)> = Vec::new();
        for (name, options) in configs() {
            let mut vm = Vm::new(program.clone(), options);
            let mut results = Vec::new();
            for round in 0..10i64 {
                results.push(vm.call_entry("f", &[Value::Int(a + round), Value::Int(b)]));
            }
            let end_state = observe(&vm);
            alloc_counts.push((name.to_string(), vm.stats().alloc_count));
            outcomes.push((name.to_string(), results, end_state));
        }
        let (ref_name, ref_results, ref_state) = &outcomes[0];
        for (name, results, state) in &outcomes[1..] {
            prop_assert_eq!(
                results, ref_results,
                "{} disagrees with {} on results", name, ref_name
            );
            prop_assert_eq!(
                state, ref_state,
                "{} disagrees with {} on end state", name, ref_name
            );
        }
        // PEA never allocates more than the unoptimized JIT ("at most as
        // many dynamic allocations as in the original code", §4) — as
        // long as no deopt rematerialized (rematerialization may
        // legitimately duplicate an allocation the interpreter performed
        // once).
        let none = alloc_counts.iter().find(|(n, _)| n == "jit-none").unwrap().1;
        let pea = alloc_counts.iter().find(|(n, _)| n == "jit-pea").unwrap().1;
        prop_assert!(
            pea <= none,
            "PEA allocated more than baseline: {} > {}",
            pea,
            none
        );
        // The static pre-filter only withholds provably-escaping sites
        // from PEA, so it keeps the same guarantee.
        for filtered in ["jit-pea-pre", "jit-pea-pre-ipa", "jit-pea-pre-flow"] {
            let pre = alloc_counts
                .iter()
                .find(|(n, _)| *n == filtered)
                .unwrap()
                .1;
            prop_assert!(
                pre <= none,
                "{}: pre-filtered PEA allocated more than baseline: {} > {}",
                filtered,
                pre,
                none
            );
        }
        // The summary inline policy is built to virtualize at least as
        // much as the size policy, so it keeps the same guarantee too.
        let summary = alloc_counts
            .iter()
            .find(|(n, _)| n == "jit-pea-summary-inline")
            .unwrap()
            .1;
        prop_assert!(
            summary <= none,
            "summary-inline PEA allocated more than baseline: {} > {}",
            summary,
            none
        );
    }
}

#[test]
fn fixed_regression_cases() {
    // Hand-picked shapes that stress the analysis: publish-in-branch,
    // sync on maybe-null, loop-carried object state.
    use Stmt::*;
    let cases: Vec<Vec<Stmt>> = vec![
        vec![
            NewObj(0),
            StoreField(0, 0, Expr::IntLocal(0)),
            If(
                Expr::IntLocal(1),
                CmpOp::Lt,
                vec![PublishObj(0)],
                vec![AssignInt(2, Expr::GetField(0, 0))],
            ),
        ],
        vec![
            NewObj(0),
            Sync(0, vec![StoreField(0, 1, Expr::Const(5))]),
            AssignInt(0, Expr::GetField(0, 1)),
        ],
        vec![
            NewObj(1),
            Loop(
                3,
                vec![StoreField(
                    1,
                    0,
                    Expr::Add(Box::new(Expr::GetField(1, 0)), Box::new(Expr::IntLocal(0))),
                )],
            ),
            AssignInt(2, Expr::GetField(1, 0)),
        ],
        // Sync on a null object local: error must match everywhere.
        vec![Sync(0, vec![AssignInt(0, Expr::Const(1))])],
        // Field access on null.
        vec![AssignInt(0, Expr::GetField(0, 0))],
        // Division by a value that can be zero.
        vec![AssignInt(
            0,
            Expr::Div(Box::new(Expr::IntLocal(0)), Box::new(Expr::IntLocal(1))),
        )],
    ];
    for body in cases {
        let program = build_program(&body);
        let mut reference: Option<Vec<Result<Option<Value>, VmError>>> = None;
        for (name, options) in configs() {
            let mut vm = Vm::new(program.clone(), options);
            let mut results = Vec::new();
            for round in 0..10i64 {
                results.push(vm.call_entry("f", &[Value::Int(round - 2), Value::Int(2)]));
            }
            match &reference {
                None => reference = Some(results),
                Some(r) => assert_eq!(&results, r, "{name} disagrees on {body:?}"),
            }
        }
    }
}

// ---- Trace-derived invariants -----------------------------------------
//
// The decision trace is a *claim* about what the compiled code does; these
// tests check the claims against the runtime counters the heap keeps
// independently.

fn traced_vm(program: &Program, mut options: VmOptions) -> (Vm, Arc<Mutex<MemorySink>>) {
    let (sink, mem) = SharedSink::new(MemorySink::new());
    options.trace = Some(sink);
    (Vm::new(program.clone(), options), mem)
}

fn speculative_pea_options() -> VmOptions {
    let mut options = VmOptions::with_opt_level(OptLevel::Pea);
    options.compile_threshold = 3;
    options.compiler.build.branch_threshold = 4;
    options.compiler.build.devirtualize_threshold = 4;
    options
}

fn count_events(mem: &Arc<Mutex<MemorySink>>, pred: impl Fn(&TraceEvent) -> bool) -> usize {
    mem.lock()
        .unwrap()
        .events
        .iter()
        .filter(|e| pred(e))
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        max_shrink_iters: 200,
        .. ProptestConfig::default()
    })]

    #[test]
    fn trace_invariants_hold(body in prop::collection::vec(stmt_strategy(), 1..8),
                             a in -4i64..4, b in -4i64..4) {
        let program = build_program(&body);
        let (mut vm, mem) = traced_vm(&program, speculative_pea_options());
        for round in 0..10i64 {
            let _ = vm.call_entry("f", &[Value::Int(a + round), Value::Int(b)]);
        }

        // Every deoptimization's rematerialization inventory must account
        // for exactly the objects the heap says were rematerialized.
        let remat_logged: u64 = mem
            .lock().unwrap()
            .events
            .iter()
            .map(|e| match e {
                TraceEvent::Deopt { rematerialized, .. } => rematerialized.len() as u64,
                _ => 0,
            })
            .sum();
        prop_assert_eq!(
            remat_logged,
            vm.stats().rematerialized,
            "deopt inventories disagree with Stats::rematerialized"
        );

        // Only virtualized sites can materialize.
        let mat_sites: std::collections::HashSet<u32> = mem
            .lock().unwrap()
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Materialized { site, .. } => Some(*site),
                _ => None,
            })
            .collect();
        let virt_sites: std::collections::HashSet<u32> = mem
            .lock().unwrap()
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Virtualized { site, .. } => Some(*site),
                _ => None,
            })
            .collect();
        prop_assert!(
            mat_sites.is_subset(&virt_sites),
            "materialized a site that was never virtualized: {:?} vs {:?}",
            mat_sites, virt_sites
        );

        // Steady-state window: once speculation has settled (no deopt, no
        // recompilation during the window, and every compile in the log
        // succeeded), the trace's materialization events are the *only*
        // way compiled code can allocate — so zero events means zero
        // allocations, and the allocations that do happen stay within the
        // unoptimized run of the same window (§4: "at most as many dynamic
        // allocations as in the original code").
        let events_before = mem.lock().unwrap().events.len();
        let before = vm.stats();
        const WINDOW: i64 = 4;
        for round in 0..WINDOW {
            let _ = vm.call_entry("f", &[Value::Int(a + round), Value::Int(b)]);
        }
        let d = vm.stats().delta(&before);
        let window_quiet = {
            let log = mem.lock().unwrap();
            !log.events[events_before..].iter().any(|e| {
                matches!(
                    e,
                    TraceEvent::CompileStart { .. }
                        | TraceEvent::Deopt { .. }
                        | TraceEvent::Evict { .. }
                )
            })
        };
        let all_compiles_succeeded = count_events(&mem, |e| {
            matches!(e, TraceEvent::CompileStart { .. })
        }) == count_events(&mem, |e| matches!(e, TraceEvent::CompileEnd { .. }));
        if window_quiet && all_compiles_succeeded && vm.compiled_method_count() >= 1 {
            let mat_events =
                count_events(&mem, |e| matches!(e, TraceEvent::Materialized { .. })) as u64;
            if mat_events == 0 {
                prop_assert_eq!(
                    d.alloc_count, 0,
                    "compiled code allocated without any materialization event"
                );
            }
            // Mirror of the same window under the unoptimized JIT.
            let mut none = Vm::new(
                program.clone(),
                {
                    let mut o = VmOptions::with_opt_level(OptLevel::None);
                    o.compile_threshold = 3;
                    o
                },
            );
            for round in 0..10i64 {
                let _ = none.call_entry("f", &[Value::Int(a + round), Value::Int(b)]);
            }
            let none_before = none.stats();
            for round in 0..WINDOW {
                let _ = none.call_entry("f", &[Value::Int(a + round), Value::Int(b)]);
            }
            let none_d = none.stats().delta(&none_before);
            prop_assert!(
                d.alloc_count <= none_d.alloc_count,
                "materializations allocated {} objects but the unoptimized \
                 code only allocates {} in the same window",
                d.alloc_count, none_d.alloc_count
            );
        }
    }
}

/// Lock-elision invariant: when the trace claims a site's monitors were
/// elided and the site never materializes, the runtime must observe *zero*
/// real monitor operations — the elided locks cannot coincide with real
/// acquisitions on the same site.
#[test]
fn elided_locks_never_acquired_at_runtime() {
    use Stmt::*;
    let body = vec![
        NewObj(0),
        Sync(0, vec![StoreField(0, 1, Expr::Const(5))]),
        AssignInt(0, Expr::GetField(0, 1)),
    ];
    let program = build_program(&body);

    // Reference: the interpreter really does lock.
    let mut interp = Vm::new(program.clone(), VmOptions::interpreter_only());
    let before = interp.stats();
    interp
        .call_entry("f", &[Value::Int(1), Value::Int(2)])
        .expect("interp");
    assert!(
        interp.stats().delta(&before).monitor_ops() > 0,
        "fixture must actually synchronize"
    );

    // Traced PEA: warm up past the compile threshold, then measure.
    let (mut vm, mem) = traced_vm(&program, speculative_pea_options());
    for round in 0..10i64 {
        vm.call_entry("f", &[Value::Int(round), Value::Int(2)])
            .expect("warmup");
    }
    let elided: Vec<u32> = mem
        .lock()
        .unwrap()
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::LockElided { site, .. } => Some(*site),
            _ => None,
        })
        .collect();
    assert!(!elided.is_empty(), "the synchronized block must be elided");
    for site in &elided {
        assert_eq!(
            count_events(&mem, |e| matches!(
                e,
                TraceEvent::Materialized { site: s, .. } if s == site
            )),
            0,
            "site n{site} with elided locks must not materialize here"
        );
    }
    let before = vm.stats();
    for round in 0..4i64 {
        vm.call_entry("f", &[Value::Int(round), Value::Int(2)])
            .expect("steady state");
    }
    let d = vm.stats().delta(&before);
    assert_eq!(d.deopts, 0, "window must be deopt-free");
    assert_eq!(
        d.monitor_ops(),
        0,
        "elided-lock sites must never reach the runtime monitor"
    );
}

// ---- Exceptions and guarded virtual dispatch --------------------------
//
// The seeded generator in `pea::workloads::gen` produces programs built
// around the two new materialization points: exception edges (athrow,
// try/catch/finally, nested handlers) and speculated virtual dispatch
// (1–4 receiver classes per call site, so class-rotation defeats the
// speculation and forces guard-failure deopts). Every configuration runs
// with `checked` on: the PEA decision sanitizer panics on any
// inconsistency, so these tests double as the "0 sanitizer findings
// under guard-failure deopt" acceptance gate.

fn exception_configs() -> Vec<(&'static str, VmOptions)> {
    let low = |level: OptLevel| {
        let mut o = VmOptions::with_opt_level(level);
        o.compile_threshold = 3;
        o.checked = true;
        o
    };
    let mut exc_bg = low(OptLevel::Pea);
    exc_bg.jit_mode = pea::vm::JitMode::Background;
    exc_bg.compile_workers = Some(1);
    let mut virt = low(OptLevel::Pea);
    virt.compiler.build.branch_threshold = 4;
    virt.compiler.build.devirtualize_threshold = 4;
    let mut virt_bg = low(OptLevel::Pea);
    virt_bg.compiler.build.branch_threshold = 4;
    virt_bg.compiler.build.devirtualize_threshold = 4;
    virt_bg.jit_mode = pea::vm::JitMode::Background;
    virt_bg.compile_workers = Some(1);
    // Explicit linear-tier configs (sync and background) plus the
    // graph-walking oracle, so the agreement assertions differential-test
    // the two execution tiers on the exception/dispatch generator too.
    let mut linear = low(OptLevel::Pea);
    linear.exec_mode = pea::vm::ExecMode::Linear;
    let mut linear_bg = low(OptLevel::Pea);
    linear_bg.exec_mode = pea::vm::ExecMode::Linear;
    linear_bg.jit_mode = pea::vm::JitMode::Background;
    linear_bg.compile_workers = Some(1);
    let mut graph = low(OptLevel::Pea);
    graph.exec_mode = pea::vm::ExecMode::Graph;
    vec![
        ("interp", VmOptions::interpreter_only()),
        ("jit-exceptions", low(OptLevel::Pea)),
        ("jit-exceptions-bg", exc_bg),
        ("jit-virtual", virt),
        ("jit-virtual-bg", virt_bg),
        ("jit-linear", linear),
        ("jit-linear-bg", linear_bg),
        ("jit-graph", graph),
    ]
}

/// Generator-driven fuzz: interpreter and every JIT configuration agree
/// call-for-call on generated exception/dispatch programs, and in a
/// deopt-free steady-state window the JIT never allocates more than the
/// interpreter (materialize-at-throw still beats allocate-up-front).
#[test]
fn generated_exception_programs_agree_across_tiers() {
    for seed in 0..12u64 {
        let src = pea::workloads::gen::generate(seed);
        let program = pea::bytecode::asm::parse_program(&src).expect("generated program parses");
        pea::bytecode::verify_program(&program).expect("generated program verifies");
        let mut outcomes: ConfigOutcomes = Vec::new();
        let mut windows: Vec<(String, u64, u64)> = Vec::new();
        for (name, options) in exception_configs() {
            let mut vm = Vm::new(program.clone(), options);
            let mut results = Vec::new();
            for i in 0..16i64 {
                results.push(vm.call_entry("iterate", &[Value::Int(i)]));
            }
            // Steady-state allocation window (delta over 6 more calls);
            // only comparable if the window itself saw no deopt, since
            // rematerialization legitimately duplicates allocations.
            let before = vm.stats();
            for i in 0..6i64 {
                results.push(vm.call_entry("iterate", &[Value::Int(i)]));
            }
            let d = vm.stats().delta(&before);
            windows.push((name.to_string(), d.alloc_count, d.deopts));
            outcomes.push((name.to_string(), results));
        }
        let (ref_name, ref_results) = &outcomes[0];
        for (name, results) in &outcomes[1..] {
            assert_eq!(
                results, ref_results,
                "seed {seed}: {name} disagrees with {ref_name}"
            );
        }
        let interp_window = windows[0].1;
        for (name, allocs, deopts) in &windows[1..] {
            if *deopts == 0 {
                assert!(
                    *allocs <= interp_window,
                    "seed {seed}: {name} allocated {allocs} in a deopt-free window, \
                     interpreter allocated {interp_window}"
                );
            }
        }
    }
}

/// Thrown-exception identity: an exception escaping `iterate` must carry
/// the same structural identity (class name + int fields in declaration
/// order) in every tier — scalar replacement elides the allocation until
/// the throw, but the materialized object must be indistinguishable.
#[test]
fn uncaught_exception_identity_matches_across_tiers() {
    let src = "
        class Boom { field code int field aux int }
        method inner 1 returns {
            load 0 const 7 rem const 0 ifcmp ne Lok
            new Boom store 1
            load 1 load 0 const 100 add putfield Boom.code
            load 1 const 41 putfield Boom.aux
            load 1 athrow
        Lok:
            load 0 const 3 mul retv
        }
        method iterate 1 returns {
            load 0 invokestatic inner retv
        }";
    let program = pea::bytecode::asm::parse_program(src).expect("fixture parses");
    pea::bytecode::verify_program(&program).expect("fixture verifies");
    let mut reference: Option<Vec<Result<Option<Value>, VmError>>> = None;
    for (name, options) in exception_configs() {
        let mut vm = Vm::new(program.clone(), options);
        let mut results = Vec::new();
        for i in 0..15i64 {
            results.push(vm.call_entry("iterate", &[Value::Int(i)]));
        }
        // The i % 7 == 0 calls must fail with the exact structural
        // identity; everything else succeeds.
        for (i, r) in results.iter().enumerate() {
            if i % 7 == 0 {
                assert_eq!(
                    r,
                    &Err(VmError::UncaughtException {
                        class: "Boom".into(),
                        fields: vec![i as i64 + 100, 41],
                    }),
                    "{name}: wrong identity for iterate({i})"
                );
            } else {
                assert_eq!(
                    r,
                    &Ok(Some(Value::Int(i as i64 * 3))),
                    "{name}: wrong result for iterate({i})"
                );
            }
        }
        match &reference {
            None => reference = Some(results),
            Some(r) => assert_eq!(&results, r, "{name} disagrees on exception identity"),
        }
    }
}

/// The syntactic pre-filter stays a subset of the interprocedural
/// exclusions on every generated program — including sites published
/// through an exception edge (`new ... athrow`), which both layers must
/// now treat exactly like `new ... putstatic`.
#[test]
fn pre_exclusions_subset_of_ipa_on_generated_programs() {
    use pea::analysis::{immediate_global_sites, ProgramSummaries};
    for seed in 0..24u64 {
        let src = pea::workloads::gen::generate(seed);
        let program = pea::bytecode::asm::parse_program(&src).expect("parses");
        pea::bytecode::verify_program(&program).expect("verifies");
        let summaries = ProgramSummaries::compute(&program);
        for index in 0..program.methods.len() {
            let id = pea::bytecode::MethodId::from_index(index);
            let immediate = immediate_global_sites(program.method(id));
            let excluded = summaries.excluded_sites(&program, id);
            assert!(
                immediate.iter().all(|bci| excluded.contains(bci)),
                "seed {seed}, method {index}: pre {immediate:?} ⊄ ipa {excluded:?}"
            );
        }
    }
    // And the throw-publishing shape specifically: `new Err athrow` must
    // appear in both the syntactic and the interprocedural exclusion set.
    let src = "
        class Err { field code int }
        method m 1 {
            load 0 const 0 ifcmp eq Ldone
            new Err athrow
        Ldone:
            ret
        }";
    let program = pea::bytecode::asm::parse_program(src).unwrap();
    pea::bytecode::verify_program(&program).unwrap();
    let id = program.static_method_by_name("m").unwrap();
    let immediate = immediate_global_sites(program.method(id));
    let excluded = ProgramSummaries::compute(&program).excluded_sites(&program, id);
    assert_eq!(immediate.len(), 1, "new-then-athrow is an immediate site");
    assert!(excluded.contains(&immediate[0]));
}

// ---- Linear tier vs. graph-walking oracle ------------------------------
//
// The linear register-machine tier must be observationally *identical* to
// graph-walking evaluation: same result vectors (including thrown-exception
// identity), same virtual-cycle counts, and the same decision/deopt trace
// (wall-clock compile timings excluded — they are the only legitimately
// nondeterministic payload).

/// Clears the wall-clock phase timings, the only CompileEnd payload that
/// legitimately differs between two runs of the same compilation.
fn normalize_trace(events: &[TraceEvent]) -> Vec<TraceEvent> {
    events
        .iter()
        .cloned()
        .map(|e| match e {
            TraceEvent::CompileEnd {
                method, code_size, ..
            } => TraceEvent::CompileEnd {
                method,
                code_size,
                phases: pea::trace::PhaseMicros::default(),
            },
            e => e,
        })
        .collect()
}

/// Runs `iterate(0..iters)` under both exec modes and asserts byte-equal
/// results; in Sync mode also byte-equal cycle counts and traces (install
/// timing makes those legitimately racy under a background worker).
fn assert_linear_graph_agree(label: &str, program: &Program, iters: i64) {
    type Run = (Vec<Result<Option<Value>, VmError>>, u64, Vec<TraceEvent>);
    for mode in [pea::vm::JitMode::Sync, pea::vm::JitMode::Background] {
        let mut runs: Vec<Run> = Vec::new();
        for exec in [pea::vm::ExecMode::Linear, pea::vm::ExecMode::Graph] {
            let mut options = VmOptions::with_opt_level(OptLevel::Pea);
            options.compile_threshold = 3;
            options.checked = true;
            options.jit_mode = mode;
            options.compile_workers = Some(1);
            options.exec_mode = exec;
            let (sink, mem) = SharedSink::new(MemorySink::new());
            options.trace = Some(sink);
            let mut vm = Vm::new(program.clone(), options);
            let mut results = Vec::new();
            for i in 0..iters {
                results.push(vm.call_entry("iterate", &[Value::Int(i)]));
            }
            vm.await_background_compiles();
            let trace = normalize_trace(&mem.lock().unwrap().events);
            runs.push((results, vm.stats().cycles, trace));
        }
        let (linear_results, linear_cycles, linear_trace) = &runs[0];
        let (graph_results, graph_cycles, graph_trace) = &runs[1];
        assert_eq!(
            linear_results, graph_results,
            "{label} ({mode:?}): linear and graph tiers disagree on results"
        );
        if mode == pea::vm::JitMode::Sync {
            assert_eq!(
                linear_cycles, graph_cycles,
                "{label}: linear and graph tiers disagree on cycle counts"
            );
            assert_eq!(
                linear_trace, graph_trace,
                "{label}: linear and graph tiers disagree on the decision trace"
            );
        }
    }
    // Pure compiled-code parity: with the whole program precompiled, the
    // cycle accounting must agree byte-for-byte even though every single
    // call runs on the tier under test.
    let mut cycles = Vec::new();
    for exec in [pea::vm::ExecMode::Linear, pea::vm::ExecMode::Graph] {
        let mut options = VmOptions::with_opt_level(OptLevel::Pea);
        options.checked = true;
        options.exec_mode = exec;
        let mut vm = Vm::new(program.clone(), options);
        vm.precompile_all(1);
        for i in 0..iters {
            let _ = vm.call_entry("iterate", &[Value::Int(i)]);
        }
        cycles.push(vm.stats().cycles);
    }
    assert_eq!(
        cycles[0], cycles[1],
        "{label}: precompiled cycle counts differ between linear and graph"
    );
}

/// The whole workload corpus agrees between the linear tier and the
/// graph-walking oracle, in both JIT modes, under `--checked`.
#[test]
fn linear_tier_agrees_with_graph_oracle_on_corpus() {
    for w in pea::workloads::all_workloads() {
        assert_linear_graph_agree(&w.name, &w.program, 20);
    }
}

/// Fuzzed exception/dispatch programs (seeds 0..64) agree between the
/// linear tier and the graph-walking oracle.
#[test]
fn linear_tier_agrees_with_graph_oracle_on_fuzz_seeds() {
    for seed in 0..64u64 {
        let src = pea::workloads::gen::generate(seed);
        let program = pea::bytecode::asm::parse_program(&src).expect("generated program parses");
        pea::bytecode::verify_program(&program).expect("generated program verifies");
        assert_linear_graph_agree(&format!("seed {seed}"), &program, 12);
    }
}

/// Observability must be free: attaching a trace sink changes neither the
/// results nor any runtime counter (the virtual-cycle cost model included),
/// and a VM with tracing compiled in but disabled behaves identically.
#[test]
fn tracing_does_not_perturb_execution() {
    use Stmt::*;
    let bodies: Vec<Vec<Stmt>> = vec![
        vec![
            NewObj(0),
            StoreField(0, 0, Expr::IntLocal(0)),
            If(
                Expr::IntLocal(1),
                CmpOp::Lt,
                vec![PublishObj(0)],
                vec![AssignInt(2, Expr::GetField(0, 0))],
            ),
        ],
        vec![
            NewObj(1),
            Sync(1, vec![StoreField(1, 0, Expr::IntLocal(0))]),
            Loop(3, vec![AssignInt(2, Expr::GetField(1, 0))]),
        ],
    ];
    for body in bodies {
        let program = build_program(&body);
        let mut plain = Vm::new(program.clone(), speculative_pea_options());
        let (mut traced, _mem) = traced_vm(&program, speculative_pea_options());
        for round in 0..12i64 {
            let args = [Value::Int(round - 2), Value::Int(2)];
            let a = plain.call_entry("f", &args);
            let b = traced.call_entry("f", &args);
            assert_eq!(a, b, "tracing changed a result on {body:?}");
        }
        let (p, t) = (plain.stats(), traced.stats());
        assert_eq!(p.cycles, t.cycles, "tracing changed the cycle count");
        assert_eq!(p.alloc_count, t.alloc_count);
        assert_eq!(p.alloc_bytes, t.alloc_bytes);
        assert_eq!(p.deopts, t.deopts);
        assert_eq!(p.rematerialized, t.rematerialized);
        assert_eq!(p.compiles, t.compiles);
        assert_eq!(
            plain.compiled_method_count(),
            traced.compiled_method_count()
        );
    }
}
