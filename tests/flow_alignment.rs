//! Cross-layer alignment of the branch-aware flow tier (`pea-analysis::
//! flow`) with the rest of the stack: the flow verdicts must refine — never
//! contradict — the flow-insensitive analysis on every corpus and fuzz
//! program, the `pea-pre-flow` exclusion set must widen `pea-pre-ipa`
//! without changing results or allocation counts, and the path-qualified
//! throw summaries must let the summary inline policy inline a provably
//! cold-throwing callee with the checked-mode sanitizer staying silent.

use pea::analysis::{EscapeClass, PathEscape, ProgramSummaries, ThrowPath};
use pea::bytecode::asm::parse_program;
use pea::bytecode::{verify_program, MethodId, Program};
use pea::compiler::InlinePolicy;
use pea::runtime::Value;
use pea::vm::{JitMode, OptLevel, Vm, VmOptions};
use pea::workloads::{Pattern, PatternInstance};

/// Checks every flow-tier invariant on one program:
///
/// * flow ⊆ flow-insensitive — a site's path verdict is `NoEscape` exactly
///   when the insensitive class is `NoEscape`, and a certain-escape
///   certificate only ever appears on a `GlobalEscape` site;
/// * `excluded_sites_flow` ⊇ `excluded_sites` per method;
/// * the fixpoint is stable — recomputing the summaries from scratch
///   reproduces every flow summary exactly.
fn assert_flow_invariants(program: &Program, label: &str) {
    let summaries = ProgramSummaries::compute(program);
    let again = ProgramSummaries::compute(program);
    for index in 0..program.methods.len() {
        let id = MethodId::from_index(index);
        let s = summaries.summary(id);
        for site in &s.flow.sites {
            assert_eq!(
                site.path == PathEscape::NoEscape,
                site.insensitive == EscapeClass::NoEscape,
                "{label}, method {index}, site {}: path `{}` vs insensitive `{}`",
                site.bci,
                site.path.as_str(),
                site.insensitive.as_str()
            );
            if site.certain_global {
                assert_eq!(
                    site.insensitive,
                    EscapeClass::GlobalEscape,
                    "{label}, method {index}, site {}: certain-escape on a non-global site",
                    site.bci
                );
            }
        }
        if matches!(s.flow.throw_path, ThrowPath::Never) {
            assert!(
                !s.may_throw,
                "{label}, method {index}: ThrowPath::Never on a may-throw method"
            );
        }
        let ipa = summaries.excluded_sites(program, id);
        let flow = summaries.excluded_sites_flow(program, id);
        assert!(
            ipa.iter().all(|bci| flow.contains(bci)),
            "{label}, method {index}: ipa {ipa:?} ⊄ flow {flow:?}"
        );
        assert_eq!(
            s.flow,
            again.summary(id).flow,
            "{label}, method {index}: flow fixpoint is unstable"
        );
    }
}

/// The flow verdicts refine the insensitive analysis on the whole
/// benchmark corpus and on 64 generated fuzz programs.
#[test]
fn flow_refines_insensitive_on_corpus_and_fuzz_programs() {
    for w in pea::workloads::all_workloads() {
        assert_flow_invariants(&w.program, &w.name);
    }
    for seed in 0..64u64 {
        let src = pea::workloads::gen::generate(seed);
        let program = parse_program(&src).expect("generated program parses");
        verify_program(&program).expect("generated program verifies");
        assert_flow_invariants(&program, &format!("seed {seed}"));
    }
}

/// Golden pins on the paper examples: the Listing-4 cache key escapes only
/// on the cold miss branch (which is exactly why it must *stay* in PEA's
/// hands — the hit path wins), and a parser error object escapes only on
/// its throw path.
#[test]
fn paper_examples_get_the_expected_path_verdicts() {
    let program = parse_program(include_str!("../examples/cache_key.asm")).unwrap();
    verify_program(&program).unwrap();
    let summaries = ProgramSummaries::compute(&program);
    let get_value = program.static_method_by_name("getValue").unwrap();
    let flow = &summaries.summary(get_value).flow;
    assert_eq!(flow.sites.len(), 1);
    let key = &flow.sites[0];
    assert_eq!(key.insensitive, EscapeClass::GlobalEscape);
    assert_eq!(
        key.path,
        PathEscape::EscapesOnColdBranch(12),
        "the Key escapes only behind the equals test at bci 12"
    );
    assert!(
        !key.certain_global,
        "the hit path never publishes: the site must stay with PEA"
    );
    assert!(
        summaries
            .excluded_sites_flow(&program, get_value)
            .is_empty(),
        "pea-pre-flow must not exclude the paper's running example"
    );

    let inst = PatternInstance {
        pattern: Pattern::ExceptionParse {
            n: 10,
            fail_every: 3,
        },
        index: 0,
    };
    let program = parse_program(&inst.to_asm()).unwrap();
    verify_program(&program).unwrap();
    let summaries = ProgramSummaries::compute(&program);
    let parse = program.static_method_by_name("parse0").unwrap();
    let flow = &summaries.summary(parse).flow;
    let err_site = flow
        .sites
        .iter()
        .find(|s| s.insensitive == EscapeClass::GlobalEscape)
        .expect("the thrown PErr site is GlobalEscape");
    assert_eq!(
        err_site.path,
        PathEscape::EscapesOnThrowPathOnly,
        "the parser error escapes only through its athrow"
    );
    assert!(matches!(flow.throw_path, ThrowPath::Guarded(_)));
}

/// The `pea-pre-flow` level excludes the certain-escape site the `ipa`
/// filter cannot see (publication through a local behind a two-sided
/// branch), with identical results and steady-state allocation counts at
/// every level — and byte-identical artifacts where the exclusion sets
/// agree.
#[test]
fn flow_prefilter_widens_ipa_with_aligned_artifacts() {
    let src = "
        class C { field v int }
        static g ref
        static h ref
        static k ref
        method publish 1 {
            load 0 putstatic h
            ret
        }
        method f 1 returns {
            new C putstatic g
            new C invokestatic publish
            load 0 const 3 rem const 0 ifcmp ne Lsk
            new C store 2
            load 2 putstatic k
        Lsk:
            new C store 1
            load 1 load 0 putfield C.v
            load 1 getfield C.v const 1 add retv
        }
        method f2 1 returns {
            new C putstatic g
            new C store 1
            load 1 load 0 putfield C.v
            load 1 getfield C.v const 2 add retv
        }";
    let mut results = Vec::new();
    for level in [
        OptLevel::Pea,
        OptLevel::PeaPre,
        OptLevel::PeaPreIpa,
        OptLevel::PeaPreFlow,
    ] {
        let program = parse_program(src).unwrap();
        let mut options = VmOptions::with_opt_level(level);
        options.compile_threshold = 5;
        options.checked = level == OptLevel::Pea;
        let mut vm = Vm::new(program, options);
        for i in 0..51 {
            assert_eq!(
                vm.call_entry("f", &[Value::Int(i)]).unwrap(),
                Some(Value::Int(i + 1))
            );
            assert_eq!(
                vm.call_entry("f2", &[Value::Int(i)]).unwrap(),
                Some(Value::Int(i + 2))
            );
        }
        let f = vm.program().static_method_by_name("f").unwrap();
        let f2 = vm.program().static_method_by_name("f2").unwrap();
        // Steady-state window over a full i % 3 period so every level
        // allocates the same set of escaping objects.
        let before = vm.stats();
        for i in 9..12 {
            vm.call_entry("f", &[Value::Int(i)]).unwrap();
        }
        let delta = vm.stats().delta(&before);
        results.push((
            delta.alloc_count,
            vm.compiled(f).expect("f is hot").pea_result,
            pea::ir::dump::dump(&vm.compiled(f2).expect("f2 is hot").graph),
        ));
    }
    let (pea_allocs, pea_result, _) = &results[0];
    let (pre_allocs, pre_result, _) = &results[1];
    let (ipa_allocs, ipa_result, ipa_dump2) = &results[2];
    let (flow_allocs, flow_result, flow_dump2) = &results[3];
    // Exclusions grow strictly: 0 → 1 (immediate putstatic) → 2 (+ the
    // callee-published site) → 3 (+ the certain-escape guarded local
    // publication only the flow tier proves).
    assert_eq!(pea_result.prefiltered_allocs, 0);
    assert_eq!(pre_result.prefiltered_allocs, 1);
    assert_eq!(ipa_result.prefiltered_allocs, 2);
    assert_eq!(
        flow_result.prefiltered_allocs, 3,
        "the flow filter must also exclude the guarded local publication"
    );
    assert!(flow_result.virtualized_allocs < ipa_result.virtualized_allocs);
    // Runtime behavior is unchanged: every excluded site is a true escape
    // PEA would have materialized right back anyway.
    assert_eq!(pea_allocs, pre_allocs, "identical steady-state allocation");
    assert_eq!(pea_allocs, ipa_allocs, "identical steady-state allocation");
    assert_eq!(pea_allocs, flow_allocs, "identical steady-state allocation");
    // Where the exclusion sets agree (`f2` has no flow-only site), the
    // artifacts are byte-identical.
    assert_eq!(
        ipa_dump2, flow_dump2,
        "equal exclusion sets must yield identical pea-pre-ipa / pea-pre-flow artifacts"
    );
}

/// Acceptance gate for cold-throw inlining: on the `ColdThrowPublish`
/// pattern the summary policy must inline the may-throw checking helper
/// (reason `cold-throw-speculated`), the size policy must keep refusing it
/// (`may-throw`), results must agree call-for-call, and the checked-mode
/// sanitizer must stay silent — in both JIT modes.
#[test]
fn cold_throw_callee_inlines_under_summary_policy() {
    let inst = PatternInstance {
        pattern: Pattern::ColdThrowPublish { n: 30 },
        index: 0,
    };
    let mut src = inst.to_asm();
    src.push_str("method iterate 1 returns { load 0 invokestatic p0 retv }");
    let program = parse_program(&src).unwrap();
    verify_program(&program).unwrap();
    let check = program.static_method_by_name("check0").unwrap();
    for mode in [JitMode::Sync, JitMode::Background] {
        let mut outcomes = Vec::new();
        for policy in [InlinePolicy::Size, InlinePolicy::Summary] {
            let mut options = VmOptions::with_opt_level(OptLevel::Pea);
            options.compile_threshold = 5;
            options.checked = true;
            options.jit_mode = mode;
            options.compiler.build.inline_policy = policy;
            // The callee compiles (and stops profiling) after 5 calls, so
            // scale the speculation threshold down with the compile
            // threshold, as the default configuration does (20 < 50).
            options.compiler.build.branch_threshold = 4;
            let mut vm = Vm::new(program.clone(), options);
            let mut results = Vec::new();
            for i in 0..25 {
                results.push(vm.call_entry("iterate", &[Value::Int(i)]).unwrap());
            }
            if mode == JitMode::Background {
                vm.await_background_compiles();
                // Recompile with fully warm profiles so the inline
                // decisions are deterministic (background installs can
                // otherwise race the profile warm-up).
                vm.precompile_all(1);
            }
            let mut check_decisions = Vec::new();
            for &m in &vm.compiled_methods() {
                for d in &vm.compiled(m).unwrap().inline_decisions {
                    if d.callee == check {
                        check_decisions.push((d.inlined, d.reason));
                    }
                }
            }
            assert!(
                !check_decisions.is_empty(),
                "{mode:?}/{policy}: no compiled caller considered check0"
            );
            outcomes.push((policy, results, check_decisions));
        }
        let (_, size_results, size_decisions) = &outcomes[0];
        let (_, summary_results, summary_decisions) = &outcomes[1];
        assert_eq!(
            size_results, summary_results,
            "{mode:?}: policies disagree on results"
        );
        assert!(
            size_decisions
                .iter()
                .all(|&(inlined, reason)| { !inlined && reason == "may-throw" }),
            "{mode:?}: size policy must keep may-throw callees out-of-line: {size_decisions:?}"
        );
        assert!(
            summary_decisions
                .iter()
                .any(|&(inlined, reason)| inlined && reason == "cold-throw-speculated"),
            "{mode:?}: summary policy never cold-throw-inlined check0: {summary_decisions:?}"
        );
    }
}

/// The cold-throw clearance is profile-driven: without branch profiles
/// (or with a hot throw path) the may-throw callee stays out-of-line even
/// under the summary policy.
#[test]
fn cold_throw_clearance_requires_cold_profiles() {
    let src = "
        class CErr { field code int }
        method check 2 returns {
            load 0 const 2 rem const 1 ifcmp eq Lbad
            load 1 load 0 add retv
        Lbad:
            new CErr store 2
            load 2 load 0 putfield CErr.code
            load 2 athrow
        }
        method iterate 1 returns {
            try Ls Le Lc CErr
            const 0 store 1
        Ls:
            load 0 load 1 invokestatic check store 1
        Le:
            goto Ln
        Lc:
            checkcast CErr getfield CErr.code store 1
        Ln:
            load 1 retv
        }";
    let program = parse_program(src).unwrap();
    verify_program(&program).unwrap();
    let check = program.static_method_by_name("check").unwrap();
    let mut options = VmOptions::with_opt_level(OptLevel::Pea);
    options.compile_threshold = 5;
    options.checked = true;
    options.compiler.build.inline_policy = InlinePolicy::Summary;
    options.compiler.build.branch_threshold = 4;
    let mut vm = Vm::new(program, options);
    for i in 0..40 {
        vm.call_entry("iterate", &[Value::Int(i)]).unwrap();
    }
    // Every second call throws: the guard's throw side is hot, so the
    // clearance must refuse.
    let mut saw = Vec::new();
    for &m in &vm.compiled_methods() {
        for d in &vm.compiled(m).unwrap().inline_decisions {
            if d.callee == check {
                assert!(!d.inlined, "hot-throw callee was inlined: {d:?}");
                saw.push(d.reason);
            }
        }
    }
    assert!(
        saw.iter().all(|r| *r == "throw-path-hot"),
        "expected throw-path-hot refusals, got {saw:?}"
    );
    assert!(!saw.is_empty(), "no compiled caller considered check");
}
