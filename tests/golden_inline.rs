//! Golden inline-decision traces: pins the exact `InlineDecision`
//! sequence the graph builder emits for the paper's worked examples under
//! both inlining policies (`size` — the budget baseline — and `summary` —
//! driven by the interprocedural escape summaries). A change in these
//! sequences means the inliner walked the example differently; deliberate
//! changes must update the goldens alongside an explanation.

use pea::bytecode::asm::parse_program;
use pea::compiler::{compile_traced, CompilerOptions, InlinePolicy, OptLevel};
use pea::trace::{MemorySink, TraceEvent};

const CACHE_EXAMPLE: &str = include_str!("../examples/cache_key.asm");

/// The anti-pattern the summary policy exists for: a helper that globally
/// publishes its argument. Inlining it buys nothing — the allocation
/// escapes either way — so the summary policy refuses regardless of the
/// callee's size, while the size policy happily inlines the tiny body.
const PUBLISH_HELPER: &str = "
    class C { field v int }
    static g ref
    method publish 1 { load 0 putstatic g ret }
    method f 1 returns {
        new C invokestatic publish
        const 1 retv
    }";

/// Compiles `entry` under `policy` and renders each inline decision as
/// one compact golden line.
fn inline_lines(src: &str, entry: &str, policy: InlinePolicy) -> Vec<String> {
    let program = parse_program(src).unwrap();
    pea::bytecode::verify_program(&program).unwrap();
    let method = program.static_method_by_name(entry).unwrap();
    let mut options = CompilerOptions::with_opt_level(OptLevel::Pea);
    options.build.inline_policy = policy;
    let mut sink = MemorySink::new();
    compile_traced(&program, method, None, &options, &mut sink).unwrap();
    sink.events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::InlineDecision {
                method,
                bci,
                callee,
                policy,
                inlined,
                reason,
            } => Some(format!(
                "{} {callee} at {method}:{bci} [{policy}] {reason}",
                if *inlined { "inline" } else { "no-inline" },
            )),
            _ => None,
        })
        .collect()
}

/// Listing 4 / §4: both policies inline the synchronized `Key.equals` —
/// the size policy because the callee fits the budget, the summary policy
/// because the fresh `Key` flows into a callee that does not publish it
/// (which is precisely what lets PEA virtualize the receiver and elide
/// the lock).
#[test]
fn cache_example_inline_goldens() {
    assert_eq!(
        inline_lines(CACHE_EXAMPLE, "getValue", InlinePolicy::Size),
        vec!["inline Key.equals at getValue:10 [size] within-size-budget".to_string()],
    );
    assert_eq!(
        inline_lines(CACHE_EXAMPLE, "getValue", InlinePolicy::Summary),
        vec!["inline Key.equals at getValue:10 [summary] allocation-flows-in".to_string()],
    );
}

/// The policies disagree on a publishing callee: size inlines it (it is
/// tiny), summary refuses it (the argument globally escapes inside, so
/// inlining cannot help PEA and only grows code).
#[test]
fn publish_helper_inline_goldens() {
    assert_eq!(
        inline_lines(PUBLISH_HELPER, "f", InlinePolicy::Size),
        vec!["inline publish at f:1 [size] within-size-budget".to_string()],
    );
    assert_eq!(
        inline_lines(PUBLISH_HELPER, "f", InlinePolicy::Summary),
        vec!["no-inline publish at f:1 [summary] publishes-argument".to_string()],
    );
}

/// Under the summary policy the compilation computes the interprocedural
/// summaries (none were pre-seeded), and the trace records one
/// `SummaryComputed` event per method before any inline decision.
#[test]
fn summary_events_precede_inline_decisions() {
    let program = parse_program(PUBLISH_HELPER).unwrap();
    pea::bytecode::verify_program(&program).unwrap();
    let method = program.static_method_by_name("f").unwrap();
    let mut options = CompilerOptions::with_opt_level(OptLevel::Pea);
    options.build.inline_policy = InlinePolicy::Summary;
    let mut sink = MemorySink::new();
    compile_traced(&program, method, None, &options, &mut sink).unwrap();
    let kinds: Vec<&str> = sink.events.iter().map(TraceEvent::kind).collect();
    let last_summary = kinds
        .iter()
        .rposition(|k| *k == "summary-computed")
        .expect("summaries must be traced when the policy needs them");
    let first_inline = kinds
        .iter()
        .position(|k| *k == "inline-decision")
        .expect("the call site must produce a decision");
    assert_eq!(
        kinds.iter().filter(|k| **k == "summary-computed").count(),
        program.methods.len(),
        "one summary event per method: {kinds:?}"
    );
    assert!(
        last_summary < first_inline,
        "summaries are computed before inlining runs: {kinds:?}"
    );
    // The publishing helper's verdict is visible in the event itself.
    assert!(sink.events.iter().any(|e| matches!(
        e,
        TraceEvent::SummaryComputed { method, params, .. }
            if method == "publish" && params == &["global-escape".to_string()]
    )));
}

/// The size policy is profile-blind on monomorphic static calls, but the
/// summary policy must never virtualize *less* than it: on the cache
/// example both produce the same optimized artifact.
#[test]
fn policies_agree_on_the_cache_artifact() {
    let program = parse_program(CACHE_EXAMPLE).unwrap();
    let method = program.static_method_by_name("getValue").unwrap();
    let mut dumps = Vec::new();
    for policy in [InlinePolicy::Size, InlinePolicy::Summary] {
        let mut options = CompilerOptions::with_opt_level(OptLevel::Pea);
        options.build.inline_policy = policy;
        let code = pea::compiler::compile(&program, method, None, &options).unwrap();
        dumps.push(pea::ir::dump::dump(&code.graph));
    }
    assert_eq!(dumps[0], dumps[1], "both policies inline Key.equals");
}
